"""Round-Robin-Withholding broadcast protocols (prior work [3, 18]).

``RRW`` and its old-first variant ``OF-RRW`` are the building blocks the
paper reuses inside k-Cycle and k-Clique, and — run with every station
switched on — they are the natural *uncapped* baselines against which the
energy-capped algorithms are compared in the figure-style sweeps.

Protocol (single shared channel, all participants awake):

* a conceptual token circulates round-robin over the stations;
* the token holder transmits its eligible packets one per round
  (eligible = any queued packet for RRW, only *old* packets — those
  present when the current phase began — for OF-RRW);
* a silent round advances the token; when the token has passed every
  station a *phase* ends and, for OF-RRW, packets queued meanwhile become
  old.

Because every station is always on, every heard packet is immediately
delivered to its destination, so the protocols route directly.  Their
energy cap is ``n`` — the point of the paper is to do better.
"""

from __future__ import annotations

from bisect import bisect_left

import numpy as np

from ..channel.feedback import ChannelOutcome, Feedback
from ..channel.message import Message
from ..core.algorithm import AlgorithmProperties, RoutingAlgorithm
from ..core.blocks import LoweredSegment, RoundBlockDriver
from ..core.controller import QueueingController
from ..core.registry import register_algorithm
from ..core.schedule import AlwaysOnSchedule, ObliviousSchedule
from .token_ring import TokenRingReplica

__all__ = ["RoundRobinWithholding", "OldFirstRoundRobinWithholding"]


class _RRWController(QueueingController):
    """Per-station controller for the uncapped RRW / OF-RRW baselines."""

    # Always on: wakes() is trivially pure and matches AlwaysOnSchedule.
    static_wake_schedule = True

    # Holding no packets the holder withholds (act returns None), and a
    # silent round only advances the token — modular arithmetic that
    # advance_silent_span reproduces (phase-end aging is a no-op on an
    # empty queue), so quiescent spans may be elided wholesale.
    silence_invariant = True

    def __init__(self, station_id: int, n: int, old_first: bool) -> None:
        super().__init__(station_id, n)
        self.old_first = old_first
        self.replica = TokenRingReplica(list(range(n)))
        if not old_first:
            # Plain RRW has no aging: treat every packet as immediately old.
            self.queue.age_all()

    def wakes(self, round_no: int) -> bool:
        return True

    def _eligible(self):
        if self.old_first:
            return self.queue.peek_old()
        return self.queue.peek_any()

    def act(self, round_no: int) -> Message | None:
        if self.replica.holder != self.station_id:
            return None
        packet = self._eligible()
        if packet is None:
            return None
        return self.transmit(packet)

    def on_inject(self, round_no: int, packet) -> None:
        super().on_inject(round_no, packet)
        if not self.old_first:
            self.queue.age_all()

    def after_feedback(self, round_no: int, feedback: Feedback) -> None:
        phase_done = self.replica.observe(feedback.outcome)
        if phase_done and self.old_first:
            self.queue.age_all()

    def advance_silent_span(self, start: int, stop: int) -> None:
        # Always awake: the token advances once per silent round.  The
        # OF-RRW phase-end age_all is a no-op on an empty queue, so the
        # completed-phase count needs no further replay.
        self.replica.advance_silence(stop - start)


class _RRWBlockDriver(RoundBlockDriver):
    """Compiled-round driver for RRW / OF-RRW (one shared instance per run).

    All ``n`` per-station token replicas are identical by construction, so
    inside a block the driver advances one *canonical* replica per silent
    round instead of ``n`` — synced from the controllers at block start
    and written back to all of them at block end.  Quiescent-span elision
    advances the per-station replicas through ``advance_silent_span`` as
    usual; the :meth:`advance_span` hook applies the same jump to the
    canonical copy so both stay consistent until the end-of-block sync.
    """

    def __init__(self, controllers: list[_RRWController], old_first: bool) -> None:
        super().__init__(len(controllers))
        self._controllers = controllers
        self._old_first = old_first
        self._canonical = TokenRingReplica(list(range(len(controllers))))

    def begin_block(self, start: int, stop: int) -> bool:
        source = self._controllers[0].replica
        canonical = self._canonical
        canonical.token_pos = source.token_pos
        canonical.advancements = source.advancements
        canonical.phase_no = source.phase_no
        canonical.holder = source.holder
        return True

    def end_block(self, stop: int) -> None:
        canonical = self._canonical
        for ctrl in self._controllers:
            replica = ctrl.replica
            replica.token_pos = canonical.token_pos
            replica.advancements = canonical.advancements
            replica.phase_no = canonical.phase_no
            replica.holder = canonical.holder

    def advance_span(self, start: int, stop: int) -> None:
        self._canonical.advance_silence(stop - start)

    def transmitter(self, t: int) -> int:
        holder = self._canonical.holder
        # The holder's own (stale inside the block) replica must agree
        # before act() runs its holder check.
        self._controllers[holder].replica.holder = holder
        return holder

    def silent_round(self, t: int) -> None:
        phase_done = self._canonical.observe(ChannelOutcome.SILENCE)
        if phase_done and self._old_first:
            for ctrl in self._controllers:
                ctrl.queue.age_all()

    def heard_round(self, t: int, sender: int, message: Message) -> tuple[int, ...]:
        # The token stays with its holder on heard rounds; only the
        # sender's confirmed packet leaves a queue.
        sender_ctrl = self._controllers[sender]
        if sender_ctrl._in_flight is not None:
            sender_ctrl.queue.remove(sender_ctrl._in_flight)
            sender_ctrl._in_flight = None
        return (sender,)

    def lower_segment(self, start: int, stop: int, plan) -> LoweredSegment | None:
        """Drain-cycle simulation: the whole span in closed form.

        The outcome sequence is fully determined by the token position,
        the per-station eligible-packet lists and the span's *planned*
        arrivals: the holder drains its eligible packets one per round, a
        silent round advances the token, a completed phase (OF-RRW)
        promotes the queued-meanwhile packets, and each planned arrival
        joins its station's lists exactly where the per-round injection
        step would put it.  Arrived-in-span packets are referenced by
        plan index; the simulation walks snapshots only — no controller
        state is touched until ``commit``.  Every station is always on,
        so every heard packet is delivered.
        """
        controllers = self._controllers
        canonical = self._canonical
        n = self.n
        old_first = self._old_first
        pos = canonical.token_pos
        adv = canonical.advancements
        pending: list[list] = []
        later: list[list] = []
        live = 0
        for ctrl in controllers:
            queue = ctrl.queue
            old = queue.old_packets()
            new = queue.new_packets()
            live += len(old) + len(new)
            if old_first:
                pending.append(old)
                later.append(new)
            else:
                old.extend(new)
                pending.append(old)
                later.append([])
        offsets = plan.offsets
        plan_base = plan.start
        sources = plan.sources
        ai = offsets[start - plan_base]
        live += offsets[stop - plan_base] - ai
        if live == 0:
            # All-silent span: queues empty and no arrivals planned.
            # (Reachable only when the engine's quiescent-span elision is
            # off; the token advance has a closed form of its own.)
            span = stop - start

            def commit_silent(packets: list) -> None:
                canonical.advance_silence(span)

            return LoweredSegment(
                start=start,
                stop=stop,
                transmitters=np.full(span, -1, dtype=np.int64),
                delta_stations=np.empty(0, dtype=np.int64),
                delta_values=np.empty(0, dtype=np.int64),
                delta_offsets=np.zeros(span + 1, dtype=np.int64),
                deliveries=[],
                commit=commit_silent,
            )
        inj_rounds = plan.injection_rounds()
        ip = bisect_left(inj_rounds, start)
        n_inj = len(inj_rounds)
        next_arrival = inj_rounds[ip] if ip < n_inj and inj_rounds[ip] < stop else stop
        consumed = [0] * n
        dirty = [False] * n  # stations whose queue contents change in-span
        transmitters: list[int] = []
        deliveries: list[tuple[int, object]] = []
        delta_stations: list[int] = []
        delta_values: list[int] = []
        delta_offsets: list[int] = [0]
        phases = 0
        t = start
        cut = stop
        holder = pos  # members are 0..n-1 in station order
        t_append = transmitters.append
        o_append = delta_offsets.append
        s_append = delta_stations.append
        v_append = delta_values.append
        d_append = deliveries.append
        # The holder's cursor is kept in locals between token moves (the
        # hot drain loop reads it every round).
        hold_list = pending[holder]
        hold_i = consumed[holder]
        hold_len = len(hold_list)
        while t < stop:
            if live == 0:
                # Drained with no arrivals left: the tail is all silent —
                # cut here so the engine's elision takes it in one step.
                cut = t
                break
            if t == next_arrival:
                row_start = len(delta_stations)
                hi = offsets[t - plan_base + 1]
                while ai < hi:
                    s = sources[ai]
                    if old_first:
                        later[s].append(ai)
                    else:
                        pending[s].append(ai)
                        if s == holder:
                            hold_len += 1
                    dirty[s] = True
                    for k in range(row_start, len(delta_stations)):
                        if delta_stations[k] == s:
                            delta_values[k] += 1
                            break
                    else:
                        s_append(s)
                        v_append(1)
                    ai += 1
                ip += 1
                next_arrival = (
                    inj_rounds[ip] if ip < n_inj and inj_rounds[ip] < stop else stop
                )
                if hold_i < hold_len:
                    d_append((t, hold_list[hold_i]))
                    hold_i += 1
                    live -= 1
                    t_append(holder)
                    # Net the consumption against a same-round arrival at
                    # the holder: one entry per (round, station).
                    for k in range(row_start, len(delta_stations)):
                        if delta_stations[k] == holder:
                            delta_values[k] -= 1
                            break
                    else:
                        s_append(holder)
                        v_append(-1)
                    o_append(len(delta_stations))
                    t += 1
                    continue
            elif hold_i < hold_len:
                d_append((t, hold_list[hold_i]))
                hold_i += 1
                live -= 1
                t_append(holder)
                s_append(holder)
                v_append(-1)
                o_append(len(delta_stations))
                t += 1
                continue
            t_append(-1)
            if hold_i:
                consumed[holder] = hold_i
                dirty[holder] = True
            pos += 1
            if pos == n:
                pos = 0
            holder = pos
            adv += 1
            if adv >= n:
                adv = 0
                phases += 1
                if old_first:
                    for station in range(n):
                        if later[station]:
                            pending[station].extend(later[station])
                            later[station] = []
                            dirty[station] = True
            hold_list = pending[holder]
            hold_i = consumed[holder]
            hold_len = len(hold_list)
            o_append(len(delta_stations))
            t += 1
        if hold_i:
            consumed[holder] = hold_i
            dirty[holder] = True

        j0 = offsets[start - plan_base]

        def commit(packets: list) -> None:
            # The simulation already played the span's pushes, phase-end
            # promotions and front-pop consumptions against the snapshot
            # lists, so each dirty station's post-span queue is known
            # outright: ``pending`` past the consumption cursor is the
            # old store (plain RRW ages on every inject, so everything
            # surviving is old), and OF-RRW's unpromoted ``later`` tail
            # is the new store.  Swap them in wholesale.
            for s in range(n):
                if not dirty[s]:
                    continue
                old_packets = [
                    packets[e - j0] if type(e) is int else e
                    for e in pending[s][consumed[s] :]
                ]
                tail = later[s]
                if tail:
                    new_packets = [
                        packets[e - j0] if type(e) is int else e for e in tail
                    ]
                else:
                    new_packets = []
                controllers[s].queue.replace(old_packets, new_packets)
            canonical.token_pos = pos
            canonical.advancements = adv
            canonical.phase_no += phases
            canonical.holder = pos

        return LoweredSegment(
            start=start,
            stop=cut,
            transmitters=np.asarray(transmitters, dtype=np.int64),
            delta_stations=np.asarray(delta_stations, dtype=np.int64),
            delta_values=np.asarray(delta_values, dtype=np.int64),
            delta_offsets=np.asarray(delta_offsets, dtype=np.int64),
            deliveries=deliveries,
            commit=commit,
        )


class _RRWBase(RoutingAlgorithm):
    """Shared scaffolding of the two withholding baselines."""

    old_first: bool = False

    def build_controllers(self) -> list[_RRWController]:
        controllers = [
            _RRWController(i, self.n, old_first=self.old_first) for i in range(self.n)
        ]
        driver = _RRWBlockDriver(controllers, old_first=self.old_first)
        for ctrl in controllers:
            ctrl.block_driver = driver
        return controllers

    def properties(self) -> AlgorithmProperties:
        return AlgorithmProperties(
            name=self.name,
            energy_cap=self.n,
            oblivious=True,
            direct=True,
            plain_packet=True,
        )

    def oblivious_schedule(self) -> ObliviousSchedule:
        return AlwaysOnSchedule(self.n)


@register_algorithm("rrw")
class RoundRobinWithholding(_RRWBase):
    """RRW [18]: token round-robin, holder drains its whole queue."""

    name = "RRW"
    old_first = False


@register_algorithm("of-rrw")
class OldFirstRoundRobinWithholding(_RRWBase):
    """OF-RRW [3]: token round-robin, holder drains only its *old* packets."""

    name = "OF-RRW"
    old_first = True
