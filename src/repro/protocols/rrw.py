"""Round-Robin-Withholding broadcast protocols (prior work [3, 18]).

``RRW`` and its old-first variant ``OF-RRW`` are the building blocks the
paper reuses inside k-Cycle and k-Clique, and — run with every station
switched on — they are the natural *uncapped* baselines against which the
energy-capped algorithms are compared in the figure-style sweeps.

Protocol (single shared channel, all participants awake):

* a conceptual token circulates round-robin over the stations;
* the token holder transmits its eligible packets one per round
  (eligible = any queued packet for RRW, only *old* packets — those
  present when the current phase began — for OF-RRW);
* a silent round advances the token; when the token has passed every
  station a *phase* ends and, for OF-RRW, packets queued meanwhile become
  old.

Because every station is always on, every heard packet is immediately
delivered to its destination, so the protocols route directly.  Their
energy cap is ``n`` — the point of the paper is to do better.
"""

from __future__ import annotations

from ..channel.feedback import ChannelOutcome, Feedback
from ..channel.message import Message
from ..core.algorithm import AlgorithmProperties, RoutingAlgorithm
from ..core.blocks import RoundBlockDriver
from ..core.controller import QueueingController
from ..core.registry import register_algorithm
from ..core.schedule import AlwaysOnSchedule, ObliviousSchedule
from .token_ring import TokenRingReplica

__all__ = ["RoundRobinWithholding", "OldFirstRoundRobinWithholding"]


class _RRWController(QueueingController):
    """Per-station controller for the uncapped RRW / OF-RRW baselines."""

    # Always on: wakes() is trivially pure and matches AlwaysOnSchedule.
    static_wake_schedule = True

    # Holding no packets the holder withholds (act returns None), and a
    # silent round only advances the token — modular arithmetic that
    # advance_silent_span reproduces (phase-end aging is a no-op on an
    # empty queue), so quiescent spans may be elided wholesale.
    silence_invariant = True

    def __init__(self, station_id: int, n: int, old_first: bool) -> None:
        super().__init__(station_id, n)
        self.old_first = old_first
        self.replica = TokenRingReplica(list(range(n)))
        if not old_first:
            # Plain RRW has no aging: treat every packet as immediately old.
            self.queue.age_all()

    def wakes(self, round_no: int) -> bool:
        return True

    def _eligible(self):
        if self.old_first:
            return self.queue.peek_old()
        return self.queue.peek_any()

    def act(self, round_no: int) -> Message | None:
        if self.replica.holder != self.station_id:
            return None
        packet = self._eligible()
        if packet is None:
            return None
        return self.transmit(packet)

    def on_inject(self, round_no: int, packet) -> None:
        super().on_inject(round_no, packet)
        if not self.old_first:
            self.queue.age_all()

    def after_feedback(self, round_no: int, feedback: Feedback) -> None:
        phase_done = self.replica.observe(feedback.outcome)
        if phase_done and self.old_first:
            self.queue.age_all()

    def advance_silent_span(self, start: int, stop: int) -> None:
        # Always awake: the token advances once per silent round.  The
        # OF-RRW phase-end age_all is a no-op on an empty queue, so the
        # completed-phase count needs no further replay.
        self.replica.advance_silence(stop - start)


class _RRWBlockDriver(RoundBlockDriver):
    """Compiled-round driver for RRW / OF-RRW (one shared instance per run).

    All ``n`` per-station token replicas are identical by construction, so
    inside a block the driver advances one *canonical* replica per silent
    round instead of ``n`` — synced from the controllers at block start
    and written back to all of them at block end.  Quiescent-span elision
    advances the per-station replicas through ``advance_silent_span`` as
    usual; the :meth:`advance_span` hook applies the same jump to the
    canonical copy so both stay consistent until the end-of-block sync.
    """

    def __init__(self, controllers: list[_RRWController], old_first: bool) -> None:
        super().__init__(len(controllers))
        self._controllers = controllers
        self._old_first = old_first
        self._canonical = TokenRingReplica(list(range(len(controllers))))

    def begin_block(self, start: int, stop: int) -> bool:
        source = self._controllers[0].replica
        canonical = self._canonical
        canonical.token_pos = source.token_pos
        canonical.advancements = source.advancements
        canonical.phase_no = source.phase_no
        canonical.holder = source.holder
        return True

    def end_block(self, stop: int) -> None:
        canonical = self._canonical
        for ctrl in self._controllers:
            replica = ctrl.replica
            replica.token_pos = canonical.token_pos
            replica.advancements = canonical.advancements
            replica.phase_no = canonical.phase_no
            replica.holder = canonical.holder

    def advance_span(self, start: int, stop: int) -> None:
        self._canonical.advance_silence(stop - start)

    def transmitter(self, t: int) -> int:
        holder = self._canonical.holder
        # The holder's own (stale inside the block) replica must agree
        # before act() runs its holder check.
        self._controllers[holder].replica.holder = holder
        return holder

    def silent_round(self, t: int) -> None:
        phase_done = self._canonical.observe(ChannelOutcome.SILENCE)
        if phase_done and self._old_first:
            for ctrl in self._controllers:
                ctrl.queue.age_all()

    def heard_round(self, t: int, sender: int, message: Message) -> tuple[int, ...]:
        # The token stays with its holder on heard rounds; only the
        # sender's confirmed packet leaves a queue.
        sender_ctrl = self._controllers[sender]
        if sender_ctrl._in_flight is not None:
            sender_ctrl.queue.remove(sender_ctrl._in_flight)
            sender_ctrl._in_flight = None
        return (sender,)


class _RRWBase(RoutingAlgorithm):
    """Shared scaffolding of the two withholding baselines."""

    old_first: bool = False

    def build_controllers(self) -> list[_RRWController]:
        controllers = [
            _RRWController(i, self.n, old_first=self.old_first) for i in range(self.n)
        ]
        driver = _RRWBlockDriver(controllers, old_first=self.old_first)
        for ctrl in controllers:
            ctrl.block_driver = driver
        return controllers

    def properties(self) -> AlgorithmProperties:
        return AlgorithmProperties(
            name=self.name,
            energy_cap=self.n,
            oblivious=True,
            direct=True,
            plain_packet=True,
        )

    def oblivious_schedule(self) -> ObliviousSchedule:
        return AlwaysOnSchedule(self.n)


@register_algorithm("rrw")
class RoundRobinWithholding(_RRWBase):
    """RRW [18]: token round-robin, holder drains its whole queue."""

    name = "RRW"
    old_first = False


@register_algorithm("of-rrw")
class OldFirstRoundRobinWithholding(_RRWBase):
    """OF-RRW [3]: token round-robin, holder drains only its *old* packets."""

    name = "OF-RRW"
    old_first = True
