"""Feedback-driven token consensus.

The round-robin withholding protocols of prior work (RRW, OF-RRW [3, 18])
and the in-group sub-protocols of k-Cycle and k-Clique all rely on a
*conceptual token* circulating among a set of stations.  The token is not
a message: every participating station infers its position purely from
the shared channel feedback — a silent round means the holder had nothing
to send, so the token advances; a heard message means the holder keeps it.
Because all participants hear the same feedback whenever they are awake
together, their replicas of the token state evolve identically.

Similarly, Move-Big-To-Front (MBTF [17]) maintains a shared ordered list
of stations that is updated deterministically from heard control bits, so
each participant can keep an identical private replica.
"""

from __future__ import annotations

from ..channel.feedback import ChannelOutcome
from ..channel.message import Message

__all__ = ["TokenRingReplica", "MoveBigToFrontReplica"]


class TokenRingReplica:
    """Replica of the round-robin token state shared by a group of stations.

    Parameters
    ----------
    members:
        Station names in the group's cyclic order.  The token starts at
        ``members[0]``.
    """

    def __init__(self, members: list[int]) -> None:
        if not members:
            raise ValueError("a token group needs at least one member")
        if len(set(members)) != len(members):
            raise ValueError("group members must be distinct")
        self.members = list(members)
        self.token_pos = 0
        self.advancements = 0
        self.phase_no = 0
        #: The station currently holding the token.  A plain attribute
        #: (updated on every advancement) because controllers read it once
        #: per awake round — the hottest query in the whole simulation.
        self.holder = self.members[0]

    def observe(self, outcome: ChannelOutcome) -> bool:
        """Update the replica with this round's channel outcome.

        Returns True when the token completed a full cycle this round,
        i.e. a *phase* of the group's protocol ended.
        """
        if outcome is ChannelOutcome.SILENCE:
            # Advance the token (inlined: every replica of every awake
            # station runs this once per silent round).
            members = self.members
            pos = self.token_pos = (self.token_pos + 1) % len(members)
            self.holder = members[pos]
            self.advancements += 1
            if self.advancements >= len(members):
                self.advancements = 0
                self.phase_no += 1
                return True
            return False
        # A heard message keeps the token with its holder; collisions do
        # not occur in the withholding protocols (only the holder may
        # transmit), but if one did the conservative choice is to keep
        # the token where it is so that replicas stay consistent.
        return False

    def advance_silence(self, rounds: int) -> int:
        """Fast-forward ``rounds`` consecutive silent observations in O(1).

        State-for-state equivalent to ``rounds`` calls of
        ``observe(SILENCE)``; returns the number of phases (full token
        cycles) completed in the stretch, so callers that act on
        ``observe``'s phase-done signal can replay it in aggregate.  This
        is the quiescent-span fast path of the kernel engine: during an
        all-queues-empty stretch every round is silent, so the token's
        final position is pure modular arithmetic.
        """
        if rounds <= 0:
            return 0
        members = self.members
        size = len(members)
        self.token_pos = (self.token_pos + rounds) % size
        self.holder = members[self.token_pos]
        phases, self.advancements = divmod(self.advancements + rounds, size)
        self.phase_no += phases
        return phases

    def _advance(self) -> bool:
        """Advance the token one position (test/debug helper)."""
        return self.observe(ChannelOutcome.SILENCE)


class MoveBigToFrontReplica:
    """Replica of the MBTF station list and token position.

    The list starts in name order.  The token holder transmits while it
    has packets; a silent round advances the token to the next station in
    the current list order.  When a heard message carries the ``big``
    control bit, its sender is moved to the front of the list and receives
    the token, so that a heavily loaded station can transmit for long
    stretches without wasting rounds.
    """

    BIG_FLAG = "big"

    def __init__(self, members: list[int]) -> None:
        if not members:
            raise ValueError("MBTF needs at least one member")
        if len(set(members)) != len(members):
            raise ValueError("group members must be distinct")
        self.order = list(members)
        self.token_pos = 0
        #: The station currently expected to transmit (plain attribute,
        #: updated whenever the token moves — see TokenRingReplica.holder).
        self.holder = self.order[0]

    def observe(self, outcome: ChannelOutcome, message: Message | None) -> None:
        """Update the replica with this round's outcome (and heard message)."""
        if outcome is ChannelOutcome.SILENCE:
            self.token_pos = (self.token_pos + 1) % len(self.order)
            self.holder = self.order[self.token_pos]
            return
        if outcome is ChannelOutcome.HEARD and message is not None:
            if message.control.get(self.BIG_FLAG):
                self._move_to_front(message.sender)
            # Otherwise the holder keeps the token.

    def advance_silence(self, rounds: int) -> None:
        """Fast-forward ``rounds`` consecutive silent observations in O(1).

        Silence never reorders the MBTF list (only heard ``big`` bits
        do), so the only state to advance is the token position.
        """
        if rounds <= 0:
            return
        self.token_pos = (self.token_pos + rounds) % len(self.order)
        self.holder = self.order[self.token_pos]

    def _move_to_front(self, station: int) -> None:
        if station not in self.order:
            return
        self.order.remove(station)
        self.order.insert(0, station)
        self.token_pos = 0
        self.holder = station
