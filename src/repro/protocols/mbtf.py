"""Move-Big-To-Front (MBTF) broadcast protocol (prior work [17]).

MBTF is the throughput-1 broadcast algorithm of Chlebus, Kowalski and
Rokicki for the uncapped multiple access channel.  The paper uses it in
two roles: as the per-thread sub-protocol of k-Subsets (Section 6) and,
conceptually, as the ancestor of Orchestra's baton mechanism.  We provide
it both as a reusable in-group engine (via
:class:`~repro.protocols.token_ring.MoveBigToFrontReplica`) and as a
standalone uncapped baseline algorithm.

Protocol sketch: stations keep a shared ordered list (initially by name).
A conceptual token moves down the list; the holder transmits one queued
packet per round while it has any, and a silent round passes the token
on.  A station whose queue size reaches the *big* threshold (``n``, the
number of participants) sets a control bit in its transmissions; hearing
that bit, every station moves the sender to the front of its list copy
and hands it the token, so a backlogged station can transmit every round
until it drains — which is what yields stability at injection rate 1.
"""

from __future__ import annotations

from ..channel.feedback import ChannelOutcome, Feedback
from ..channel.message import Message
from ..core.algorithm import AlgorithmProperties, RoutingAlgorithm
from ..core.blocks import RoundBlockDriver
from ..core.controller import QueueingController
from ..core.registry import register_algorithm
from ..core.schedule import AlwaysOnSchedule, ObliviousSchedule
from .token_ring import MoveBigToFrontReplica

__all__ = ["MoveBigToFront"]


class _MBTFController(QueueingController):
    """Per-station controller of the uncapped MBTF baseline."""

    # Always on: wakes() is trivially pure and matches AlwaysOnSchedule.
    static_wake_schedule = True

    # Holding no packets the holder withholds, and silence only advances
    # the token (the MBTF list reorders exclusively on heard big-bits),
    # so quiescent spans may be elided wholesale.
    silence_invariant = True

    def __init__(self, station_id: int, n: int, big_threshold: int | None = None) -> None:
        super().__init__(station_id, n)
        self.replica = MoveBigToFrontReplica(list(range(n)))
        self.big_threshold = big_threshold if big_threshold is not None else n

    def wakes(self, round_no: int) -> bool:
        return True

    def act(self, round_no: int) -> Message | None:
        if self.replica.holder != self.station_id:
            return None
        packet = self.queue.peek_any()
        if packet is None:
            return None
        control = {}
        if len(self.queue) >= self.big_threshold:
            control[MoveBigToFrontReplica.BIG_FLAG] = True
        return self.transmit(packet, control=control)

    def after_feedback(self, round_no: int, feedback: Feedback) -> None:
        self.replica.observe(feedback.outcome, feedback.message)

    def advance_silent_span(self, start: int, stop: int) -> None:
        # Always awake: the token advances once per silent round.
        self.replica.advance_silence(stop - start)


class _MBTFBlockDriver(RoundBlockDriver):
    """Compiled-round driver for the MBTF baseline.

    Same canonical-replica scheme as the RRW driver, with the MBTF list
    as the replicated state: silence advances the canonical token, a
    heard big-bit moves the canonical list's sender to the front, and the
    per-station replicas are refreshed from the canonical copy at block
    end.
    """

    def __init__(self, controllers: list[_MBTFController]) -> None:
        super().__init__(len(controllers))
        self._controllers = controllers
        self._canonical = MoveBigToFrontReplica(list(range(len(controllers))))

    def begin_block(self, start: int, stop: int) -> bool:
        source = self._controllers[0].replica
        canonical = self._canonical
        canonical.order = list(source.order)
        canonical.token_pos = source.token_pos
        canonical.holder = source.holder
        return True

    def end_block(self, stop: int) -> None:
        canonical = self._canonical
        for ctrl in self._controllers:
            replica = ctrl.replica
            replica.order = list(canonical.order)
            replica.token_pos = canonical.token_pos
            replica.holder = canonical.holder

    def advance_span(self, start: int, stop: int) -> None:
        self._canonical.advance_silence(stop - start)

    def transmitter(self, t: int) -> int:
        holder = self._canonical.holder
        self._controllers[holder].replica.holder = holder
        return holder

    def silent_round(self, t: int) -> None:
        self._canonical.observe(ChannelOutcome.SILENCE, None)

    def heard_round(self, t: int, sender: int, message: Message) -> tuple[int, ...]:
        sender_ctrl = self._controllers[sender]
        if sender_ctrl._in_flight is not None:
            sender_ctrl.queue.remove(sender_ctrl._in_flight)
            sender_ctrl._in_flight = None
        self._canonical.observe(ChannelOutcome.HEARD, message)
        return (sender,)


@register_algorithm("mbtf")
class MoveBigToFront(RoutingAlgorithm):
    """Uncapped MBTF baseline: stable for injection rate 1 with energy cap n."""

    name = "MBTF"

    def __init__(self, n: int, big_threshold: int | None = None) -> None:
        super().__init__(n)
        self.big_threshold = big_threshold

    def build_controllers(self) -> list[_MBTFController]:
        controllers = [
            _MBTFController(i, self.n, big_threshold=self.big_threshold)
            for i in range(self.n)
        ]
        driver = _MBTFBlockDriver(controllers)
        for ctrl in controllers:
            ctrl.block_driver = driver
        return controllers

    def properties(self) -> AlgorithmProperties:
        return AlgorithmProperties(
            name=self.name,
            energy_cap=self.n,
            oblivious=True,
            direct=True,
            plain_packet=False,
        )

    def oblivious_schedule(self) -> ObliviousSchedule:
        return AlwaysOnSchedule(self.n)
