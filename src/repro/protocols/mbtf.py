"""Move-Big-To-Front (MBTF) broadcast protocol (prior work [17]).

MBTF is the throughput-1 broadcast algorithm of Chlebus, Kowalski and
Rokicki for the uncapped multiple access channel.  The paper uses it in
two roles: as the per-thread sub-protocol of k-Subsets (Section 6) and,
conceptually, as the ancestor of Orchestra's baton mechanism.  We provide
it both as a reusable in-group engine (via
:class:`~repro.protocols.token_ring.MoveBigToFrontReplica`) and as a
standalone uncapped baseline algorithm.

Protocol sketch: stations keep a shared ordered list (initially by name).
A conceptual token moves down the list; the holder transmits one queued
packet per round while it has any, and a silent round passes the token
on.  A station whose queue size reaches the *big* threshold (``n``, the
number of participants) sets a control bit in its transmissions; hearing
that bit, every station moves the sender to the front of its list copy
and hands it the token, so a backlogged station can transmit every round
until it drains — which is what yields stability at injection rate 1.
"""

from __future__ import annotations

from ..channel.feedback import Feedback
from ..channel.message import Message
from ..core.algorithm import AlgorithmProperties, RoutingAlgorithm
from ..core.controller import QueueingController
from ..core.registry import register_algorithm
from ..core.schedule import AlwaysOnSchedule, ObliviousSchedule
from .token_ring import MoveBigToFrontReplica

__all__ = ["MoveBigToFront"]


class _MBTFController(QueueingController):
    """Per-station controller of the uncapped MBTF baseline."""

    # Always on: wakes() is trivially pure and matches AlwaysOnSchedule.
    static_wake_schedule = True

    # Holding no packets the holder withholds, and silence only advances
    # the token (the MBTF list reorders exclusively on heard big-bits),
    # so quiescent spans may be elided wholesale.
    silence_invariant = True

    def __init__(self, station_id: int, n: int, big_threshold: int | None = None) -> None:
        super().__init__(station_id, n)
        self.replica = MoveBigToFrontReplica(list(range(n)))
        self.big_threshold = big_threshold if big_threshold is not None else n

    def wakes(self, round_no: int) -> bool:
        return True

    def act(self, round_no: int) -> Message | None:
        if self.replica.holder != self.station_id:
            return None
        packet = self.queue.peek_any()
        if packet is None:
            return None
        control = {}
        if len(self.queue) >= self.big_threshold:
            control[MoveBigToFrontReplica.BIG_FLAG] = True
        return self.transmit(packet, control=control)

    def after_feedback(self, round_no: int, feedback: Feedback) -> None:
        self.replica.observe(feedback.outcome, feedback.message)

    def advance_silent_span(self, start: int, stop: int) -> None:
        # Always awake: the token advances once per silent round.
        self.replica.advance_silence(stop - start)


@register_algorithm("mbtf")
class MoveBigToFront(RoutingAlgorithm):
    """Uncapped MBTF baseline: stable for injection rate 1 with energy cap n."""

    name = "MBTF"

    def __init__(self, n: int, big_threshold: int | None = None) -> None:
        super().__init__(n)
        self.big_threshold = big_threshold

    def build_controllers(self) -> list[_MBTFController]:
        return [
            _MBTFController(i, self.n, big_threshold=self.big_threshold)
            for i in range(self.n)
        ]

    def properties(self) -> AlgorithmProperties:
        return AlgorithmProperties(
            name=self.name,
            energy_cap=self.n,
            oblivious=True,
            direct=True,
            plain_packet=False,
        )

    def oblivious_schedule(self) -> ObliviousSchedule:
        return AlwaysOnSchedule(self.n)
