"""Move-Big-To-Front (MBTF) broadcast protocol (prior work [17]).

MBTF is the throughput-1 broadcast algorithm of Chlebus, Kowalski and
Rokicki for the uncapped multiple access channel.  The paper uses it in
two roles: as the per-thread sub-protocol of k-Subsets (Section 6) and,
conceptually, as the ancestor of Orchestra's baton mechanism.  We provide
it both as a reusable in-group engine (via
:class:`~repro.protocols.token_ring.MoveBigToFrontReplica`) and as a
standalone uncapped baseline algorithm.

Protocol sketch: stations keep a shared ordered list (initially by name).
A conceptual token moves down the list; the holder transmits one queued
packet per round while it has any, and a silent round passes the token
on.  A station whose queue size reaches the *big* threshold (``n``, the
number of participants) sets a control bit in its transmissions; hearing
that bit, every station moves the sender to the front of its list copy
and hands it the token, so a backlogged station can transmit every round
until it drains — which is what yields stability at injection rate 1.
"""

from __future__ import annotations

from bisect import bisect_left

import numpy as np

from ..channel.feedback import ChannelOutcome, Feedback
from ..channel.message import Message
from ..core.algorithm import AlgorithmProperties, RoutingAlgorithm
from ..core.blocks import LoweredSegment, RoundBlockDriver
from ..core.controller import QueueingController
from ..core.registry import register_algorithm
from ..core.schedule import AlwaysOnSchedule, ObliviousSchedule
from .token_ring import MoveBigToFrontReplica

__all__ = ["MoveBigToFront"]


class _MBTFController(QueueingController):
    """Per-station controller of the uncapped MBTF baseline."""

    # Always on: wakes() is trivially pure and matches AlwaysOnSchedule.
    static_wake_schedule = True

    # Holding no packets the holder withholds, and silence only advances
    # the token (the MBTF list reorders exclusively on heard big-bits),
    # so quiescent spans may be elided wholesale.
    silence_invariant = True

    def __init__(self, station_id: int, n: int, big_threshold: int | None = None) -> None:
        super().__init__(station_id, n)
        self.replica = MoveBigToFrontReplica(list(range(n)))
        self.big_threshold = big_threshold if big_threshold is not None else n

    def wakes(self, round_no: int) -> bool:
        return True

    def act(self, round_no: int) -> Message | None:
        if self.replica.holder != self.station_id:
            return None
        packet = self.queue.peek_any()
        if packet is None:
            return None
        control = {}
        if len(self.queue) >= self.big_threshold:
            control[MoveBigToFrontReplica.BIG_FLAG] = True
        return self.transmit(packet, control=control)

    def after_feedback(self, round_no: int, feedback: Feedback) -> None:
        self.replica.observe(feedback.outcome, feedback.message)

    def advance_silent_span(self, start: int, stop: int) -> None:
        # Always awake: the token advances once per silent round.
        self.replica.advance_silence(stop - start)


class _MBTFBlockDriver(RoundBlockDriver):
    """Compiled-round driver for the MBTF baseline.

    Same canonical-replica scheme as the RRW driver, with the MBTF list
    as the replicated state: silence advances the canonical token, a
    heard big-bit moves the canonical list's sender to the front, and the
    per-station replicas are refreshed from the canonical copy at block
    end.
    """

    def __init__(self, controllers: list[_MBTFController]) -> None:
        super().__init__(len(controllers))
        self._controllers = controllers
        self._canonical = MoveBigToFrontReplica(list(range(len(controllers))))

    def begin_block(self, start: int, stop: int) -> bool:
        source = self._controllers[0].replica
        canonical = self._canonical
        canonical.order = list(source.order)
        canonical.token_pos = source.token_pos
        canonical.holder = source.holder
        return True

    def end_block(self, stop: int) -> None:
        canonical = self._canonical
        for ctrl in self._controllers:
            replica = ctrl.replica
            replica.order = list(canonical.order)
            replica.token_pos = canonical.token_pos
            replica.holder = canonical.holder

    def advance_span(self, start: int, stop: int) -> None:
        self._canonical.advance_silence(stop - start)

    def transmitter(self, t: int) -> int:
        holder = self._canonical.holder
        self._controllers[holder].replica.holder = holder
        return holder

    def silent_round(self, t: int) -> None:
        self._canonical.observe(ChannelOutcome.SILENCE, None)

    def heard_round(self, t: int, sender: int, message: Message) -> tuple[int, ...]:
        sender_ctrl = self._controllers[sender]
        if sender_ctrl._in_flight is not None:
            sender_ctrl.queue.remove(sender_ctrl._in_flight)
            sender_ctrl._in_flight = None
        self._canonical.observe(ChannelOutcome.HEARD, message)
        return (sender,)

    def lower_segment(self, start: int, stop: int, plan) -> LoweredSegment | None:
        """List-order simulation of the whole span in closed form.

        The outcome sequence is determined by the MBTF list, the token
        position, the per-station queue snapshots and the span's
        *planned* arrivals: the holder transmits while it has packets
        (setting the big bit while its remaining count is at or above
        the threshold, which moves it to the list front — a no-op for
        the holder's own transmissions until silence passes the token),
        silence advances the token through the current list order, and
        each planned arrival joins its station's pending list where the
        per-round injection step would append it — possibly pushing the
        station over the big threshold mid-span.  Pure until ``commit``;
        all stations are on, so every heard packet is delivered.
        """
        controllers = self._controllers
        canonical = self._canonical
        n = self.n
        threshold = controllers[0].big_threshold
        order = list(canonical.order)
        pos = canonical.token_pos
        holder = order[pos]
        pending: list[list] = []
        remaining: list[int] = []
        old_counts: list[int] = []
        for ctrl in controllers:
            queue = ctrl.queue
            packets = queue.old_packets()
            old_counts.append(len(packets))
            packets.extend(queue.new_packets())
            pending.append(packets)
            remaining.append(len(packets))
        live = sum(remaining)
        offsets = plan.offsets
        plan_base = plan.start
        sources = plan.sources
        ai = offsets[start - plan_base]
        live += offsets[stop - plan_base] - ai
        if live == 0:
            # All-silent span: the token walk has a closed form.
            span = stop - start
            silent_pos = (pos + span) % len(order)
            silent_holder = order[silent_pos]

            def commit_silent(packets: list) -> None:
                canonical.token_pos = silent_pos
                canonical.holder = silent_holder

            return LoweredSegment(
                start=start,
                stop=stop,
                transmitters=np.full(span, -1, dtype=np.int64),
                delta_stations=np.empty(0, dtype=np.int64),
                delta_values=np.empty(0, dtype=np.int64),
                delta_offsets=np.zeros(span + 1, dtype=np.int64),
                deliveries=[],
                commit=commit_silent,
            )
        inj_rounds = plan.injection_rounds()
        ip = bisect_left(inj_rounds, start)
        n_inj = len(inj_rounds)
        next_arrival = inj_rounds[ip] if ip < n_inj and inj_rounds[ip] < stop else stop
        consumed = [0] * n
        dirty = [False] * n  # stations whose queue contents change in-span
        transmitters: list[int] = []
        deliveries: list[tuple[int, object]] = []
        delta_stations: list[int] = []
        delta_values: list[int] = []
        delta_offsets: list[int] = [0]
        t = start
        cut = stop
        t_append = transmitters.append
        o_append = delta_offsets.append
        s_append = delta_stations.append
        v_append = delta_values.append
        d_append = deliveries.append
        # The holder's cursor is kept in locals between token moves (the
        # hot drain loop reads it every round).
        hold_list = pending[holder]
        hold_i = consumed[holder]
        hold_rem = remaining[holder]
        while t < stop:
            if live == 0:
                # Drained with no arrivals left: the tail is all silent —
                # cut here so the engine's elision takes it in one step.
                cut = t
                break
            if t == next_arrival:
                row_start = len(delta_stations)
                hi = offsets[t - plan_base + 1]
                while ai < hi:
                    s = sources[ai]
                    pending[s].append(ai)
                    if s == holder:
                        hold_rem += 1
                    else:
                        remaining[s] += 1
                    dirty[s] = True
                    for k in range(row_start, len(delta_stations)):
                        if delta_stations[k] == s:
                            delta_values[k] += 1
                            break
                    else:
                        s_append(s)
                        v_append(1)
                    ai += 1
                ip += 1
                next_arrival = (
                    inj_rounds[ip] if ip < n_inj and inj_rounds[ip] < stop else stop
                )
                if hold_rem > 0:
                    d_append((t, hold_list[hold_i]))
                    hold_i += 1
                    live -= 1
                    t_append(holder)
                    # Net the consumption against a same-round arrival at
                    # the holder: one entry per (round, station).
                    for k in range(row_start, len(delta_stations)):
                        if delta_stations[k] == holder:
                            delta_values[k] -= 1
                            break
                    else:
                        s_append(holder)
                        v_append(-1)
                    if hold_rem >= threshold and order[0] != holder:
                        order.remove(holder)
                        order.insert(0, holder)
                        pos = 0
                    hold_rem -= 1
                    o_append(len(delta_stations))
                    t += 1
                    continue
            elif hold_rem > 0:
                d_append((t, hold_list[hold_i]))
                hold_i += 1
                live -= 1
                t_append(holder)
                s_append(holder)
                v_append(-1)
                if hold_rem >= threshold and order[0] != holder:
                    # Heard big bit: every replica moves the sender to
                    # the front and hands it the token.
                    order.remove(holder)
                    order.insert(0, holder)
                    pos = 0
                hold_rem -= 1
                o_append(len(delta_stations))
                t += 1
                continue
            t_append(-1)
            if hold_i:
                consumed[holder] = hold_i
                dirty[holder] = True
            remaining[holder] = hold_rem
            pos += 1
            if pos == len(order):
                pos = 0
            holder = order[pos]
            hold_list = pending[holder]
            hold_i = consumed[holder]
            hold_rem = remaining[holder]
            o_append(len(delta_stations))
            t += 1
        if hold_i:
            consumed[holder] = hold_i
            dirty[holder] = True
        remaining[holder] = hold_rem

        j0 = offsets[start - plan_base]

        def commit(packets: list) -> None:
            # The simulation consumed queue fronts from the ``pending``
            # snapshots (old, then snapshot-new, then arrivals — exactly
            # the pop order) and MBTF never ages, so each dirty station's
            # post-span queue is the snapshot tail: survivors up to the
            # original old count stay old, everything after stays new.
            # Swap the stores in wholesale.
            for s in range(n):
                if not dirty[s]:
                    continue
                seq = pending[s]
                c = consumed[s]
                boundary = old_counts[s]
                old_packets = seq[c:boundary] if c < boundary else []
                new_packets = [
                    packets[e - j0] if type(e) is int else e
                    for e in seq[boundary if boundary > c else c :]
                ]
                controllers[s].queue.replace(old_packets, new_packets)
            canonical.order = order
            canonical.token_pos = pos
            canonical.holder = order[pos]

        return LoweredSegment(
            start=start,
            stop=cut,
            transmitters=np.asarray(transmitters, dtype=np.int64),
            delta_stations=np.asarray(delta_stations, dtype=np.int64),
            delta_values=np.asarray(delta_values, dtype=np.int64),
            delta_offsets=np.asarray(delta_offsets, dtype=np.int64),
            deliveries=deliveries,
            commit=commit,
        )


@register_algorithm("mbtf")
class MoveBigToFront(RoutingAlgorithm):
    """Uncapped MBTF baseline: stable for injection rate 1 with energy cap n."""

    name = "MBTF"

    def __init__(self, n: int, big_threshold: int | None = None) -> None:
        super().__init__(n)
        self.big_threshold = big_threshold

    def build_controllers(self) -> list[_MBTFController]:
        controllers = [
            _MBTFController(i, self.n, big_threshold=self.big_threshold)
            for i in range(self.n)
        ]
        driver = _MBTFBlockDriver(controllers)
        for ctrl in controllers:
            ctrl.block_driver = driver
        return controllers

    def properties(self) -> AlgorithmProperties:
        return AlgorithmProperties(
            name=self.name,
            energy_cap=self.n,
            oblivious=True,
            direct=True,
            plain_packet=False,
        )

    def oblivious_schedule(self) -> ObliviousSchedule:
        return AlwaysOnSchedule(self.n)
