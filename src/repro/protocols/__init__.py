"""Prior-work protocols the paper builds on: RRW, OF-RRW [3, 18] and MBTF [17]."""

from .mbtf import MoveBigToFront
from .rrw import OldFirstRoundRobinWithholding, RoundRobinWithholding
from .token_ring import MoveBigToFrontReplica, TokenRingReplica

__all__ = [
    "MoveBigToFront",
    "MoveBigToFrontReplica",
    "OldFirstRoundRobinWithholding",
    "RoundRobinWithholding",
    "TokenRingReplica",
]
