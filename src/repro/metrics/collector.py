"""Run-time metrics collection and correctness bookkeeping.

The collector is fed by the engine:

* every injection (packet + round),
* every delivery (packet + consuming station + round),
* once per round, the per-station queue sizes, the energy spent and the
  channel outcome.

It verifies the correctness conditions of Section 2 — every delivery goes
to the packet's destination, and no packet is delivered more than once —
and exposes the two performance measures the paper uses: the **queue
size** (total packets stored in a round) and **packet delay / latency**
(delivery round minus injection round), plus energy statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..channel.feedback import ChannelOutcome
from ..channel.packet import Packet
from .summary import RunSummary

__all__ = ["DeliveryError", "MetricsCollector"]


class DeliveryError(RuntimeError):
    """A correctness violation: wrong destination or duplicate delivery."""


@dataclass(slots=True)
class _PacketRecord:
    packet: Packet
    injected_at: int
    delivered_at: int | None = None


@dataclass
class MetricsCollector:
    """Accumulates per-round and per-packet statistics of one execution."""

    records: dict[int, _PacketRecord] = field(default_factory=dict)
    total_queue_series: list[int] = field(default_factory=list)
    per_station_max_queue: list[int] = field(default_factory=list)
    energy_series: list[int] = field(default_factory=list)
    outcome_counts: dict[ChannelOutcome, int] = field(default_factory=dict)
    delays: list[int] = field(default_factory=list)
    rounds_observed: int = 0
    injected_count: int = 0
    delivered_count: int = 0

    # -- engine-facing API ---------------------------------------------------
    def record_injection(self, packet: Packet, round_no: int) -> None:
        """Register an adversarial injection."""
        if packet.packet_id in self.records:
            raise DeliveryError(f"packet {packet.packet_id} injected twice")
        self.records[packet.packet_id] = _PacketRecord(packet, round_no)
        self.injected_count += 1

    def record_delivery(self, packet: Packet, station: int, round_no: int) -> None:
        """Register a delivery, enforcing exactly-once and right-destination."""
        if station != packet.destination:
            raise DeliveryError(
                f"packet {packet.packet_id} consumed by station {station}, "
                f"but its destination is {packet.destination}"
            )
        record = self.records.get(packet.packet_id)
        if record is None:
            raise DeliveryError(
                f"packet {packet.packet_id} delivered but never injected"
            )
        if record.delivered_at is not None:
            raise DeliveryError(
                f"packet {packet.packet_id} delivered twice "
                f"(rounds {record.delivered_at} and {round_no})"
            )
        record.delivered_at = round_no
        self.delivered_count += 1
        self.delays.append(round_no - record.injected_at)

    def record_round(
        self,
        round_no: int,
        queue_sizes: list[int],
        awake_count: int,
        outcome: ChannelOutcome,
    ) -> None:
        """Register the end-of-round system state (polled path).

        The engine hands over every station's queue size each round.  The
        kernel's incremental path instead calls :meth:`begin_stations`
        once, :meth:`record_station_queue` only for stations whose queue
        changed, and :meth:`record_round_total` once per round; both paths
        accumulate identical statistics.
        """
        self.begin_stations(len(queue_sizes))
        for i, q in enumerate(queue_sizes):
            if q > self.per_station_max_queue[i]:
                self.per_station_max_queue[i] = q
        self.record_round_total(round_no, int(sum(queue_sizes)), awake_count, outcome)

    # -- incremental engine-facing API (kernel loop) -------------------------
    def begin_stations(self, n: int) -> None:
        """Size the per-station maxima before incremental updates start."""
        if not self.per_station_max_queue:
            self.per_station_max_queue = [0] * n

    def record_station_queue(self, station: int, size: int) -> None:
        """Update one station's queue-size maximum (changed stations only)."""
        if size > self.per_station_max_queue[station]:
            self.per_station_max_queue[station] = size

    def record_round_total(
        self,
        round_no: int,
        total_queue: int,
        awake_count: int,
        outcome: ChannelOutcome,
    ) -> None:
        """Register the end-of-round totals (incremental path)."""
        self.rounds_observed += 1
        self.total_queue_series.append(total_queue)
        self.energy_series.append(awake_count)
        self.outcome_counts[outcome] = self.outcome_counts.get(outcome, 0) + 1

    def record_energy_series(self, awake_counts: "list[int]") -> None:
        """Batch-append per-round awake counts (vectorised schedule path).

        The kernel engine precomputes the whole run's awake counts as a
        numpy series from the published schedule's period and flushes them
        here in one call instead of one ``energy_series.append`` per
        round; the resulting list is element-for-element identical to the
        per-round path.
        """
        self.energy_series.extend(awake_counts)

    def record_queue_span(self, total_queue: int, rounds: int) -> None:
        """Batch-append a flat stretch of the total-queue series.

        The kernel engine's quiescent-span fast path records ``rounds``
        consecutive rounds whose total queue size is ``total_queue`` (0
        in practice) in one extend instead of one append per round; the
        per-station maxima are untouched because no queue changed.  Like
        :meth:`record_energy_series` this leaves ``rounds_observed`` to
        the caller's end-of-run reconciliation.
        """
        self.total_queue_series.extend([total_queue] * rounds)

    def record_round_totals(self, totals: "list[int]") -> None:
        """Batch-append end-of-round total queue sizes (lowered segments).

        The block engine's segment-lowering path computes a whole span's
        running totals with one vectorised kernel and flushes them here;
        like :meth:`record_queue_span` this leaves ``rounds_observed``
        and the per-station maxima (updated from the segment's own
        per-station flow kernel) to the caller.
        """
        self.total_queue_series.extend(totals)

    # -- derived statistics ----------------------------------------------------
    @property
    def pending_count(self) -> int:
        """Packets injected but not yet delivered."""
        return self.injected_count - self.delivered_count

    def max_queue(self) -> int:
        """Maximum total number of queued packets observed in any round."""
        return max(self.total_queue_series, default=0)

    def max_delay(self) -> int:
        """Maximum delay among *delivered* packets (0 when none delivered)."""
        return max(self.delays, default=0)

    def max_pending_age(self) -> int:
        """Age (rounds since injection) of the oldest still-undelivered packet."""
        if self.rounds_observed == 0:
            return 0
        now = self.rounds_observed
        ages = [
            now - rec.injected_at
            for rec in self.records.values()
            if rec.delivered_at is None
        ]
        return max(ages, default=0)

    def observed_latency(self) -> int:
        """Latency measure of the execution.

        The latency of an execution is the maximum packet delay; packets
        still queued at the end contribute their current age, which lower
        bounds their eventual delay.
        """
        return max(self.max_delay(), self.max_pending_age())

    def mean_delay(self) -> float:
        """Average delay of delivered packets."""
        return float(np.mean(self.delays)) if self.delays else 0.0

    def delivery_ratio(self) -> float:
        """Fraction of injected packets delivered by the end of the run."""
        if self.injected_count == 0:
            return 1.0
        return self.delivered_count / self.injected_count

    def throughput(self) -> float:
        """Delivered packets per round."""
        if self.rounds_observed == 0:
            return 0.0
        return self.delivered_count / self.rounds_observed

    def total_energy(self) -> int:
        """Total station-rounds of energy spent."""
        return int(sum(self.energy_series))

    def energy_per_round(self) -> float:
        """Average number of awake stations per round."""
        if not self.energy_series:
            return 0.0
        return float(np.mean(self.energy_series))

    def energy_per_delivery(self) -> float:
        """Station-rounds spent per delivered packet (inf when none delivered)."""
        if self.delivered_count == 0:
            return float("inf")
        return self.total_energy() / self.delivered_count

    def queue_series_array(self) -> np.ndarray:
        """Total queue-size time series as a numpy array."""
        return np.asarray(self.total_queue_series, dtype=np.int64)

    def undelivered_packets(self) -> list[Packet]:
        """Packets injected but never delivered, in injection order."""
        pending = [
            rec for rec in self.records.values() if rec.delivered_at is None
        ]
        pending.sort(key=lambda rec: (rec.injected_at, rec.packet.packet_id))
        return [rec.packet for rec in pending]

    def summary(self, label: str = "") -> RunSummary:
        """Condense the collected statistics into a :class:`RunSummary`."""
        from .stability import assess_stability

        verdict = assess_stability(self.queue_series_array())
        return RunSummary(
            label=label,
            rounds=self.rounds_observed,
            injected=self.injected_count,
            delivered=self.delivered_count,
            max_queue=self.max_queue(),
            max_delay=self.max_delay(),
            observed_latency=self.observed_latency(),
            mean_delay=self.mean_delay(),
            delivery_ratio=self.delivery_ratio(),
            throughput=self.throughput(),
            energy_per_round=self.energy_per_round(),
            max_energy=max(self.energy_series, default=0),
            energy_per_delivery=self.energy_per_delivery(),
            queue_growth_rate=verdict.growth_rate,
            stable=verdict.stable,
        )
