"""Performance metrics: queue sizes, packet delays, energy, stability."""

from .collector import DeliveryError, MetricsCollector
from .stability import StabilityVerdict, assess_stability
from .summary import RunSummary

__all__ = [
    "DeliveryError",
    "MetricsCollector",
    "RunSummary",
    "StabilityVerdict",
    "assess_stability",
]
