"""Run summaries: the condensed result of one simulated execution."""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

__all__ = ["RunSummary"]


@dataclass(frozen=True, slots=True)
class RunSummary:
    """Headline statistics of a finished simulation run.

    The fields mirror the performance measures used in the paper:
    ``max_queue`` is the queue-size measure, ``observed_latency`` the
    latency measure (maximum delay of a delivered packet, or the age of
    the oldest still-queued packet if that is larger), and ``stable``
    records whether the total queue size shows no significant growth trend
    over the run.
    """

    label: str
    rounds: int
    injected: int
    delivered: int
    max_queue: int
    max_delay: int
    observed_latency: int
    mean_delay: float
    delivery_ratio: float
    throughput: float
    energy_per_round: float
    max_energy: int
    energy_per_delivery: float
    queue_growth_rate: float
    stable: bool

    def as_dict(self) -> dict:
        """Plain-dict view, convenient for CSV/JSON reporting."""
        return asdict(self)

    def format_row(self) -> str:
        """One-line human-readable rendering used by the reporting module."""
        return (
            f"{self.label:<38s} rounds={self.rounds:<8d} inj={self.injected:<7d} "
            f"del={self.delivered:<7d} maxQ={self.max_queue:<7d} "
            f"lat={self.observed_latency:<7d} E/rnd={self.energy_per_round:5.2f} "
            f"growth={self.queue_growth_rate:+7.4f} "
            f"{'STABLE' if self.stable else 'UNSTABLE'}"
        )

    @staticmethod
    def header() -> str:
        """Column header matching :meth:`format_row`."""
        return (
            f"{'run':<38s} {'rounds':<15s} {'injected':<11s} {'delivered':<11s} "
            f"{'max queue':<12s} {'latency':<11s} {'energy':<10s} {'growth':<13s} verdict"
        )
