"""Empirical stability assessment of queue-size trajectories.

A routing algorithm is *stable* against an adversary when the total queue
size stays bounded (Section 2).  A finite simulation cannot prove
boundedness, so we use the standard empirical proxy: fit a linear trend to
the second half of the total-queue time series and call the run unstable
when the queues grow at a significant per-round rate *and* keep setting
new highs late in the run.  The thresholds are deliberately conservative
so that genuinely stable algorithms whose queues plateau at a large
constant are not misclassified.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["StabilityVerdict", "assess_stability"]


@dataclass(frozen=True, slots=True)
class StabilityVerdict:
    """Outcome of the queue-growth analysis of one run."""

    stable: bool
    growth_rate: float
    tail_mean: float
    head_mean: float
    peak: int

    @property
    def drifting(self) -> bool:
        """True when the tail of the run is markedly higher than its middle."""
        if self.head_mean <= 0:
            return self.tail_mean > 0 and self.growth_rate > 0
        return self.tail_mean / self.head_mean > 1.5


def assess_stability(
    queue_series: np.ndarray,
    *,
    growth_tolerance: float = 0.01,
    min_rounds: int = 32,
) -> StabilityVerdict:
    """Classify a total-queue time series as stable or unstable.

    Parameters
    ----------
    queue_series:
        Per-round total queue sizes.
    growth_tolerance:
        Maximum per-round growth rate (packets/round, from a least-squares
        fit over the second half of the series) still considered stable.
    min_rounds:
        Series shorter than this are always considered stable (not enough
        evidence of divergence).
    """
    series = np.asarray(queue_series, dtype=np.float64)
    if series.size == 0:
        return StabilityVerdict(True, 0.0, 0.0, 0.0, 0)
    peak = int(series.max())
    if series.size < min_rounds:
        return StabilityVerdict(True, 0.0, float(series.mean()), float(series.mean()), peak)

    half = series.size // 2
    tail = series[half:]
    # Middle quarter: rounds [1/4, 1/2) — after warm-up, before the tail.
    head = series[series.size // 4 : half]
    if head.size == 0:
        head = series[:half]

    x = np.arange(tail.size, dtype=np.float64)
    slope = float(np.polyfit(x, tail, deg=1)[0]) if tail.size >= 2 else 0.0

    tail_mean = float(tail.mean())
    head_mean = float(head.mean())

    growing = slope > growth_tolerance
    drifting_up = tail_mean > head_mean + max(1.0, 0.25 * max(head_mean, 1.0))
    stable = not (growing and drifting_up)
    return StabilityVerdict(
        stable=stable,
        growth_rate=slope,
        tail_mean=tail_mean,
        head_mean=head_mean,
        peak=peak,
    )
