"""repro — reproduction of *Energy Efficient Adversarial Routing in Shared Channels*.

This package implements, from scratch and in pure Python, the system studied
by Chlebus, Hradovich, Jurdziński, Klonowski and Kowalski (SPAA 2019):
dynamic packet routing on a multiple access channel under an energy cap,
with adversarial (leaky-bucket) packet injection.

Quick start::

    from repro import run_simulation, make_algorithm
    from repro.adversary import SingleSourceSprayAdversary

    algo = make_algorithm("k-cycle", n=9, k=3)
    adversary = SingleSourceSprayAdversary(rho=0.2, beta=2.0)
    result = run_simulation(algo, adversary, rounds=10_000)
    print(result.summary.format_row())

Sub-packages
------------
``repro.channel``
    The shared-channel substrate: packets, messages, stations, the round
    engine and energy accounting.
``repro.adversary``
    Leaky-bucket adversaries: deterministic patterns, stochastic traffic,
    adaptive lower-bound constructions, trace record/replay.
``repro.core``
    The routing-algorithm framework: controllers, queues, oblivious
    schedules, the algorithm registry.
``repro.protocols``
    Prior-work building blocks: RRW, OF-RRW and MBTF.
``repro.algorithms``
    The paper's algorithms: Orchestra, Count-Hop, Adjust-Window, k-Cycle,
    k-Clique and k-Subsets.
``repro.metrics`` / ``repro.analysis`` / ``repro.sim``
    Metrics collection, the paper's closed-form bounds (Table 1) and the
    experiment harness that regenerates them.
"""

from . import algorithms as _algorithms  # noqa: F401  (registers the algorithms)
from . import protocols as _protocols  # noqa: F401  (registers the baselines)
from .algorithms import AdjustWindow, CountHop, KClique, KCycle, KSubsets, Orchestra
from .core import (
    AlgorithmProperties,
    RoutingAlgorithm,
    available_algorithms,
    make_algorithm,
)
from .sim import RunResult, run_simulation, worst_case_over

__version__ = "1.0.0"

__all__ = [
    "AdjustWindow",
    "AlgorithmProperties",
    "CountHop",
    "KClique",
    "KCycle",
    "KSubsets",
    "Orchestra",
    "RoutingAlgorithm",
    "RunResult",
    "available_algorithms",
    "make_algorithm",
    "run_simulation",
    "worst_case_over",
    "__version__",
]
