"""Admissibility predicates: which (algorithm, adversary) pairings the theory covers.

Table 1 associates each algorithm with a range of injection rates for
which its bounds hold, and each impossibility with a range for which no
algorithm of that class can be stable.  These helpers let the experiment
harness and the sweeps label each configuration as *covered* (the paper
proves a bound), *unstable by theory* (above an impossibility threshold),
or *uncharted* (between the two, where the paper makes no claim).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from . import bounds

__all__ = ["Regime", "RegimeVerdict", "classify_rate"]


class Regime(enum.Enum):
    """Where an injection rate falls relative to an algorithm's guarantees."""

    COVERED = "covered"            # the paper proves stability / a latency bound
    UNCHARTED = "uncharted"        # between the guarantee and the impossibility
    IMPOSSIBLE = "impossible"      # above an impossibility threshold for the class


@dataclass(frozen=True, slots=True)
class RegimeVerdict:
    """Outcome of :func:`classify_rate` with the thresholds that produced it."""

    regime: Regime
    guaranteed_below: float
    impossible_above: float


_GUARANTEE = {
    "orchestra": lambda n, k: 1.0,
    "count-hop": lambda n, k: 1.0,
    "adjust-window": lambda n, k: 1.0,
    "k-cycle": lambda n, k: bounds.k_cycle_rate_threshold(n, k),
    "k-clique": lambda n, k: bounds.k_clique_rate_threshold(n, k),
    "k-subsets": lambda n, k: bounds.k_subsets_rate_threshold(n, k),
    "rrw": lambda n, k: 1.0,
    "of-rrw": lambda n, k: 1.0,
    "mbtf": lambda n, k: 1.0,
}

_IMPOSSIBILITY = {
    # Non-oblivious algorithms have no class-level impossibility below 1.
    "orchestra": lambda n, k: 1.0,
    "count-hop": lambda n, k: 1.0,
    "adjust-window": lambda n, k: 1.0,
    "k-cycle": lambda n, k: bounds.oblivious_rate_upper_bound(n, k),
    "k-clique": lambda n, k: bounds.oblivious_direct_rate_upper_bound(n, k),
    "k-subsets": lambda n, k: bounds.oblivious_direct_rate_upper_bound(n, k),
    "rrw": lambda n, k: 1.0,
    "of-rrw": lambda n, k: 1.0,
    "mbtf": lambda n, k: 1.0,
}


def classify_rate(algorithm: str, n: int, k: int | None, rho: float) -> RegimeVerdict:
    """Classify an injection rate for a named algorithm.

    Parameters
    ----------
    algorithm:
        Registry name of the algorithm (case insensitive).
    n, k:
        System size and energy cap (``k`` is ignored for algorithms that
        have a fixed cap).
    rho:
        Injection rate to classify.
    """
    key = algorithm.lower()
    if key not in _GUARANTEE:
        raise KeyError(f"unknown algorithm {algorithm!r}")
    k_value = k if k is not None else 2
    guaranteed = _GUARANTEE[key](n, k_value)
    impossible = _IMPOSSIBILITY[key](n, k_value)
    # Guarantees that hold strictly below 1 (universal algorithms) are
    # inclusive at every rho < 1; the oblivious thresholds are strict.
    if rho < guaranteed or (guaranteed >= 1.0 and rho <= 1.0 and key in ("orchestra",)):
        regime = Regime.COVERED
    elif rho > impossible:
        regime = Regime.IMPOSSIBLE
    else:
        regime = Regime.UNCHARTED
    return RegimeVerdict(
        regime=regime, guaranteed_below=guaranteed, impossible_above=impossible
    )
