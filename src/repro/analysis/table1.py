"""The paper's Table 1, as data, plus measured-vs-paper rendering.

:data:`TABLE1_ROWS` encodes every row of Table 1 (algorithms and
impossibility results).  :func:`paper_row_for` evaluates the symbolic
bounds for concrete ``(n, k, rho, beta)`` and
:func:`render_comparison` pretty-prints a paper-vs-measured table used by
``repro.sim.experiments`` and the benchmark harness.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

from . import bounds

__all__ = ["Table1Row", "TABLE1_ROWS", "paper_row_for", "render_comparison"]


@dataclass(frozen=True, slots=True)
class Table1Row:
    """One row of Table 1.

    ``latency_bound`` / ``queue_bound`` evaluate the paper's symbolic bound
    for concrete parameters; ``None`` means the paper reports no bound
    (``infinity`` for latency is represented by ``math.inf``).
    """

    key: str
    label: str
    section: str
    rate_description: str
    energy_cap: str
    properties: str
    rate_threshold: Callable[[int, int], float] | None = None
    latency_bound: Callable[[int, int, float, float], float] | None = None
    queue_bound: Callable[[int, int, float, float], float] | None = None
    impossibility: bool = False


TABLE1_ROWS: list[Table1Row] = [
    Table1Row(
        key="orchestra",
        label="Orchestra",
        section="3.1",
        rate_description="rho = 1",
        energy_cap="3",
        properties="NObl-Gen-Dir",
        rate_threshold=lambda n, k: 1.0,
        latency_bound=lambda n, k, rho, beta: math.inf,
        queue_bound=lambda n, k, rho, beta: bounds.orchestra_queue_bound(n, beta),
    ),
    Table1Row(
        key="impossibility-cap2",
        label="Impossibility (cap 2)",
        section="3.2",
        rate_description="rho = 1",
        energy_cap="2",
        properties="any",
        impossibility=True,
    ),
    Table1Row(
        key="count-hop",
        label="Count-Hop",
        section="4.1",
        rate_description="rho < 1",
        energy_cap="2",
        properties="NObl-Gen-Dir",
        rate_threshold=lambda n, k: 1.0,
        latency_bound=lambda n, k, rho, beta: bounds.count_hop_latency_bound(n, rho, beta),
        queue_bound=lambda n, k, rho, beta: bounds.count_hop_latency_bound(n, rho, beta),
    ),
    Table1Row(
        key="adjust-window",
        label="Adjust-Window",
        section="4.2",
        rate_description="rho < 1",
        energy_cap="2",
        properties="NObl-PP-Ind",
        rate_threshold=lambda n, k: 1.0,
        latency_bound=lambda n, k, rho, beta: bounds.adjust_window_latency_bound(
            n, rho, beta
        ),
        queue_bound=lambda n, k, rho, beta: bounds.adjust_window_latency_bound(
            n, rho, beta
        ),
    ),
    Table1Row(
        key="k-cycle",
        label="k-Cycle",
        section="5",
        rate_description="rho < (k-1)/(n-1)",
        energy_cap="k",
        properties="Obl-PP-Ind",
        rate_threshold=bounds.k_cycle_rate_threshold,
        latency_bound=lambda n, k, rho, beta: bounds.k_cycle_latency_bound(n, beta),
        queue_bound=lambda n, k, rho, beta: bounds.k_cycle_latency_bound(n, beta),
    ),
    Table1Row(
        key="impossibility-oblivious",
        label="Impossibility (oblivious)",
        section="5",
        rate_description="rho > k/n",
        energy_cap="k",
        properties="Obl",
        rate_threshold=bounds.oblivious_rate_upper_bound,
        impossibility=True,
    ),
    Table1Row(
        key="k-clique",
        label="k-Clique",
        section="6",
        rate_description="rho <= k^2/(2n(2n-k))",
        energy_cap="k",
        properties="Obl-PP-Dir",
        rate_threshold=bounds.k_clique_latency_rate_threshold,
        latency_bound=lambda n, k, rho, beta: bounds.k_clique_latency_bound(n, k, beta),
        queue_bound=lambda n, k, rho, beta: bounds.k_clique_latency_bound(n, k, beta),
    ),
    Table1Row(
        key="k-subsets",
        label="k-Subsets",
        section="6",
        rate_description="rho = k(k-1)/(n(n-1))",
        energy_cap="k",
        properties="Obl-Gen-Dir",
        rate_threshold=bounds.k_subsets_rate_threshold,
        latency_bound=lambda n, k, rho, beta: math.inf,
        queue_bound=lambda n, k, rho, beta: bounds.k_subsets_queue_bound(n, k, beta),
    ),
    Table1Row(
        key="impossibility-oblivious-direct",
        label="Impossibility (oblivious direct)",
        section="6",
        rate_description="rho > k(k-1)/(n(n-1))",
        energy_cap="k",
        properties="Obl-Dir",
        rate_threshold=bounds.oblivious_direct_rate_upper_bound,
        impossibility=True,
    ),
]

_ROWS_BY_KEY = {row.key: row for row in TABLE1_ROWS}


def paper_row_for(key: str, n: int, k: int, rho: float, beta: float) -> dict:
    """Evaluate the paper's bounds of row ``key`` at concrete parameters."""
    row = _ROWS_BY_KEY[key]
    result = {
        "key": row.key,
        "label": row.label,
        "section": row.section,
        "rate_description": row.rate_description,
        "energy_cap": row.energy_cap,
        "properties": row.properties,
        "impossibility": row.impossibility,
        "rate_threshold": row.rate_threshold(n, k) if row.rate_threshold else None,
        "latency_bound": row.latency_bound(n, k, rho, beta) if row.latency_bound else None,
        "queue_bound": row.queue_bound(n, k, rho, beta) if row.queue_bound else None,
    }
    return result


def render_comparison(rows: list[dict]) -> str:
    """Render a list of paper-vs-measured dictionaries as a text table.

    Each entry must contain ``label``, ``params``, ``paper`` and
    ``measured`` string fields (already formatted by the caller).
    """
    label_w = max(len(r["label"]) for r in rows) if rows else 10
    params_w = max(len(r["params"]) for r in rows) if rows else 10
    lines = [
        f"{'experiment':<{label_w}}  {'parameters':<{params_w}}  {'paper':<34}  measured",
        "-" * (label_w + params_w + 52),
    ]
    for r in rows:
        lines.append(
            f"{r['label']:<{label_w}}  {r['params']:<{params_w}}  {r['paper']:<34}  {r['measured']}"
        )
    return "\n".join(lines)
