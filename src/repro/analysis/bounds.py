"""Closed-form performance bounds from Table 1 of the paper.

Every function takes the system parameters (``n``, ``k`` where relevant)
and the adversary type (``rho``, ``beta``) and returns the bound the paper
proves.  The experiment harness compares these values against measured
latencies and queue sizes; the tests check basic shape properties
(monotonicity, divergence at the stability threshold, and so on).
"""

from __future__ import annotations

import math

__all__ = [
    "orchestra_queue_bound",
    "count_hop_latency_bound",
    "adjust_window_latency_bound",
    "k_cycle_latency_bound",
    "k_cycle_rate_threshold",
    "oblivious_rate_upper_bound",
    "k_clique_latency_bound",
    "k_clique_rate_threshold",
    "k_clique_latency_rate_threshold",
    "k_subsets_queue_bound",
    "k_subsets_rate_threshold",
    "oblivious_direct_rate_upper_bound",
]


def orchestra_queue_bound(n: int, beta: float) -> float:
    """Theorem 1: at most ``2 n^3 + beta`` packets queued under injection rate 1."""
    return 2 * n**3 + beta


def count_hop_latency_bound(n: int, rho: float, beta: float) -> float:
    """Theorem 3: latency of Count-Hop is at most ``2 (n^2 + beta)/(1 - rho)``."""
    if rho >= 1:
        return math.inf
    return 2 * (n**2 + beta) / (1 - rho)


def adjust_window_latency_bound(n: int, rho: float, beta: float) -> float:
    """Theorem 4: latency of Adjust-Window is at most ``(18 n^3 log^2 n + 2 beta)/(1-rho)``."""
    if rho >= 1:
        return math.inf
    log_n = math.log2(n) if n > 1 else 1.0
    return (18 * n**3 * log_n**2 + 2 * beta) / (1 - rho)


def k_cycle_latency_bound(n: int, beta: float) -> float:
    """Theorem 5: latency of k-Cycle is at most ``(32 + beta) n``."""
    return (32 + beta) * n


def k_cycle_rate_threshold(n: int, k: int) -> float:
    """Theorem 5: k-Cycle handles injection rates below ``(k - 1)/(n - 1)``."""
    return (k - 1) / (n - 1)


def oblivious_rate_upper_bound(n: int, k: int) -> float:
    """Theorem 6: no k-energy-oblivious algorithm is stable above ``k / n``."""
    return k / n


def k_clique_rate_threshold(n: int, k: int) -> float:
    """Theorem 7: k-Clique has bounded latency for rates below ``k^2/(n (2n - k))``."""
    return k**2 / (n * (2 * n - k))


def k_clique_latency_rate_threshold(n: int, k: int) -> float:
    """Theorem 7: the closed-form latency bound applies below ``k^2/(2 n (2n - k))``."""
    return k**2 / (2 * n * (2 * n - k))


def k_clique_latency_bound(n: int, k: int, beta: float) -> float:
    """Theorem 7: latency of k-Clique is at most ``8 (n^2/k)(1 + beta/(2k))``."""
    return 8 * (n**2 / k) * (1 + beta / (2 * k))


def k_subsets_rate_threshold(n: int, k: int) -> float:
    """Theorem 8: k-Subsets is stable at rate ``k (k - 1)/(n (n - 1))``."""
    return (k * (k - 1)) / (n * (n - 1))


def k_subsets_queue_bound(n: int, k: int, beta: float) -> float:
    """Theorem 8: at most ``2 C(n,k) (n^2 + beta)`` packets are ever queued."""
    return 2 * math.comb(n, k) * (n**2 + beta)


def oblivious_direct_rate_upper_bound(n: int, k: int) -> float:
    """Theorem 9: no k-oblivious direct algorithm is stable above ``k(k-1)/(n(n-1))``."""
    return (k * (k - 1)) / (n * (n - 1))
