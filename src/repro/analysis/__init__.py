"""Analytical bounds (Table 1), admissibility regimes and comparison tables."""

from . import bounds
from .admissibility import Regime, RegimeVerdict, classify_rate
from .table1 import TABLE1_ROWS, Table1Row, paper_row_for, render_comparison

__all__ = [
    "Regime",
    "RegimeVerdict",
    "TABLE1_ROWS",
    "Table1Row",
    "bounds",
    "classify_rate",
    "paper_row_for",
    "render_comparison",
]
