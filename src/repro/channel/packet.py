"""Packets travelling on the multiple access channel.

A packet ``p = (d, c)`` consists of a destination address ``d`` (a station
name in ``[0, n)``) and an opaque content ``c`` (Section 2 of the paper).
For simulation and metrics purposes every packet also carries bookkeeping
fields that the *algorithms are not allowed to use*: a globally unique id,
the round it was injected, and the station it was injected into.  The
engine uses them to verify correctness (exactly-once delivery) and to
compute packet delays.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Iterator

__all__ = ["Packet", "PacketFactory"]

_packet_ids: Iterator[int] = itertools.count()


@dataclass(frozen=True, slots=True)
class Packet:
    """A single routable packet.

    Attributes
    ----------
    destination:
        Name of the station the packet must be delivered to.
    injected_at:
        Round number in which the adversary injected the packet.
    origin:
        Station the packet was injected into by the adversary.
    packet_id:
        Globally unique identifier, assigned by :class:`PacketFactory` (or
        the module-level counter).  Used only for bookkeeping.
    content:
        Opaque payload; never inspected by routing algorithms.
    """

    destination: int
    injected_at: int
    origin: int
    packet_id: int = field(default_factory=lambda: next(_packet_ids))
    content: Any = None

    def delay_if_delivered(self, round_delivered: int) -> int:
        """Delay of the packet if it were delivered in ``round_delivered``."""
        return round_delivered - self.injected_at

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Packet(#{self.packet_id} {self.origin}->{self.destination} "
            f"@{self.injected_at})"
        )


class PacketFactory:
    """Deterministic packet factory with its own id-space.

    Using a factory (rather than the module-level counter) makes runs
    reproducible regardless of how many packets other tests created
    before, which matters for trace comparison tests.
    """

    def __init__(self, start: int = 0) -> None:
        self._counter = itertools.count(start)
        self.created = 0

    def make(
        self,
        destination: int,
        injected_at: int,
        origin: int,
        content: Any = None,
    ) -> Packet:
        """Create a packet with the next id from this factory."""
        self.created += 1
        return Packet(
            destination=destination,
            injected_at=injected_at,
            origin=origin,
            packet_id=next(self._counter),
            content=content,
        )
