"""Event log of a channel execution.

The engine can optionally keep a round-by-round trace of everything that
happened: injections, the awake set, the channel outcome, the transmitted
message and whether its packet was delivered.  Traces are used by tests
(to assert fine-grained protocol behaviour), by the reporting module and
by the trace record/replay facilities of the adversary package.

Traces serialise to plain JSON-compatible structures
(:meth:`ExecutionTrace.to_jsonable` / :meth:`ExecutionTrace.from_jsonable`)
so that a recorded execution can be archived next to experiment results
and replayed or inspected without unpickling arbitrary objects.  Packet
``content`` and message ``control`` values must themselves be
JSON-representable; sequence-valued control fields are restored as
tuples (the repository's algorithms encode sequences as tuples, so their
traces round-trip losslessly).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

from .feedback import ChannelOutcome
from .message import Message
from .packet import Packet

__all__ = ["InjectionEvent", "RoundEvent", "ExecutionTrace"]


def _packet_to_jsonable(packet: Packet | None) -> dict | None:
    if packet is None:
        return None
    return {
        "destination": packet.destination,
        "injected_at": packet.injected_at,
        "origin": packet.origin,
        "packet_id": packet.packet_id,
        "content": packet.content,
    }


def _packet_from_jsonable(data: dict | None) -> Packet | None:
    if data is None:
        return None
    return Packet(
        destination=int(data["destination"]),
        injected_at=int(data["injected_at"]),
        origin=int(data["origin"]),
        packet_id=int(data["packet_id"]),
        content=data.get("content"),
    )


def _message_to_jsonable(message: Message | None) -> dict | None:
    if message is None:
        return None
    return {
        "sender": message.sender,
        "packet": _packet_to_jsonable(message.packet),
        "control": dict(message.control),
        "intended_receiver": message.intended_receiver,
    }


def _message_from_jsonable(data: dict | None) -> Message | None:
    if data is None:
        return None
    receiver = data.get("intended_receiver")
    # JSON has no tuples; restore sequence-valued control fields to the
    # tuple form the algorithms transmit.
    control = {
        key: tuple(value) if isinstance(value, list) else value
        for key, value in (data.get("control") or {}).items()
    }
    return Message(
        sender=int(data["sender"]),
        packet=_packet_from_jsonable(data.get("packet")),
        control=control,
        intended_receiver=None if receiver is None else int(receiver),
    )


@dataclass(frozen=True, slots=True)
class InjectionEvent:
    """A single adversarial packet injection."""

    round_no: int
    station: int
    packet: Packet

    def to_jsonable(self) -> dict:
        """Plain-JSON representation of this injection."""
        return {
            "round_no": self.round_no,
            "station": self.station,
            "packet": _packet_to_jsonable(self.packet),
        }

    @classmethod
    def from_jsonable(cls, data: dict) -> "InjectionEvent":
        """Inverse of :meth:`to_jsonable`."""
        packet = _packet_from_jsonable(data["packet"])
        assert packet is not None
        return cls(
            round_no=int(data["round_no"]),
            station=int(data["station"]),
            packet=packet,
        )


@dataclass(frozen=True, slots=True)
class RoundEvent:
    """Everything that happened on the channel in one round."""

    round_no: int
    awake: tuple[int, ...]
    transmitters: tuple[int, ...]
    outcome: ChannelOutcome
    message: Message | None
    delivered_packet: Packet | None
    injections: tuple[InjectionEvent, ...]

    @property
    def energy(self) -> int:
        """Energy spent in this round (number of awake stations)."""
        return len(self.awake)

    @property
    def is_light(self) -> bool:
        """True when a message was heard but it carried no packet."""
        return (
            self.outcome is ChannelOutcome.HEARD
            and self.message is not None
            and self.message.packet is None
        )

    def to_jsonable(self) -> dict:
        """Plain-JSON representation of this round."""
        return {
            "round_no": self.round_no,
            "awake": list(self.awake),
            "transmitters": list(self.transmitters),
            "outcome": self.outcome.value,
            "message": _message_to_jsonable(self.message),
            "delivered_packet": _packet_to_jsonable(self.delivered_packet),
            "injections": [event.to_jsonable() for event in self.injections],
        }

    @classmethod
    def from_jsonable(cls, data: dict) -> "RoundEvent":
        """Inverse of :meth:`to_jsonable`."""
        return cls(
            round_no=int(data["round_no"]),
            awake=tuple(int(i) for i in data["awake"]),
            transmitters=tuple(int(i) for i in data["transmitters"]),
            outcome=ChannelOutcome(data["outcome"]),
            message=_message_from_jsonable(data.get("message")),
            delivered_packet=_packet_from_jsonable(data.get("delivered_packet")),
            injections=tuple(
                InjectionEvent.from_jsonable(event)
                for event in data.get("injections", ())
            ),
        )


@dataclass(slots=True)
class ExecutionTrace:
    """Ordered collection of :class:`RoundEvent` records."""

    rounds: list[RoundEvent] = field(default_factory=list)

    def append(self, event: RoundEvent) -> None:
        """Append one round's event record."""
        self.rounds.append(event)

    def __len__(self) -> int:
        return len(self.rounds)

    def __iter__(self) -> Iterator[RoundEvent]:
        return iter(self.rounds)

    def __getitem__(self, index: int) -> RoundEvent:
        return self.rounds[index]

    # -- serialisation ------------------------------------------------------
    def to_jsonable(self) -> dict:
        """Plain-JSON representation of the whole trace."""
        return {"rounds": [event.to_jsonable() for event in self.rounds]}

    @classmethod
    def from_jsonable(cls, data: dict) -> "ExecutionTrace":
        """Inverse of :meth:`to_jsonable`."""
        return cls(
            rounds=[RoundEvent.from_jsonable(event) for event in data["rounds"]]
        )

    # -- convenience queries used by tests and reports ---------------------
    def silent_rounds(self) -> list[int]:
        """Round numbers in which nobody transmitted."""
        return [e.round_no for e in self.rounds if e.outcome is ChannelOutcome.SILENCE]

    def collision_rounds(self) -> list[int]:
        """Round numbers in which a collision occurred."""
        return [e.round_no for e in self.rounds if e.outcome is ChannelOutcome.COLLISION]

    def light_rounds(self) -> list[int]:
        """Round numbers in which a light (packet-less) message was heard."""
        return [e.round_no for e in self.rounds if e.is_light]

    def delivered_packets(self) -> list[Packet]:
        """All packets delivered, in delivery order."""
        return [e.delivered_packet for e in self.rounds if e.delivered_packet is not None]

    def injections(self) -> list[InjectionEvent]:
        """All injection events, in round order."""
        out: list[InjectionEvent] = []
        for e in self.rounds:
            out.extend(e.injections)
        return out

    def energy_series(self) -> list[int]:
        """Per-round energy expenditure."""
        return [e.energy for e in self.rounds]

    def awake_sets(self) -> list[tuple[int, ...]]:
        """Per-round awake station sets."""
        return [e.awake for e in self.rounds]
