"""Event log of a channel execution.

The engine can optionally keep a round-by-round trace of everything that
happened: injections, the awake set, the channel outcome, the transmitted
message and whether its packet was delivered.  Traces are used by tests
(to assert fine-grained protocol behaviour), by the reporting module and
by the trace record/replay facilities of the adversary package.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from .feedback import ChannelOutcome
from .message import Message
from .packet import Packet

__all__ = ["InjectionEvent", "RoundEvent", "ExecutionTrace"]


@dataclass(frozen=True, slots=True)
class InjectionEvent:
    """A single adversarial packet injection."""

    round_no: int
    station: int
    packet: Packet


@dataclass(frozen=True, slots=True)
class RoundEvent:
    """Everything that happened on the channel in one round."""

    round_no: int
    awake: tuple[int, ...]
    transmitters: tuple[int, ...]
    outcome: ChannelOutcome
    message: Message | None
    delivered_packet: Packet | None
    injections: tuple[InjectionEvent, ...]

    @property
    def energy(self) -> int:
        """Energy spent in this round (number of awake stations)."""
        return len(self.awake)

    @property
    def is_light(self) -> bool:
        """True when a message was heard but it carried no packet."""
        return (
            self.outcome is ChannelOutcome.HEARD
            and self.message is not None
            and self.message.packet is None
        )


@dataclass(slots=True)
class ExecutionTrace:
    """Ordered collection of :class:`RoundEvent` records."""

    rounds: list[RoundEvent] = field(default_factory=list)

    def append(self, event: RoundEvent) -> None:
        """Append one round's event record."""
        self.rounds.append(event)

    def __len__(self) -> int:
        return len(self.rounds)

    def __iter__(self) -> Iterator[RoundEvent]:
        return iter(self.rounds)

    def __getitem__(self, index: int) -> RoundEvent:
        return self.rounds[index]

    # -- convenience queries used by tests and reports ---------------------
    def silent_rounds(self) -> list[int]:
        """Round numbers in which nobody transmitted."""
        return [e.round_no for e in self.rounds if e.outcome is ChannelOutcome.SILENCE]

    def collision_rounds(self) -> list[int]:
        """Round numbers in which a collision occurred."""
        return [e.round_no for e in self.rounds if e.outcome is ChannelOutcome.COLLISION]

    def light_rounds(self) -> list[int]:
        """Round numbers in which a light (packet-less) message was heard."""
        return [e.round_no for e in self.rounds if e.is_light]

    def delivered_packets(self) -> list[Packet]:
        """All packets delivered, in delivery order."""
        return [e.delivered_packet for e in self.rounds if e.delivered_packet is not None]

    def injections(self) -> list[InjectionEvent]:
        """All injection events, in round order."""
        out: list[InjectionEvent] = []
        for e in self.rounds:
            out.extend(e.injections)
        return out

    def energy_series(self) -> list[int]:
        """Per-round energy expenditure."""
        return [e.energy for e in self.rounds]

    def awake_sets(self) -> list[tuple[int, ...]]:
        """Per-round awake station sets."""
        return [e.awake for e in self.rounds]
