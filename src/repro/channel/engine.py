"""Round-synchronous simulation engine for the multiple access channel.

The engine owns the physics of the model in Section 2 of the paper:

* time is divided into rounds; all stations start in round 0;
* in a round, each switched-on station either transmits one message or
  listens; if exactly one station transmits, every switched-on station
  hears the message (including the transmitter); two or more simultaneous
  transmissions collide and nobody hears anything;
* a packet is *delivered* when it is heard on the channel in a round in
  which its destination station is switched on; the destination consumes
  it;
* the energy spent in a round equals the number of switched-on stations;
  an energy cap bounds that number.

The engine is deliberately oblivious to *how* stations decide to act: all
algorithm logic lives in :class:`~repro.channel.station.StationController`
subclasses.  The engine performs correctness bookkeeping (exactly-once
delivery to the right destination), metrics collection and optional
tracing.

:class:`RoundEngine` is the *reference* loop: fully checked, traceable,
with an observable per-round event record.  Its semantics are the oracle
for the capability-negotiated fast loop in
:mod:`repro.channel.kernel`, which produces bit-identical summaries while
skipping the bookkeeping a given run does not need.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

import numpy as np

from .energy import EnergyMonitor
from .events import ExecutionTrace, InjectionEvent, RoundEvent
from .feedback import ChannelOutcome, Feedback
from .message import Message
from .packet import Packet
from .station import StationController

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..adversary.base import Adversary
    from ..metrics.collector import MetricsCollector

__all__ = [
    "AdversaryView",
    "DEFAULT_PLAN_CHUNK",
    "DEFAULT_VIEW_WINDOW",
    "EngineConfig",
    "RoundEngine",
    "ScheduleBackedView",
    "check_message",
    "negotiated_view_window",
    "validate_controllers",
]

#: Default batching granularity (in rounds) of the kernel engine's chunked
#: machinery: injection plans are requested and the schedule-backed view's
#: history ring is refreshed once per this many rounds.
DEFAULT_PLAN_CHUNK = 4096

#: History window the reference engine keeps even for adversaries that
#: declared a smaller (or zero) observation window: short-run debugging and
#: engine-level tests read the view directly, so the checked loop never
#: truncates below this many rounds.  Long runs thereby stay at O(window)
#: memory instead of O(rounds) unless ``EngineConfig(full_history=True)``.
DEFAULT_VIEW_WINDOW = 1024


@dataclass(slots=True)
class AdversaryView:
    """What an (adaptive) adversary may observe about the execution.

    The adversarial model places no restriction on the adversary's
    knowledge — it is a worst-case abstraction — so the view exposes the
    history of awake sets, the channel outcomes and per-station queue
    sizes up to and including the *previous* round.  Injections for round
    ``t`` are decided before the stations of round ``t`` act.

    ``window`` bounds how many completed rounds the histories retain
    (``None`` keeps everything).  Per-station on-round counts are
    maintained incrementally from round 0 whenever the engine feeds the
    view through :meth:`observe_round`, so
    :meth:`station_on_rounds` is exact regardless of the window.
    """

    n: int
    round_no: int = 0
    awake_history: list[tuple[int, ...]] = field(default_factory=list)
    outcome_history: list[ChannelOutcome] = field(default_factory=list)
    queue_sizes: list[int] = field(default_factory=list)
    delivered_total: int = 0
    window: int | None = None
    _on_counts: list[int] | None = field(default=None, init=False)
    _observed_rounds: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.window is not None:
            if self.window < 0:
                raise ValueError("view window must be >= 0 (or None)")
            self.awake_history = deque(self.awake_history, maxlen=self.window)
            self.outcome_history = deque(self.outcome_history, maxlen=self.window)

    # -- engine-facing update ------------------------------------------------
    def observe_round(
        self,
        awake: tuple[int, ...],
        outcome: ChannelOutcome,
        queue_sizes: list[int],
        delivered_total: int,
    ) -> None:
        """Record one completed round (called by the engines, once per round)."""
        self.awake_history.append(awake)
        self.outcome_history.append(outcome)
        self.queue_sizes = queue_sizes
        self.delivered_total = delivered_total
        counts = self._on_counts
        if counts is None:
            counts = self._on_counts = [0] * self.n
        for i in awake:
            counts[i] += 1
        self._observed_rounds += 1

    # -- adversary-facing queries -------------------------------------------
    def last_awake(self) -> tuple[int, ...]:
        """Awake set of the most recent completed round (empty if none)."""
        return self.awake_history[-1] if self.awake_history else ()

    def station_on_rounds(self, station: int) -> int:
        """How many completed rounds ``station`` has spent switched on.

        Exact from round 0 (independent of the history window) when the
        view is engine-maintained; hand-assembled views (tests) fall back
        to counting over whatever history is present.
        """
        if self._observed_rounds:
            assert self._on_counts is not None
            return self._on_counts[station]
        return sum(1 for awake in self.awake_history if station in awake)

    def least_on_station(self) -> int:
        """The station with the fewest on-rounds (ties broken by name).

        Equivalent to minimising ``(station_on_rounds(i), i)`` over all
        stations, but in one pass over the incrementally maintained count
        table instead of ``n`` method calls — the hot query of the
        starvation-style adaptive adversaries.
        """
        counts = self._on_counts
        if self._observed_rounds and counts is not None:
            return counts.index(min(counts))
        return min(range(self.n), key=lambda i: (self.station_on_rounds(i), i))


class ScheduleBackedView(AdversaryView):
    """Adversary view whose awake-derived state comes from the schedule.

    Used by the kernel engine for *windowed* adversaries when the run is
    on the static-schedule fast path: the per-round awake sets are a pure
    function of the published periodic schedule, so none of the per-round
    pushes that derive from them are necessary.  Maintenance becomes

    * **O(1) per round** (:meth:`observe_scheduled`): one outcome push
      and two reference assignments — no awake tuple append, no queue
      snapshot copy, no per-station count loop;
    * **one vectorised add per period**: exact per-station on-counts are
      ``full_periods * period_totals + prefix[pos]`` against the
      schedule's precomputed on-count prefix series
      (:meth:`~repro.core.schedule.ObliviousSchedule.period_on_count_prefix`);
    * **one ring refresh per chunk** (:meth:`flush_window`): the bounded
      ``awake_history`` ring is rebuilt from the period in bulk.

    The query API (:meth:`last_awake`, :meth:`station_on_rounds`,
    :meth:`least_on_station`, ``queue_sizes``, ``delivered_total``,
    ``outcome_history``) is exact after every round — property-tested
    against the incremental :meth:`AdversaryView.observe_round` path.
    Only the raw ``awake_history`` attribute lags at chunk granularity
    between flushes; in-repo adversaries read awake-set history solely
    through the query methods.

    ``queue_sizes`` deliberately aliases the engine's live size list: the
    kernel only mutates it *after* the round's injections are decided, so
    every adversary read observes the end-of-previous-round snapshot the
    reference loop would have copied.
    """

    __slots__ = (
        "_period",
        "_period_len",
        "_prefix",
        "_period_totals",
        "_base_counts",
        "_completed",
        "_flushed",
    )

    def __init__(
        self,
        n: int,
        window: int,
        period: tuple[tuple[int, ...], ...],
        prefix: "np.ndarray",
    ) -> None:
        super().__init__(n=n, window=window)
        if len(prefix) != len(period) + 1:
            raise ValueError("on-count prefix series does not match the period")
        self._period = period
        self._period_len = len(period)
        self._prefix = prefix
        self._period_totals = prefix[-1]
        self._base_counts = np.zeros(n, dtype=np.int64)
        self._completed = 0
        self._flushed = 0

    # -- engine-facing update ----------------------------------------------
    def observe_scheduled(
        self,
        outcome: ChannelOutcome,
        queue_sizes: list[int],
        delivered_total: int,
    ) -> None:
        """Record one completed round whose awake set the schedule implies."""
        self.outcome_history.append(outcome)
        self.queue_sizes = queue_sizes
        self.delivered_total = delivered_total
        completed = self._completed + 1
        self._completed = completed
        if completed % self._period_len == 0:
            self._base_counts += self._period_totals

    def flush_window(self) -> None:
        """Advance the awake-history ring to cover all completed rounds."""
        completed, flushed = self._completed, self._flushed
        if completed == flushed:
            return
        start = flushed
        window = self.window
        if window is not None and completed - flushed > window:
            start = completed - window
        period, period_len = self._period, self._period_len
        self.awake_history.extend(
            period[t % period_len] for t in range(start, completed)
        )
        self._flushed = completed

    # -- adversary-facing queries -------------------------------------------
    def last_awake(self) -> tuple[int, ...]:
        if not self._completed:
            return ()
        return self._period[(self._completed - 1) % self._period_len]

    def station_on_rounds(self, station: int) -> int:
        pos = self._completed % self._period_len
        return int(self._base_counts[station] + self._prefix[pos, station])

    def least_on_station(self) -> int:
        pos = self._completed % self._period_len
        # np.argmin returns the first minimum, matching the (count, name)
        # tie-break of the incremental path.
        return int(np.argmin(self._base_counts + self._prefix[pos]))


def negotiated_view_window(adversary: "Adversary", full_history: bool) -> int | None:
    """The history window an adversary's observation profile asks for.

    ``None`` means unbounded.  Objects without an ``observation_profile``
    capability (duck-typed so the channel layer stays decoupled from the
    adversary package) conservatively get full history.
    """
    if full_history:
        return None
    profile = getattr(adversary, "observation_profile", None)
    if profile is None:
        return None
    return profile().window


@dataclass(slots=True)
class EngineConfig:
    """Configuration knobs of :class:`RoundEngine` (and the kernel loop).

    ``full_history`` overrides the adversary's declared observation
    profile and keeps the unbounded :class:`AdversaryView` histories of
    the original engine — the opt-in for debugging sessions and for
    adversaries written before observation profiles existed.

    ``plan_chunk`` is the kernel loop's batching granularity in rounds:
    how many rounds of injections one ``plan_injections`` call
    materialises, and how often the schedule-backed view's history ring
    is refreshed.  Purely an execution-strategy knob — results are
    bit-identical for every value (property-tested) — exposed for tuning
    and for tests that want many chunk boundaries.  Ignored by the
    reference loop.

    ``quiescence_skip`` enables the kernel loop's quiescent-span fast
    path: when every controller declares ``silence_invariant`` and all
    queues are empty, whole injection-free spans are elided in one step.
    Another execution-strategy knob — results are bit-identical either
    way (property-tested); switching it off recovers the strictly
    per-round kernel loop for comparison benchmarks.  Ignored by the
    reference loop.
    """

    energy_cap: int | None = None
    enforce_energy_cap: bool = True
    record_trace: bool = False
    check_plain_packet: bool = False
    max_control_bits: int | None = None
    full_history: bool = False
    plan_chunk: int = DEFAULT_PLAN_CHUNK
    quiescence_skip: bool = True

    def __post_init__(self) -> None:
        if self.plan_chunk < 1:
            raise ValueError("plan_chunk must be at least 1 round")


def validate_controllers(
    controllers: Sequence[StationController],
) -> list[StationController]:
    """Shared engine-construction check: one controller per station, in order."""
    if not controllers:
        raise ValueError("at least one station controller is required")
    out = list(controllers)
    for expected, ctrl in enumerate(out):
        if ctrl.station_id != expected:
            raise ValueError(
                f"controller at index {expected} has station_id {ctrl.station_id}"
            )
    return out


def check_message(config: EngineConfig, sender: int, message: Message) -> None:
    """Shared per-transmission discipline checks (both engine loops)."""
    if message.sender != sender:
        raise ValueError(
            f"station {sender} transmitted a message claiming sender {message.sender}"
        )
    if config.check_plain_packet and not message.is_plain_packet:
        raise ValueError(
            f"plain-packet discipline violated by station {sender}: {message!r}"
        )
    if (
        config.max_control_bits is not None
        and message.control_bits() > config.max_control_bits
    ):
        raise ValueError(
            f"station {sender} transmitted {message.control_bits()} control bits, "
            f"limit is {config.max_control_bits}"
        )


class RoundEngine:
    """Drives controllers, an adversary and the metrics collector in rounds.

    Parameters
    ----------
    controllers:
        One controller per station, indexed by station name.
    adversary:
        The packet-injection adversary (already bound to ``n``).
    collector:
        Metrics collector; a fresh default one is created when omitted.
    config:
        Engine configuration (energy cap, tracing, message discipline
        checks).
    """

    def __init__(
        self,
        controllers: Sequence[StationController],
        adversary: "Adversary",
        collector: "MetricsCollector | None" = None,
        config: EngineConfig | None = None,
    ) -> None:
        self.controllers = validate_controllers(controllers)
        self.n = len(self.controllers)
        self.adversary = adversary
        self.config = config or EngineConfig()
        if collector is None:
            from ..metrics.collector import MetricsCollector

            collector = MetricsCollector()
        self.collector = collector
        self.energy = EnergyMonitor(
            cap=self.config.energy_cap, enforce=self.config.enforce_energy_cap
        )
        self.trace = ExecutionTrace() if self.config.record_trace else None
        # The checked loop keeps the view observable for tests/debugging:
        # at least DEFAULT_VIEW_WINDOW rounds of history even when the
        # adversary declared a smaller (or zero) observation window.
        window = negotiated_view_window(adversary, self.config.full_history)
        if window is not None:
            window = max(window, DEFAULT_VIEW_WINDOW)
        self.view = AdversaryView(n=self.n, window=window)
        self.round_no = 0

    # -- main loop ---------------------------------------------------------
    def run(self, rounds: int) -> None:
        """Simulate ``rounds`` further rounds."""
        for _ in range(rounds):
            self.step()

    def step(self) -> RoundEvent:
        """Simulate a single round and return its event record."""
        t = self.round_no
        self.view.round_no = t

        # 1. Adversarial injections (stations receive packets even when off).
        injections = self._inject(t)

        # 2. On/off decisions and energy accounting.  Tick-split
        # controllers (``ticked_wakes``) advance their shared wake oracle
        # inside the first ``wakes`` call of the round and answer purely
        # thereafter, so this per-station loop doubles as the legacy
        # driver of the tick protocol.
        awake = tuple(
            i for i, ctrl in enumerate(self.controllers) if ctrl.wakes(t)
        )
        self.energy.observe(t, len(awake))

        # 3. Awake stations act: transmit or listen.
        transmissions: list[Message] = []
        transmitters: list[int] = []
        for i in awake:
            message = self.controllers[i].act(t)
            if message is None:
                continue
            self._check_message(i, message)
            transmissions.append(message)
            transmitters.append(i)

        # 4. Channel arbitration.
        if not transmissions:
            outcome, heard = ChannelOutcome.SILENCE, None
        elif len(transmissions) == 1:
            outcome, heard = ChannelOutcome.HEARD, transmissions[0]
        else:
            outcome, heard = ChannelOutcome.COLLISION, None

        # 5. Delivery bookkeeping.
        delivered_packet: Packet | None = None
        if (
            outcome is ChannelOutcome.HEARD
            and heard is not None
            and heard.packet is not None
            and heard.packet.destination in awake
        ):
            delivered_packet = heard.packet
            self.collector.record_delivery(
                delivered_packet, heard.packet.destination, t
            )

        # 6. Feedback to awake stations.
        feedback = Feedback(
            round_no=t,
            outcome=outcome,
            message=heard,
            delivered=delivered_packet is not None,
        )
        for i in awake:
            self.controllers[i].on_feedback(t, feedback)

        # 7. Metrics: queue sizes after the round.
        queue_sizes = [ctrl.queued_packets() for ctrl in self.controllers]
        self.collector.record_round(t, queue_sizes, len(awake), outcome)

        # 8. Adversary view update.
        self.view.observe_round(
            awake, outcome, queue_sizes, self.collector.delivered_count
        )

        event = RoundEvent(
            round_no=t,
            awake=awake,
            transmitters=tuple(transmitters),
            outcome=outcome,
            message=heard,
            delivered_packet=delivered_packet,
            injections=tuple(injections),
        )
        if self.trace is not None:
            self.trace.append(event)
        self.round_no += 1
        return event

    # -- helpers -----------------------------------------------------------
    def _inject(self, t: int) -> list[InjectionEvent]:
        events: list[InjectionEvent] = []
        for station, packet in self.adversary.inject(t, self.view):
            if not 0 <= station < self.n:
                raise ValueError(f"adversary injected into unknown station {station}")
            if not 0 <= packet.destination < self.n:
                raise ValueError(
                    f"adversary created packet with unknown destination {packet.destination}"
                )
            self.controllers[station].on_inject(t, packet)
            self.collector.record_injection(packet, t)
            events.append(InjectionEvent(round_no=t, station=station, packet=packet))
        return events

    def _check_message(self, sender: int, message: Message) -> None:
        check_message(self.config, sender, message)
