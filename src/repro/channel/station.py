"""Station controller interface.

Each of the ``n`` stations attached to the channel runs a *controller* — the
per-station part of a distributed routing algorithm.  The engine drives all
controllers in lock-step rounds:

1. :meth:`StationController.on_inject` for every packet the adversary
   injects into this station at the start of the round (this happens even
   when the station is switched off);
2. :meth:`StationController.wakes` — does the station spend this round
   switched on?
3. for awake stations only, :meth:`StationController.act` — transmit a
   message or listen (return ``None``);
4. for awake stations only, :meth:`StationController.on_feedback` with the
   round's channel feedback.

A controller must base its behaviour only on (a) the packets injected into
it, (b) the feedback it has personally heard while awake, and (c) the
globally known quantities ``n`` and the energy cap ``k`` — never on global
simulator state.  The engine enforces the physics (collisions, energy cap)
and performs the correctness bookkeeping: a packet counts as *delivered*
when it is heard on the channel in a round in which its destination
station is switched on; the engine records that delivery exactly once.
Controllers are responsible for dropping delivered packets from their own
queues (the transmitter hears its own successful transmission, and the
destination never adopts a packet addressed to itself).
"""

from __future__ import annotations

import abc

from .feedback import Feedback
from .message import Message
from .packet import Packet

__all__ = ["StationController"]


class StationController(abc.ABC):
    """Abstract per-station controller.

    Parameters
    ----------
    station_id:
        This station's name, an integer in ``[0, n)``.
    n:
        Total number of stations (known to algorithms).
    """

    #: Capability flag read by the kernel engine: when True, this
    #: controller's :meth:`wakes` is a pure function of ``round_no`` that
    #: agrees with the algorithm's published oblivious schedule and has no
    #: side effects, so the engine may skip calling it and materialise
    #: awake sets from the schedule in batches.  Controllers whose
    #: ``wakes`` advances internal state machines (Count-Hop, Orchestra,
    #: Adjust-Window, k-Subsets) must leave this False.
    static_wake_schedule: bool = False

    #: Capability flag read by the kernel engine: when True (the default),
    #: :meth:`queued_packets` can only change inside :meth:`on_inject`,
    #: :meth:`act` or :meth:`on_feedback`, so the engine re-polls only
    #: stations that were awake or received an injection this round
    #: instead of all ``n``.  Opt out (set False) if the queue size can
    #: change anywhere else — e.g. inside :meth:`wakes` — and the engine
    #: falls back to polling every station every round.
    queue_metrics_incremental: bool = True

    #: Stronger capability (opt-in, declared by
    #: :class:`~repro.core.controller.QueueingController`): the queue size
    #: changes only via :meth:`on_inject` or during rounds whose channel
    #: outcome is HEARD (a confirmed own transmission removes a packet, a
    #: heard foreign packet may be adopted).  The kernel then skips queue
    #: polls entirely on silent and collision rounds.  Leave False if a
    #: controller drops or requeues packets on silence/collision.
    queue_changes_on_heard_only: bool = False

    #: Capability flag read by the kernel engine: when True, the wake
    #: protocol is *tick-split* — all per-round state transitions happen
    #: in the (idempotent) :meth:`tick` of the run's shared
    #: :class:`~repro.core.schedule.WakeOracle` (every controller of the
    #: run references the same oracle via :attr:`wake_oracle`), and
    #: :meth:`wakes` is a pure query after that tick.  The kernel then
    #: issues one ``tick(t)`` plus one batch ``awake_stations(t)`` per
    #: round instead of ``n`` stateful ``wakes(t)`` calls.  ``wakes``
    #: must still self-tick (call ``self.wake_oracle.tick(round_no)``
    #: first) so the reference engine's per-station loop stays valid.
    ticked_wakes: bool = False

    #: The run's shared :class:`~repro.core.schedule.WakeOracle`, for
    #: controllers declaring :attr:`ticked_wakes`; ``None`` otherwise.
    wake_oracle = None

    #: Capability flag read by the kernel engine (the *quiescence* axis):
    #: when True, this controller guarantees the **silence invariant** —
    #: while it holds no packets it never transmits, and the state it
    #: mutates during a stretch of silent rounds in which *every*
    #: station's queue is empty (token positions, phase counters) is a
    #: pure function of the stretch's round window, reproducible by one
    #: :meth:`advance_silent_span` call.  The kernel may then elide whole
    #: quiescent spans (all queues empty, no injection planned) in one
    #: step instead of driving wakes/act/on_feedback round by round.
    #: Controllers that transmit control messages while idle (Count-Hop's
    #: coordinator, Orchestra's conductor — their idle rounds are not
    #: even silent) or whose silent-round bookkeeping depends on queue
    #: history (Adjust-Window's gossip records) must leave this False.
    silence_invariant: bool = False

    #: The run's shared :class:`~repro.core.blocks.RoundBlockDriver`, for
    #: algorithms whose rounds can be compiled by the block engine (at
    #: most one candidate transmitter per round); ``None`` otherwise.
    #: Every controller of a run must reference the *same* driver object —
    #: the block engine treats a mismatch as "no driver" and falls back to
    #: the kernel's per-round loop.
    block_driver = None

    def advance_silent_span(self, start: int, stop: int) -> None:
        """Fast-forward this controller across the silent span ``[start, stop)``.

        Called by the kernel engine only when :attr:`silence_invariant`
        is declared and every station's queue was empty for the whole
        span, so every round in it had channel outcome SILENCE and no
        station transmitted.  The implementation must leave the
        controller in exactly the state that per-round driving — a
        ``wakes(t)`` / ``act(t)`` / ``on_feedback(t, SILENCE)`` sequence
        for each of its awake rounds in the span — would have.  The
        default is a no-op, correct only for controllers with no
        silence-driven state.
        """


    def __init__(self, station_id: int, n: int) -> None:
        if not 0 <= station_id < n:
            raise ValueError(f"station_id {station_id} out of range for n={n}")
        self.station_id = station_id
        self.n = n

    # -- protocol hooks ----------------------------------------------------
    def tick(self, round_no: int) -> None:
        """Advance protocol state so that ``round_no`` lies inside it.

        Idempotent per round; called (directly or via :meth:`wakes`)
        after the round's injections and before any station acts.  The
        default is a no-op — controllers declaring :attr:`ticked_wakes`
        delegate to their shared wake oracle.
        """

    @abc.abstractmethod
    def wakes(self, round_no: int) -> bool:
        """Return True when this station is switched on in ``round_no``.

        Must behave exactly like ``tick(round_no)`` followed by a pure
        (side-effect-free) query of the post-tick state.
        """

    @abc.abstractmethod
    def act(self, round_no: int) -> Message | None:
        """Transmit a message this round, or listen by returning ``None``.

        Called only when :meth:`wakes` returned True for ``round_no``.
        """

    @abc.abstractmethod
    def on_feedback(self, round_no: int, feedback: Feedback) -> None:
        """Receive the channel feedback for ``round_no`` (awake rounds only)."""

    @abc.abstractmethod
    def on_inject(self, round_no: int, packet: Packet) -> None:
        """The adversary injected ``packet`` into this station in ``round_no``."""

    # -- introspection (metrics only, not used by algorithms) --------------
    @abc.abstractmethod
    def queued_packets(self) -> int:
        """Number of packets currently queued at this station.

        Used by the metrics collector; the value must count every packet
        this station is currently responsible for (injected or adopted and
        not yet heard on the channel / consumed).
        """

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(station={self.station_id}, n={self.n})"
