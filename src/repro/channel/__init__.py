"""Multiple access channel substrate.

This subpackage implements the shared-channel model of Section 2 of the
paper: packets, one-round messages, ternary channel feedback, switched
on/off stations with per-round energy accounting, and the synchronous
round engine that arbitrates transmissions and performs delivery
bookkeeping.
"""

from .block import BlockEngine
from .energy import EnergyCapViolation, EnergyMonitor, EnergyReport
from .engine import DEFAULT_VIEW_WINDOW, AdversaryView, EngineConfig, RoundEngine
from .events import ExecutionTrace, InjectionEvent, RoundEvent
from .feedback import ChannelOutcome, Feedback
from .kernel import KernelEngine
from .message import Message, control_bit_cost
from .packet import Packet, PacketFactory
from .station import StationController

__all__ = [
    "AdversaryView",
    "BlockEngine",
    "ChannelOutcome",
    "DEFAULT_VIEW_WINDOW",
    "EngineConfig",
    "EnergyCapViolation",
    "EnergyMonitor",
    "EnergyReport",
    "ExecutionTrace",
    "Feedback",
    "InjectionEvent",
    "KernelEngine",
    "Message",
    "Packet",
    "PacketFactory",
    "RoundEngine",
    "RoundEvent",
    "StationController",
    "control_bit_cost",
]
