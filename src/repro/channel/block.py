"""Compiled round-block engine for token-withholding protocols.

:class:`BlockEngine` is the third engine tier, above
:class:`~repro.channel.kernel.KernelEngine`.  The kernel already negotiates
away most per-round overhead, but it still drives every *busy* round
through the full generic protocol: ``act`` on every awake station,
feedback fan-out to every awake station, queue polls for every awake
station.  The token-withholding algorithms (k-Cycle, k-Clique, k-Subsets,
RRW/OF-RRW, MBTF) make almost all of that provably redundant:

* only the replica-agreed token holder may transmit, so collisions are
  impossible and the round's outcome is decided by **one** ``act`` call
  (skipped outright when the holder's queue is known empty — the silence
  invariant says an empty holder withholds);
* the feedback effects on every awake station are a pure function of the
  outcome, applied directly by a per-algorithm
  :class:`~repro.core.blocks.RoundBlockDriver` (one or two targeted
  mutations instead of ``n`` ``on_feedback`` dispatches);
* only driver-reported stations can have changed queue sizes, so heard
  rounds poll a handful of stations instead of the whole awake set.

Negotiation: the engine compiles blocks when the run is on the kernel's
static-schedule or ticked wake tier with planned injections, incremental
heard-only queue metrics, the silence invariant on every controller, and
one shared driver attached to all controllers.  Restricted drivers for
beaconing algorithms (Count-Hop, Orchestra) set
``relies_on_silence_invariant = False``, which waives the
silence-invariant conjunction: the engine then calls the named
transmitter's ``act`` unconditionally (beacons are sent with empty
queues) and the driver aligns block boundaries with its phase structure
via ``propose_stop``, declining the adaptive phases per block with a
reason string surfaced in the negotiation report.  Anything missing — or
a driver declining an individual block — degrades that block (never the
run, never an error) to the inherited kernel loop, which remains
bit-identical and resumable mid-chunk.

On top of the per-round driver protocol sits the *segment-lowering*
tier: a driver that can prove its outcome sequence in closed form
exports whole spans as :class:`~repro.core.blocks.LoweredSegment` arrays
and the engine flushes outcome counts, the total-queue series,
per-station maxima, energy, injections and deliveries with the
vectorised kernels in :mod:`repro._accel` — no per-round Python at all.
The span's injections are no obstacle: they come from the adversary's
plan, so the driver simulates the arrivals too (referencing the
to-be-created packets by plan index) and only cuts the segment when an
injection actually invalidates its closed form — e.g. a restricted
driver whose phase schedule was fixed from queue state.  The engine
materialises the span's packets (in plan order, preserving packet-id
assignment) only *after* accepting a segment, so a rejected segment
(None, or a failed energy-cap pre-check) leaves no trace and the same
rounds re-run through the per-round path.  Results are bit-identical to
both other engines; the equivalence property suites enforce it.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import TYPE_CHECKING, Sequence

import numpy as np

from .._accel import count_transmitting, per_station_flow, segment_round_totals
from .energy import EnergyCapViolation
from .engine import EngineConfig, check_message
from .feedback import ChannelOutcome
from .kernel import KernelEngine
from .message import Message
from .station import StationController

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..adversary.base import Adversary
    from ..core.blocks import RoundBlockDriver
    from ..core.schedule import ObliviousSchedule
    from ..metrics.collector import MetricsCollector

__all__ = ["BlockEngine"]

#: Rounds to wait before re-asking a driver to lower after it returned
#: None.  Lowering probes are cheap but not free (a bisect plus the
#: driver's own eligibility scan), so a driver stuck in a non-lowerable
#: regime is only re-polled every few rounds.
_LOWER_PROBE_BACKOFF = 16


class BlockEngine(KernelEngine):
    """Kernel engine that lowers eligible round blocks to compiled form.

    Construction, negotiation and the fallback loop are inherited from
    :class:`KernelEngine`; this class adds the block-eligibility
    negotiation and the compiled per-block loop.  See the module
    docstring for the eligibility conditions.
    """

    def __init__(
        self,
        controllers: Sequence[StationController],
        adversary: "Adversary",
        collector: "MetricsCollector | None" = None,
        config: EngineConfig | None = None,
        schedule: "ObliviousSchedule | None" = None,
    ) -> None:
        super().__init__(controllers, adversary, collector, config, schedule)
        driver = getattr(self.controllers[0], "block_driver", None)
        if driver is not None and not all(
            getattr(ctrl, "block_driver", None) is driver
            for ctrl in self.controllers
        ):
            driver = None
        self._driver: "RoundBlockDriver | None" = driver
        # Restricted drivers for beaconing algorithms waive the
        # silence-invariant conjunction; the engine then may not skip
        # ``act`` for empty-queue transmitters (beacons carry no packet).
        self._act_unconditional = driver is not None and not getattr(
            driver, "relies_on_silence_invariant", True
        )
        self._block_capable = (
            driver is not None
            and self._planned_injections
            and self._incremental_metrics
            and self._heard_only_polls
            and (self._period_awake is not None or self._wake_oracle is not None)
            and (
                self._act_unconditional
                or all(
                    getattr(ctrl, "silence_invariant", False)
                    for ctrl in self.controllers
                )
            )
        )
        # Static tier: awake membership as one bool matrix over the period
        # (schedule.awake_matrix batch export), so the per-delivery
        # "destination awake?" test is one cell lookup instead of a scan
        # of the awake tuple.
        self._period_member: np.ndarray | None = None
        if self._block_capable and self._period_awake is not None:
            self._period_member = self._schedule.awake_matrix(
                0, len(self._period_awake)
            )
        #: Blocks run through the compiled loop (introspection).
        self.blocks_compiled = 0
        #: Blocks degraded to the inherited kernel loop (introspection).
        self.blocks_fallback = 0
        #: Why blocks were declined: reason string -> count (introspection).
        self.block_decline_reasons: dict[str, int] = {}
        #: Segments executed through the array-lowered path (introspection).
        self.lowered_segments = 0
        #: Rounds executed through the array-lowered path (introspection).
        self.lowered_rounds = 0
        #: Public toggle for the segment-lowering tier.  The benchmark
        #: harness flips it off to time the per-round block loop against
        #: the lowered path on otherwise identical runs; it is an
        #: execution knob, not negotiated state, so results stay
        #: bit-identical either way.
        self.lowering_enabled = True
        #: Shortest segment worth accepting from ``lower_segment``.  A
        #: lowered segment pays a fixed commit cost (queue rebuilds,
        #: array classification) that the per-round savings must
        #: amortise; short silent spans — e.g. k-Cycle between activity
        #: bursts, where the token walk cuts every few dozen rounds —
        #: run faster through the per-round protocol, so proofs below
        #: this span are discarded like a failed cap pre-check (nothing
        #: was materialised, so a discard leaves no trace).  Execution
        #: knob like :attr:`lowering_enabled`: results are bit-identical
        #: for every value.
        self.lower_min_span = 32

    # -- negotiated capabilities ----------------------------------------------
    @property
    def uses_block_compilation(self) -> bool:
        """True when the run is eligible for compiled round blocks."""
        return self._block_capable

    def negotiation(self) -> dict:
        data = super().negotiation()
        data["block_compilation"] = self.uses_block_compilation
        data["blocks_compiled"] = self.blocks_compiled
        data["blocks_fallback"] = self.blocks_fallback
        data["block_decline_reasons"] = dict(self.block_decline_reasons)
        data["segment_lowering"] = self._block_capable and self.lowering_enabled
        data["lowered_segments"] = self.lowered_segments
        data["lowered_rounds"] = self.lowered_rounds
        return data

    # -- main loop ------------------------------------------------------------
    def run(self, rounds: int) -> None:
        """Simulate ``rounds`` further rounds, block by block.

        Each block spans one injection-plan chunk; the shared driver may
        accept or decline each block independently, and declined blocks
        run through the (resumable) kernel loop, so compiled and fallback
        blocks interleave freely with bit-identical results.
        """
        if not self._block_capable:
            self.blocks_fallback += 1
            super().run(rounds)
            return
        driver = self._driver
        chunk = self.config.plan_chunk
        end = self.round_no + rounds
        while self.round_no < end:
            start = self.round_no
            stop = min(start + chunk, end)
            plan = self._plan_state
            if plan is not None and plan.start <= start < plan.stop:
                # Align the block with the cached (replayable) plan
                # remainder so compiled and fallback paths consume the
                # same chunk boundaries.
                stop = min(plan.stop, end)
            # Restricted drivers align blocks with their phase structure
            # so a declined adaptive phase becomes its own (short)
            # fallback block instead of dragging a compilable neighbour
            # down with it.
            proposed = driver.propose_stop(start, stop)
            if start < proposed < stop:
                stop = proposed
            driver.decline_reason = None
            if driver.begin_block(start, stop):
                self.blocks_compiled += 1
                try:
                    self._run_block(start, stop)
                finally:
                    driver.end_block(self.round_no)
            else:
                self.blocks_fallback += 1
                reason = driver.decline_reason or "declined without a reason"
                self.block_decline_reasons[reason] = (
                    self.block_decline_reasons.get(reason, 0) + 1
                )
                super().run(stop - start)

    def _run_block(self, start: int, stop: int) -> None:
        """Drive rounds ``[start, stop)`` through the compiled loop.

        Mirrors the kernel loop's 8 steps and its finally-block
        reconciliation, with the per-round fan-out replaced by the
        driver's single-transmitter protocol.  Aggregate counters stay
        consistent on exceptions, exactly as in the kernel.
        """
        driver = self._driver
        collector = self.collector
        config = self.config
        energy = self.energy
        period = self._period_awake
        period_len = len(period) if period is not None else 0
        period_member = self._period_member
        oracle = self._wake_oracle
        oracle_tick = oracle.tick if oracle is not None else None
        oracle_awake = oracle.awake_stations if oracle is not None else None
        act = self._act
        poll = self._poll
        inject_into = self._inject_into
        record_injection = collector.record_injection
        record_delivery = collector.record_delivery
        factory_make = (
            self.adversary.factory.make
            if self.adversary.factory is not None
            else None
        )
        checked_messages = (
            config.check_plain_packet or config.max_control_bits is not None
        )
        queue_sizes = self._queue_sizes
        total_queue = self._total_queue
        silence_capable = self._silence_capable
        advance_silent = (
            [ctrl.advance_silent_span for ctrl in self.controllers]
            if silence_capable
            else ()
        )
        record_queue_span = collector.record_queue_span
        observe_span = energy.observe_span
        energy_per_round = energy.per_round
        total_queue_series = collector.total_queue_series
        energy_series = collector.energy_series
        per_station_max = collector.per_station_max_queue
        cap = energy.cap
        enforce_cap = energy.enforce
        silence = ChannelOutcome.SILENCE
        heard_outcome = ChannelOutcome.HEARD
        transmitter = driver.transmitter
        silent_round = driver.silent_round
        heard_round = driver.heard_round
        advance_span = driver.advance_span
        lower_segment = driver.lower_segment
        act_unconditional = self._act_unconditional
        # The lowered path bypasses per-message validation, so checked
        # configurations (plain-packet or control-bit budgets) keep the
        # per-round loop, where check_message runs for every message.
        lowering = self.lowering_enabled and not checked_messages
        lower_min_span = self.lower_min_span
        next_probe = start
        n_silence = n_heard = 0
        rounds_done = 0
        # Per-call energy accumulators, folded into the monitor once in
        # the ``finally`` — recomputing sum/max over the monitor's whole
        # history per block would be quadratic across many short blocks.
        run_station_rounds = 0
        run_peak_awake = 0
        counts_list: list[int] | None = None
        energized = 0
        if period is not None and self._period_counts is not None and stop > start:
            counts_list = self._period_counts[
                np.arange(start, stop, dtype=np.int64) % period_len
            ].tolist()

        plan = self._next_plan(start, stop)
        plan_offsets = plan.offsets
        plan_sources = plan.sources
        plan_destinations = plan.destinations
        plan_base = plan.start
        plan_stop = plan.stop
        try:
            t = start
            while t < stop:
                # 0. Quiescent-span elision (same conditions and
                #    bookkeeping as the kernel; the driver's advance_span
                #    hook additionally keeps any canonical state current).
                if silence_capable and total_queue == 0:
                    plan_nonzero = plan.injection_rounds()
                    pos = bisect_left(plan_nonzero, t)
                    next_injection = (
                        plan_nonzero[pos] if pos < len(plan_nonzero) else plan_stop
                    )
                    span_end = next_injection if next_injection < stop else stop
                    span_counts: np.ndarray | None = None
                    if span_end > t:
                        if counts_list is not None:
                            eligible = True
                        else:
                            span_counts = oracle.quiescent_awake_counts(t, span_end)
                            eligible = span_counts is not None and (
                                cap is None or int(span_counts.max()) <= cap
                            )
                            if not eligible:
                                silence_capable = False
                                self._silence_capable = False
                        if eligible:
                            span = span_end - t
                            for advance in advance_silent:
                                advance(t, span_end)
                            advance_span(t, span_end)
                            if counts_list is not None:
                                energized += span
                            else:
                                oracle.advance_span(t, span_end)
                                span_ints = span_counts.tolist()
                                observe_span(span_ints)
                                energy_series.extend(span_ints)
                            record_queue_span(total_queue, span)
                            n_silence += span
                            rounds_done += span
                            self.quiescent_rounds_elided += span
                            t = span_end
                            continue

                # 0b. Segment lowering: ask the driver to prove a span —
                #     planned injections included — in closed form and
                #     execute it with the vectorised kernels.  Rejections
                #     (None, or a failed cap pre-check) back off to the
                #     per-round protocol below and re-probe later; no
                #     packets are materialised before acceptance, so a
                #     rejection leaves no trace.
                if lowering and t >= next_probe:
                    seg = lower_segment(t, stop, plan)
                    if seg is None:
                        next_probe = t + _LOWER_PROBE_BACKOFF
                    elif seg.start != t or not t < seg.stop <= stop:
                        raise ValueError(
                            f"driver lowered [{seg.start}, {seg.stop}) "
                            f"for requested span [{t}, {stop})"
                        )
                    elif seg.stop - t < lower_min_span:
                        # Too short to amortise the commit cost: run the
                        # proved span per-round and re-probe at its end.
                        next_probe = seg.stop
                    else:
                        seg_counts = seg.awake_counts
                        if period is not None:
                            # Static tier: cap-safe batch counts required
                            # (without them the per-round path owns the
                            # cap accounting and must raise at the exact
                            # violating round).
                            cap_safe = counts_list is not None
                        else:
                            cap_safe = seg_counts is not None and (
                                cap is None
                                or not seg_counts.shape[0]
                                or int(seg_counts.max()) <= cap
                            )
                        if not cap_safe:
                            next_probe = seg.stop
                        else:
                            span = seg.stop - t
                            values = seg.delta_values
                            heard = count_transmitting(seg.transmitters)
                            n_heard += heard
                            n_silence += span - heard
                            totals = segment_round_totals(
                                seg.delta_offsets, values, total_queue
                            )
                            collector.record_round_totals(totals.tolist())
                            if values.shape[0]:
                                base = np.asarray(queue_sizes, dtype=np.int64)
                                sizes, peaks = per_station_flow(
                                    seg.delta_stations, values, base
                                )
                                for i in np.unique(seg.delta_stations).tolist():
                                    queue_sizes[i] = int(sizes[i])
                                    if peaks[i] > per_station_max[i]:
                                        per_station_max[i] = int(peaks[i])
                                total_queue = int(totals[-1])
                            if counts_list is not None:
                                energized += span
                            else:
                                span_ints = seg_counts.tolist()
                                observe_span(span_ints)
                                energy_series.extend(span_ints)
                            # Materialise the span's planned injections in
                            # plan order — identical packet-id assignment
                            # to the per-round path — then resolve the
                            # plan-index delivery references against them.
                            j0 = plan_offsets[t - plan_base]
                            j1 = plan_offsets[seg.stop - plan_base]
                            packets: list = []
                            if j1 > j0:
                                plan_nonzero = plan.injection_rounds()
                                pos = bisect_left(plan_nonzero, t)
                                while (
                                    pos < len(plan_nonzero)
                                    and plan_nonzero[pos] < seg.stop
                                ):
                                    r = plan_nonzero[pos]
                                    rel = r - plan_base
                                    for j in range(
                                        plan_offsets[rel], plan_offsets[rel + 1]
                                    ):
                                        packet = factory_make(
                                            destination=plan_destinations[j],
                                            injected_at=r,
                                            origin=plan_sources[j],
                                        )
                                        record_injection(packet, r)
                                        packets.append(packet)
                                    pos += 1
                            for rnd, delivered in seg.deliveries:
                                if type(delivered) is int:
                                    delivered = packets[delivered - j0]
                                record_delivery(delivered, delivered.destination, rnd)
                            seg.commit(packets)
                            rounds_done += span
                            self.lowered_segments += 1
                            self.lowered_rounds += span
                            t = seg.stop
                            next_probe = t
                            continue

                # 1. Adversarial injections (plan slices; block capability
                #    implies a planning adversary).
                rel = t - plan_base
                lo = plan_offsets[rel]
                hi = plan_offsets[rel + 1]
                injected: list[int] | None = None
                if lo != hi:
                    injected = []
                    for j in range(lo, hi):
                        station = plan_sources[j]
                        packet = factory_make(
                            destination=plan_destinations[j],
                            injected_at=t,
                            origin=station,
                        )
                        inject_into[station](t, packet)
                        record_injection(packet, t)
                        injected.append(station)

                # 2. On/off decisions and energy accounting.
                if period is not None:
                    if counts_list is not None:
                        energized += 1
                    else:
                        awake_count = len(period[t % period_len])
                        energy_per_round.append(awake_count)
                        run_station_rounds += awake_count
                        if awake_count > run_peak_awake:
                            run_peak_awake = awake_count
                        if cap is not None and awake_count > cap:
                            energy.violations += 1
                            if enforce_cap:
                                raise EnergyCapViolation(t, awake_count, cap)
                else:
                    oracle_tick(t)
                    awake = oracle_awake(t)
                    awake_count = len(awake)
                    energy_per_round.append(awake_count)
                    run_station_rounds += awake_count
                    if awake_count > run_peak_awake:
                        run_peak_awake = awake_count
                    if cap is not None and awake_count > cap:
                        energy.violations += 1
                        if enforce_cap:
                            raise EnergyCapViolation(t, awake_count, cap)

                # 3+4. Single-candidate act and arbitration: only the
                #      token holder may transmit, and an empty holder
                #      provably withholds — unless an injection landed
                #      this round (queue_sizes is polled post-round, so
                #      it cannot yet see this round's injections), or the
                #      driver waived the silence invariant (beaconing
                #      algorithms transmit with empty queues).
                s = transmitter(t)
                message: Message | None = None
                if s >= 0 and (
                    act_unconditional or queue_sizes[s] > 0 or injected is not None
                ):
                    message = act[s](t)

                # 5+6. Delivery bookkeeping and feedback effects, applied
                #      directly by the driver.
                if message is None:
                    n_silence += 1
                    silent_round(t)
                    changed: tuple[int, ...] = ()
                else:
                    if message.sender != s:
                        raise ValueError(
                            f"station {s} transmitted a message claiming sender "
                            f"{message.sender}"
                        )
                    if checked_messages:
                        check_message(config, s, message)
                    n_heard += 1
                    packet = message.packet
                    if packet is not None:
                        destination = packet.destination
                        if (
                            period_member[t % period_len, destination]
                            if period_member is not None
                            else destination in awake
                        ):
                            record_delivery(packet, destination, t)
                    changed = heard_round(t, s, message)

                # 7. Metrics: re-poll only stations whose queues can have
                #    changed (driver-reported plus this round's injectees).
                if injected is not None:
                    for station in injected:
                        size = poll[station]()
                        if size != queue_sizes[station]:
                            total_queue += size - queue_sizes[station]
                            queue_sizes[station] = size
                            if size > per_station_max[station]:
                                per_station_max[station] = size
                for i in changed:
                    size = poll[i]()
                    if size != queue_sizes[i]:
                        total_queue += size - queue_sizes[i]
                        queue_sizes[i] = size
                        if size > per_station_max[i]:
                            per_station_max[i] = size
                total_queue_series.append(total_queue)
                if counts_list is None:
                    energy_series.append(awake_count)
                rounds_done += 1
                # (8. View maintenance: block capability implies an
                #  oblivious adversary — there is no view to update.)
                t += 1
        finally:
            self.round_no += rounds_done
            self._total_queue = total_queue
            if self._plan_state is not None and self.round_no >= self._plan_state.stop:
                self._plan_state = None
            if counts_list is not None:
                flushed = counts_list[:energized]
                energy_per_round.extend(flushed)
                run_station_rounds += sum(flushed)
                if flushed:
                    peak = max(flushed)
                    if peak > run_peak_awake:
                        run_peak_awake = peak
                collector.record_energy_series(counts_list[:rounds_done])
            collector.rounds_observed += rounds_done
            counts = collector.outcome_counts
            for outcome, count in ((silence, n_silence), (heard_outcome, n_heard)):
                if count:
                    counts[outcome] = counts.get(outcome, 0) + count
            # The span paths (quiescent elision, lowered segments) fold
            # their counts in through EnergyMonitor.observe_span; this
            # covers the per-round appends and the static-tier flush.
            energy.total_station_rounds += run_station_rounds
            if run_peak_awake > energy.max_awake:
                energy.max_awake = run_peak_awake
