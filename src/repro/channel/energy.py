"""Energy accounting for the shared channel.

The system's energy expenditure in a round equals the number of stations
that spend the round switched on (Section 2).  The *energy cap* is the
maximum number of stations allowed to be simultaneously on.  The engine
feeds the per-round awake-set into an :class:`EnergyMonitor`, which either
enforces the cap (raising :class:`EnergyCapViolation`) or merely records
usage, depending on the experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["EnergyCapViolation", "EnergyMonitor", "EnergyReport"]


class EnergyCapViolation(RuntimeError):
    """Raised when more stations are awake in a round than the cap allows."""

    def __init__(self, round_no: int, awake: int, cap: int) -> None:
        super().__init__(
            f"energy cap violated in round {round_no}: {awake} stations awake, cap {cap}"
        )
        self.round_no = round_no
        self.awake = awake
        self.cap = cap


@dataclass(slots=True)
class EnergyReport:
    """Summary of energy use over a finished run."""

    rounds: int
    total_station_rounds: int
    max_awake: int
    cap: int | None

    @property
    def average_awake(self) -> float:
        """Average number of awake stations per round."""
        if self.rounds == 0:
            return 0.0
        return self.total_station_rounds / self.rounds

    def energy_per_round(self) -> float:
        """Alias for :attr:`average_awake`, in units of 'station-rounds'."""
        return self.average_awake


@dataclass(slots=True)
class EnergyMonitor:
    """Tracks per-round energy use and optionally enforces the cap.

    Parameters
    ----------
    cap:
        The energy cap ``k``; ``None`` means uncapped (record only).
    enforce:
        When True, exceeding the cap raises :class:`EnergyCapViolation`.
        Experiments that only *measure* energy set this to False.
    """

    cap: int | None = None
    enforce: bool = True
    per_round: list[int] = field(default_factory=list)
    total_station_rounds: int = 0
    max_awake: int = 0
    violations: int = 0

    def observe(self, round_no: int, awake_count: int) -> None:
        """Record the number of awake stations in ``round_no``."""
        self.per_round.append(awake_count)
        self.total_station_rounds += awake_count
        if awake_count > self.max_awake:
            self.max_awake = awake_count
        if self.cap is not None and awake_count > self.cap:
            self.violations += 1
            if self.enforce:
                raise EnergyCapViolation(round_no, awake_count, self.cap)

    def observe_span(self, awake_counts: "list[int]") -> None:
        """Batch-record per-round awake counts for a cap-safe span.

        The kernel engine's quiescent-span fast path flushes a whole
        span's counts in one call; the caller has already verified that
        no count exceeds the cap (spans whose counts could violate it are
        not elided), so no per-round violation check is needed.  Accepts
        any sequence of ints, including a numpy array (the block engine's
        lowered segments export counts as int64 arrays); this module
        deliberately stays numpy-free, so the conversion duck-types on
        ``tolist``.
        """
        tolist = getattr(awake_counts, "tolist", None)
        if tolist is not None:
            awake_counts = tolist()
        if not awake_counts:
            return
        self.per_round.extend(awake_counts)
        self.total_station_rounds += sum(awake_counts)
        peak = max(awake_counts)
        if peak > self.max_awake:
            self.max_awake = peak

    def report(self) -> EnergyReport:
        """Produce an :class:`EnergyReport` for the rounds observed so far."""
        return EnergyReport(
            rounds=len(self.per_round),
            total_station_rounds=self.total_station_rounds,
            max_awake=self.max_awake,
            cap=self.cap,
        )
