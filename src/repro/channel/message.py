"""Messages transmitted on the channel.

A message occupies exactly one round and consists of *at most one packet*
plus a string of control bits (Section 2, "Routing algorithms").  The paper
distinguishes two message disciplines:

* **plain-packet** algorithms: a message is a bare packet, no control bits;
  a station with nothing to route cannot transmit at all;
* **general** algorithms: a message may carry control bits (O(log n) of
  them) and may even be *light*, i.e. carry control bits but no packet.

The :class:`Message` class models both.  Control information is stored as a
small mapping so that algorithm code stays readable; :meth:`control_bits`
accounts for its encoded size so tests can check the O(log n) discipline.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Mapping

from .packet import Packet

__all__ = ["Message", "control_bit_cost"]


def control_bit_cost(value: Any) -> int:
    """Number of bits needed to encode one control value.

    Booleans cost one bit, non-negative integers cost ``ceil(log2(v + 2))``
    bits, ``None`` costs nothing, and small tuples cost the sum of their
    elements.  This is intentionally simple — it only needs to be a sound
    upper bound that lets tests verify the O(log n) control-bit discipline.
    """
    if value is None:
        return 0
    if isinstance(value, bool):
        return 1
    if isinstance(value, int):
        return max(1, math.ceil(math.log2(abs(value) + 2)))
    if isinstance(value, (tuple, list)):
        return sum(control_bit_cost(v) for v in value)
    raise TypeError(f"unsupported control value type: {type(value)!r}")


@dataclass(frozen=True, slots=True)
class Message:
    """One round's worth of transmission by a single station.

    Attributes
    ----------
    sender:
        Name of the transmitting station (filled in by the controller).
    packet:
        The packet carried by the message, or ``None`` for a *light*
        message (only allowed for general algorithms).
    control:
        Mapping of control fields.  The packet's destination address is
        part of the packet, not of the control bits.
    intended_receiver:
        Optional addressing hint: the station this message is "sent to"
        in the sense of Section 4.2 (the unique listening station).  It is
        metadata for relays/metrics; physically every awake station hears
        the message.
    """

    sender: int
    packet: Packet | None = None
    control: Mapping[str, Any] = field(default_factory=dict)
    intended_receiver: int | None = None

    @property
    def is_light(self) -> bool:
        """True when the message carries no packet (control bits only)."""
        return self.packet is None

    @property
    def is_plain_packet(self) -> bool:
        """True when the message is a bare packet with no control bits."""
        return self.packet is not None and not self.control

    def control_bits(self) -> int:
        """Total number of control bits carried by this message."""
        return sum(control_bit_cost(v) for v in self.control.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = [f"from={self.sender}"]
        if self.packet is not None:
            parts.append(f"pkt={self.packet.packet_id}->{self.packet.destination}")
        if self.control:
            parts.append(f"ctrl={dict(self.control)}")
        if self.intended_receiver is not None:
            parts.append(f"to={self.intended_receiver}")
        return "Message(" + ", ".join(parts) + ")"
