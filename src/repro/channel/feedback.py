"""Per-round channel feedback delivered to switched-on stations.

The multiple access channel gives ternary feedback to every station that is
switched on in a round (Section 2, "Messages"):

* exactly one station transmitted — every awake station *hears* the message
  (including the transmitter itself);
* two or more stations transmitted — a *collision*; nobody hears anything;
* no station transmitted — a *silent* round.

Stations that are switched off receive no feedback at all.
"""

from __future__ import annotations

import enum
import sys
from dataclasses import dataclass

from .message import Message

__all__ = ["ChannelOutcome", "Feedback", "FeedbackPool"]


class ChannelOutcome(enum.Enum):
    """What happened on the channel in a given round."""

    SILENCE = "silence"
    HEARD = "heard"
    COLLISION = "collision"


@dataclass(frozen=True, slots=True)
class Feedback:
    """Feedback handed to each awake station at the end of a round.

    Attributes
    ----------
    round_no:
        The round the feedback refers to.
    outcome:
        Ternary channel outcome.
    message:
        The message heard, when ``outcome`` is :attr:`ChannelOutcome.HEARD`,
        otherwise ``None``.
    delivered:
        True when the heard message carried a packet *and* the packet's
        destination station was switched on in this round, i.e. the packet
        was consumed.  Awake stations can observe this themselves (they
        know who is supposed to listen), but exposing it in the feedback
        keeps controller code simple without giving stations any
        information they could not legitimately derive.
    """

    round_no: int
    outcome: ChannelOutcome
    message: Message | None = None
    delivered: bool = False

    #: ``round_no`` of interned instances shared across rounds (see
    #: :class:`FeedbackPool`): controllers always receive the authoritative
    #: round number as the explicit ``on_feedback`` argument, so the field
    #: is informational only.
    INTERNED_ROUND = -1

    @property
    def heard(self) -> bool:
        """True when a message was successfully heard this round."""
        return self.outcome is ChannelOutcome.HEARD

    @property
    def silent(self) -> bool:
        """True when the round was silent."""
        return self.outcome is ChannelOutcome.SILENCE

    @property
    def collision(self) -> bool:
        """True when two or more stations transmitted simultaneously."""
        return self.outcome is ChannelOutcome.COLLISION


class FeedbackPool:
    """Allocation-free per-round feedback for the kernel's hot loop.

    ``Feedback`` is a frozen dataclass, so one instance is safely shared
    by every awake station of a round — and, for the payload-free SILENCE
    and COLLISION outcomes, across *all* rounds: the pool hands out two
    interned singletons (with ``round_no`` fixed at
    :attr:`Feedback.INTERNED_ROUND`; the real round number always travels
    as the explicit ``on_feedback`` argument).  HEARD feedback carries the
    round's message, so the pool instead recycles a single instance
    in-place between rounds — but only while the pool holds the sole
    reference: a controller that retained last round's feedback keeps its
    object intact and the pool allocates a fresh one.
    """

    __slots__ = ("_silence", "_collision", "_heard")

    def __init__(self) -> None:
        self._silence = Feedback(
            round_no=Feedback.INTERNED_ROUND, outcome=ChannelOutcome.SILENCE
        )
        self._collision = Feedback(
            round_no=Feedback.INTERNED_ROUND, outcome=ChannelOutcome.COLLISION
        )
        self._heard: Feedback | None = None

    def silence(self) -> Feedback:
        """The interned SILENCE feedback (shared across rounds)."""
        return self._silence

    def collision(self) -> Feedback:
        """The interned COLLISION feedback (shared across rounds)."""
        return self._collision

    def heard(self, round_no: int, message: Message, delivered: bool) -> Feedback:
        """A HEARD feedback for this round, recycled when safely possible.

        The refcount check (pool slot + local + ``getrefcount`` argument
        = 3) guarantees in-place reuse never mutates an object anyone
        else still references.
        """
        recycled = self._heard
        if recycled is not None and sys.getrefcount(recycled) == 3:
            object.__setattr__(recycled, "round_no", round_no)
            object.__setattr__(recycled, "message", message)
            object.__setattr__(recycled, "delivered", delivered)
            return recycled
        fresh = Feedback(
            round_no=round_no,
            outcome=ChannelOutcome.HEARD,
            message=message,
            delivered=delivered,
        )
        self._heard = fresh
        return fresh
