"""Per-round channel feedback delivered to switched-on stations.

The multiple access channel gives ternary feedback to every station that is
switched on in a round (Section 2, "Messages"):

* exactly one station transmitted — every awake station *hears* the message
  (including the transmitter itself);
* two or more stations transmitted — a *collision*; nobody hears anything;
* no station transmitted — a *silent* round.

Stations that are switched off receive no feedback at all.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from .message import Message

__all__ = ["ChannelOutcome", "Feedback"]


class ChannelOutcome(enum.Enum):
    """What happened on the channel in a given round."""

    SILENCE = "silence"
    HEARD = "heard"
    COLLISION = "collision"


@dataclass(frozen=True, slots=True)
class Feedback:
    """Feedback handed to each awake station at the end of a round.

    Attributes
    ----------
    round_no:
        The round the feedback refers to.
    outcome:
        Ternary channel outcome.
    message:
        The message heard, when ``outcome`` is :attr:`ChannelOutcome.HEARD`,
        otherwise ``None``.
    delivered:
        True when the heard message carried a packet *and* the packet's
        destination station was switched on in this round, i.e. the packet
        was consumed.  Awake stations can observe this themselves (they
        know who is supposed to listen), but exposing it in the feedback
        keeps controller code simple without giving stations any
        information they could not legitimately derive.
    """

    round_no: int
    outcome: ChannelOutcome
    message: Message | None = None
    delivered: bool = False

    @property
    def heard(self) -> bool:
        """True when a message was successfully heard this round."""
        return self.outcome is ChannelOutcome.HEARD

    @property
    def silent(self) -> bool:
        """True when the round was silent."""
        return self.outcome is ChannelOutcome.SILENCE

    @property
    def collision(self) -> bool:
        """True when two or more stations transmitted simultaneously."""
        return self.outcome is ChannelOutcome.COLLISION
