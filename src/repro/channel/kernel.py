"""Capability-negotiated fast simulation loop.

:class:`KernelEngine` runs the exact channel semantics of
:class:`~repro.channel.engine.RoundEngine` — same arbitration, delivery
bookkeeping, energy enforcement and message discipline checks — but builds
the cheapest correct loop from what the run's components declare they
actually need:

* **Adversary observation** — the adversary's
  :class:`~repro.adversary.base.ObservationProfile` decides whether the
  :class:`~repro.channel.engine.AdversaryView` is maintained at all
  (oblivious adversaries skip it entirely), kept as a bounded window, or
  kept unbounded.  Windowed adversaries on the static-schedule fast path
  get a :class:`~repro.channel.engine.ScheduleBackedView`: per-round
  maintenance drops to O(1), on-counts advance once per period from the
  schedule's precomputed prefix series, and the history ring is refreshed
  once per chunk.
* **Batched injection** — adversaries declaring ``plans_injections``
  (every oblivious family) have whole chunks of injections materialised
  by one :meth:`~repro.adversary.base.Adversary.plan_injections` call;
  the loop then consumes them as array slices (a round without
  injections costs two list lookups) instead of calling
  ``inject(round_no, view)`` every round.  The per-round ``inject`` stays
  the universal fallback and the reference-loop path.
* **Wake schedules** — three tiers.  When every controller declares
  ``static_wake_schedule`` and the algorithm's published
  :class:`~repro.core.schedule.ObliviousSchedule` has a finite period, the
  per-round awake set is a precomputed tuple lookup and the per-round
  awake *counts* become a precomputed numpy series flushed to the energy
  monitor and collector in one batch.  Otherwise, when every controller
  declares ``ticked_wakes`` and shares a
  :class:`~repro.core.schedule.WakeOracle`, the kernel issues one
  ``tick(t)`` plus one batch ``awake_stations(t)`` per round.  Only runs
  declaring neither fall back to ``n`` stateful ``wakes(t)`` calls.
* **Incremental metrics** — when every controller declares
  ``queue_metrics_incremental``, only stations that were awake or received
  an injection are re-polled for their queue size; everyone else is known
  unchanged.
* **Quiescence skipping** — when every controller declares
  ``silence_invariant`` (holding no packets, an awake station never
  transmits, and silent rounds only advance clock-like state) and the
  adversary plans its injections, a run whose total queue hits zero
  consults the current :class:`~repro.adversary.base.InjectionPlan` chunk
  for the next injection round and elides the whole silent span in one
  step: controllers fast-forward via ``advance_silent_span``, a shared
  :class:`~repro.core.schedule.WakeOracle` via ``advance_span``, and the
  span's SILENCE outcomes, energy counts and flat queue series are
  flushed as batch appends.  In the paper's regime of interest (injection
  rate ρ < 1) most rounds of a stable execution are quiescent, so this is
  what moves low-rate runs from O(rounds) toward O(busy rounds).

Per-round :class:`~repro.channel.feedback.Feedback` allocation is
eliminated through a :class:`~repro.channel.feedback.FeedbackPool`:
SILENCE and COLLISION rounds reuse interned singletons, HEARD rounds
recycle one instance in-place (guarded by a refcount check, so a
controller that retains feedback is never surprised).

The kernel allocates no per-round event objects and therefore cannot
record traces — tracing (and any need for the fully observable, checked
loop) is what :class:`RoundEngine` remains for.  A property test asserts
that both loops produce identical summaries on random run specs; the
reference loop is the oracle.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import TYPE_CHECKING, Sequence

import numpy as np

from .energy import EnergyCapViolation, EnergyMonitor
from .engine import (
    AdversaryView,
    EngineConfig,
    ScheduleBackedView,
    check_message,
    negotiated_view_window,
    validate_controllers,
)
from .feedback import ChannelOutcome, FeedbackPool
from .message import Message
from .station import StationController

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..adversary.base import Adversary, InjectionPlan
    from ..core.schedule import ObliviousSchedule, WakeOracle
    from ..metrics.collector import MetricsCollector

__all__ = ["KernelEngine"]


class KernelEngine:
    """Drop-in fast counterpart of :class:`RoundEngine`.

    Parameters
    ----------
    controllers, adversary, collector, config:
        As for :class:`RoundEngine`.  ``config.record_trace`` is rejected:
        the kernel's whole point is not to materialise per-round events.
    schedule:
        The algorithm's published oblivious schedule, if any.  Only used
        when every controller also declares ``static_wake_schedule``; the
        schedule must agree with the controllers' ``wakes`` (the published
        schedule *is* that declaration, and the kernel-vs-reference
        property test cross-checks it).
    """

    def __init__(
        self,
        controllers: Sequence[StationController],
        adversary: "Adversary",
        collector: "MetricsCollector | None" = None,
        config: EngineConfig | None = None,
        schedule: "ObliviousSchedule | None" = None,
    ) -> None:
        self.controllers = validate_controllers(controllers)
        self.n = len(self.controllers)
        self.adversary = adversary
        self.config = config or EngineConfig()
        if self.config.record_trace:
            raise ValueError(
                "the kernel engine does not record traces; "
                "use the reference RoundEngine (engine='reference') for traced runs"
            )
        if collector is None:
            from ..metrics.collector import MetricsCollector

            collector = MetricsCollector()
        self.collector = collector
        self.energy = EnergyMonitor(
            cap=self.config.energy_cap, enforce=self.config.enforce_energy_cap
        )
        self.trace = None  # API parity with RoundEngine
        self.round_no = 0
        self._feedback_pool = FeedbackPool()
        # Unconsumed remainder of a fetched injection plan, carried across
        # run() calls.  A plan consumes the adversary's leaky-bucket
        # budget for its whole window up front, so when an exception
        # aborts a run mid-chunk the already-materialised rounds must be
        # replayed from this cache on resume — re-planning would start
        # from the post-chunk budget state and inject the wrong packets.
        self._plan_state: "InjectionPlan | None" = None
        # The algorithm's published schedule (may be None); kept for
        # subclasses that negotiate further batch exports from it (the
        # block engine's awake-membership matrix).
        self._schedule = schedule

        # -- negotiation: adversary observation --------------------------------
        self._window = negotiated_view_window(adversary, self.config.full_history)
        self.view = AdversaryView(n=self.n, window=self._window)
        self._observe_view = self._window != 0

        # -- negotiation: batched injection planning ---------------------------
        # Planning adversaries are oblivious by contract; requiring the
        # negotiated window to be 0 keeps a full_history override (or a
        # mis-declared adversary) on the checked per-round path.
        self._planned_injections = self._window == 0 and bool(
            getattr(adversary, "plans_injections", False)
        )

        # -- negotiation: wake schedule ----------------------------------------
        self._period_awake: tuple[tuple[int, ...], ...] | None = None
        self._period_counts: np.ndarray | None = None
        if schedule is not None and all(
            getattr(ctrl, "static_wake_schedule", False) for ctrl in self.controllers
        ):
            self._period_awake = schedule.periodic_awake_sets()
        # -- negotiation: schedule-backed windowed view ------------------------
        self._scheduled_view = False
        if (
            self._period_awake is not None
            and self._observe_view
            and self._window is not None
        ):
            prefix = schedule.period_on_count_prefix()
            if prefix is not None:
                self.view = ScheduleBackedView(
                    self.n, self._window, self._period_awake, prefix
                )
                self._scheduled_view = True
        if self._period_awake is not None:
            # The per-period awake-count series (cached on the schedule).
            # When the cap can never be exceeded (or there is none) the
            # per-round energy bookkeeping is fully vectorised: no count,
            # no check, no append in the loop — the series is flushed in
            # one batch.
            counts = schedule.periodic_awake_counts()
            cap = self.energy.cap
            if counts is not None and (cap is None or int(counts.max()) <= cap):
                self._period_counts = counts

        # -- negotiation: ticked wake protocol ---------------------------------
        self._wake_oracle: "WakeOracle | None" = None
        if self._period_awake is None and all(
            getattr(ctrl, "ticked_wakes", False) for ctrl in self.controllers
        ):
            oracle = getattr(self.controllers[0], "wake_oracle", None)
            if oracle is not None and all(
                getattr(ctrl, "wake_oracle", None) is oracle
                for ctrl in self.controllers
            ):
                self._wake_oracle = oracle

        # -- negotiation: incremental queue metrics ----------------------------
        self._incremental_metrics = all(
            getattr(ctrl, "queue_metrics_incremental", False)
            for ctrl in self.controllers
        )
        self._heard_only_polls = self._incremental_metrics and all(
            getattr(ctrl, "queue_changes_on_heard_only", False)
            for ctrl in self.controllers
        )
        self._queue_sizes = [ctrl.queued_packets() for ctrl in self.controllers]
        self._total_queue = sum(self._queue_sizes)
        if self._incremental_metrics:
            self.collector.begin_stations(self.n)

        # -- negotiation: quiescence skipping ----------------------------------
        # Eliding a span requires knowing, without running the adversary,
        # that no injection falls inside it (planned injections), that no
        # controller state beyond what advance_silent_span reproduces can
        # change (silence_invariant everywhere), that queue metrics stay
        # flat without polling (incremental), and a tier that can supply
        # the span's awake counts in batch (cap-safe static schedule or a
        # wake oracle answering quiescent_awake_counts).
        self._silence_capable = (
            self.config.quiescence_skip
            and self._planned_injections
            and self._incremental_metrics
            and (self._period_counts is not None or self._wake_oracle is not None)
            and all(
                getattr(ctrl, "silence_invariant", False)
                for ctrl in self.controllers
            )
        )
        #: Quiescent rounds elided by the span fast path (introspection).
        self.quiescent_rounds_elided = 0

        # Pre-bound per-station methods: the hot loop touches only awake
        # stations, and a plain list indexing beats repeated attribute
        # lookups on the controller objects.
        self._act = [ctrl.act for ctrl in self.controllers]
        self._feedback = [ctrl.on_feedback for ctrl in self.controllers]
        self._poll = [ctrl.queued_packets for ctrl in self.controllers]
        self._inject_into = [ctrl.on_inject for ctrl in self.controllers]

    # -- negotiated capabilities (introspection for tests/reports) -----------
    @property
    def uses_schedule_fast_path(self) -> bool:
        """True when awake sets come from the precomputed schedule period."""
        return self._period_awake is not None

    @property
    def uses_ticked_wakes(self) -> bool:
        """True when awake sets come from one shared tick + batch query."""
        return self._wake_oracle is not None

    @property
    def uses_vectorised_energy(self) -> bool:
        """True when per-round awake counts come from the precomputed series."""
        return self._period_counts is not None

    @property
    def uses_incremental_metrics(self) -> bool:
        """True when only awake/injected stations are re-polled per round."""
        return self._incremental_metrics

    @property
    def maintains_view(self) -> bool:
        """True unless the adversary declared itself oblivious."""
        return self._observe_view

    @property
    def uses_planned_injections(self) -> bool:
        """True when injections are consumed from chunked plans."""
        return self._planned_injections

    @property
    def uses_batched_view(self) -> bool:
        """True when the adversary view is schedule-backed (batched)."""
        return self._scheduled_view

    @property
    def uses_quiescence_skipping(self) -> bool:
        """True when injection-free all-queues-empty spans are elided."""
        return self._silence_capable

    def negotiation(self) -> dict:
        """The negotiated capabilities as a plain dict (reports/CLI)."""
        return {
            "engine": type(self).__name__,
            "schedule_fast_path": self.uses_schedule_fast_path,
            "ticked_wakes": self.uses_ticked_wakes,
            "vectorised_energy": self.uses_vectorised_energy,
            "incremental_metrics": self.uses_incremental_metrics,
            "maintains_view": self.maintains_view,
            "planned_injections": self.uses_planned_injections,
            "batched_view": self.uses_batched_view,
            "quiescence_skipping": self.uses_quiescence_skipping,
            "quiescent_rounds_elided": self.quiescent_rounds_elided,
        }

    # -- chunked plan management (shared with the block engine) ---------------
    def _next_plan(self, t: int, stop: int) -> "InjectionPlan":
        """The injection plan covering round ``t``, fetching if necessary.

        Replays the cached remainder of an aborted chunk when one covers
        ``t`` — the adversary's leaky-bucket budget for those rounds is
        already consumed, so re-planning would inject the wrong packets.
        Otherwise fetches and validates a fresh plan for ``[t, stop)``
        and caches it for exactly that replay contingency.
        """
        plan = self._plan_state
        if plan is not None and plan.start <= t < plan.stop:
            return plan
        plan = self.adversary.plan_injections(t, stop)
        plan.validate(self.n)
        self._plan_state = plan
        return plan

    # -- main loop ------------------------------------------------------------
    def run(self, rounds: int) -> None:
        """Simulate ``rounds`` further rounds.

        The loop body keeps every per-round quantity in locals and flushes
        aggregate counters (energy totals, outcome counts, rounds
        observed) once at the end — also on exceptions, so partial state
        stays consistent with what the reference loop would have recorded
        up to the failing round.
        """
        controllers = self.controllers
        adversary = self.adversary
        collector = self.collector
        config = self.config
        energy = self.energy
        view = self.view
        period = self._period_awake
        period_len = len(period) if period is not None else 0
        oracle = self._wake_oracle
        oracle_tick = oracle.tick if oracle is not None else None
        oracle_awake = oracle.awake_stations if oracle is not None else None
        incremental = self._incremental_metrics
        heard_only_polls = self._heard_only_polls
        observe_view = self._observe_view
        scheduled_view = self._scheduled_view
        observe_scheduled = view.observe_scheduled if scheduled_view else None
        planned = self._planned_injections
        chunk = config.plan_chunk
        # An unbound adversary has no factory; the first plan_injections
        # call raises the same RuntimeError inject() would, before this
        # None could be used.
        factory_make = (
            adversary.factory.make
            if planned and adversary.factory is not None
            else None
        )
        checked_messages = (
            config.check_plain_packet or config.max_control_bits is not None
        )
        queue_sizes = self._queue_sizes
        total_queue = self._total_queue
        n = self.n
        act = self._act
        give_feedback = self._feedback
        poll = self._poll
        inject_into = self._inject_into
        record_injection = collector.record_injection
        inject = adversary.inject
        silence_capable = self._silence_capable
        advance_silent = (
            [ctrl.advance_silent_span for ctrl in controllers]
            if silence_capable
            else ()
        )
        record_queue_span = collector.record_queue_span
        observe_span = energy.observe_span
        pool = self._feedback_pool
        pool_heard = pool.heard
        silence_feedback = pool.silence()
        collision_feedback = pool.collision()
        # Collector/monitor internals, appended to directly in the loop;
        # their aggregate counters are reconciled in the finally block.
        energy_per_round = energy.per_round
        total_queue_series = collector.total_queue_series
        energy_series = collector.energy_series
        per_station_max = collector.per_station_max_queue
        cap = energy.cap
        enforce_cap = energy.enforce
        silence = ChannelOutcome.SILENCE
        heard_outcome = ChannelOutcome.HEARD
        collision = ChannelOutcome.COLLISION
        n_silence = n_heard = n_collision = 0
        rounds_done = 0
        # Per-call energy accumulators, folded into the monitor once in
        # the ``finally`` — recomputing sum/max over the monitor's whole
        # history per call would be quadratic across many resumed runs
        # (e.g. as the block engine's per-block fallback).
        run_station_rounds = 0
        run_peak_awake = 0
        # Vectorised energy bookkeeping (schedule fast path, cap-safe):
        # the whole run's awake counts are materialised once from the
        # per-period numpy series and flushed in the finally block.
        # ``energized`` mirrors the reference loop's accounting point
        # (step 2): the round that raises after it still has its count
        # recorded in the energy monitor, but not in the collector.
        counts_list: list[int] | None = None
        energized = 0
        if period is not None and self._period_counts is not None and rounds > 0:
            start = self.round_no
            counts_list = self._period_counts[
                np.arange(start, start + rounds, dtype=np.int64) % period_len
            ].tolist()

        # Chunked machinery: injection plans are fetched (and the
        # schedule-backed view's history ring refreshed) every ``chunk``
        # rounds.  ``next_chunk`` is the first round of the next chunk;
        # it starts at the current round so the first loop iteration pulls
        # a plan through _next_plan — which transparently replays the
        # cached remainder of a chunk an earlier run() aborted inside.
        end = self.round_no + rounds
        next_chunk = self.round_no
        no_injections: tuple = ()
        plan: "InjectionPlan | None" = None
        plan_offsets: list[int] = []
        plan_sources: list[int] = []
        plan_destinations: list[int] = []
        plan_base = 0

        try:
            t = self.round_no
            while t < end:
                # 1. Adversarial injections (stations receive packets even
                #    when off).  Planning adversaries are consumed as
                #    chunked array slices; everyone else through the
                #    per-round inject() fallback.
                if planned:
                    if t == next_chunk:
                        plan = self._next_plan(t, min(t + chunk, end))
                        plan_offsets = plan.offsets
                        plan_sources = plan.sources
                        plan_destinations = plan.destinations
                        plan_base = plan.start
                        next_chunk = plan.stop
                    if silence_capable and total_queue == 0:
                        # -- quiescent-span fast path: with every queue
                        # empty and the silence invariant declared, all
                        # rounds up to the chunk's next injection are
                        # silent and state-predictable — elide them in
                        # one step instead of looping.
                        plan_nonzero = plan.injection_rounds()
                        pos = bisect_left(plan_nonzero, t)
                        next_injection = (
                            plan_nonzero[pos]
                            if pos < len(plan_nonzero)
                            else next_chunk
                        )
                        span_end = next_injection if next_injection < end else end
                        span_counts: np.ndarray | None = None
                        if span_end > t:
                            if counts_list is not None:
                                # Static tier: per-round counts flush from
                                # the precomputed (cap-safe) series in the
                                # finally block.
                                eligible = True
                            else:
                                span_counts = oracle.quiescent_awake_counts(
                                    t, span_end
                                )
                                eligible = span_counts is not None and (
                                    cap is None or int(span_counts.max()) <= cap
                                )
                                if not eligible:
                                    # Sticky rejection: the counts are a
                                    # pure function of the round window,
                                    # so re-probing every quiescent round
                                    # would rebuild O(span) arrays without
                                    # ever succeeding.
                                    silence_capable = False
                                    self._silence_capable = False
                            if eligible:
                                span = span_end - t
                                for advance in advance_silent:
                                    advance(t, span_end)
                                if counts_list is not None:
                                    energized += span
                                else:
                                    oracle.advance_span(t, span_end)
                                    span_ints = span_counts.tolist()
                                    observe_span(span_ints)
                                    energy_series.extend(span_ints)
                                record_queue_span(total_queue, span)
                                n_silence += span
                                rounds_done += span
                                self.quiescent_rounds_elided += span
                                t = span_end
                                continue
                    rel = t - plan_base
                    lo = plan_offsets[rel]
                    hi = plan_offsets[rel + 1]
                    if lo == hi:
                        injections = no_injections
                    else:
                        injections = []
                        for j in range(lo, hi):
                            station = plan_sources[j]
                            packet = factory_make(
                                destination=plan_destinations[j],
                                injected_at=t,
                                origin=station,
                            )
                            inject_into[station](t, packet)
                            record_injection(packet, t)
                            injections.append((station, packet))
                else:
                    if observe_view:
                        view.round_no = t
                        if scheduled_view and t == next_chunk:
                            view.flush_window()
                            next_chunk = t + chunk
                    injections = inject(t, view)
                    for station, packet in injections:
                        if not 0 <= station < n:
                            raise ValueError(
                                f"adversary injected into unknown station {station}"
                            )
                        if not 0 <= packet.destination < n:
                            raise ValueError(
                                "adversary created packet with unknown destination "
                                f"{packet.destination}"
                            )
                        inject_into[station](t, packet)
                        record_injection(packet, t)

                # 2. On/off decisions and energy accounting.
                if period is not None:
                    awake = period[t % period_len]
                    if counts_list is not None:
                        energized += 1
                    else:
                        awake_count = len(awake)
                        energy_per_round.append(awake_count)
                        run_station_rounds += awake_count
                        if awake_count > run_peak_awake:
                            run_peak_awake = awake_count
                        if cap is not None and awake_count > cap:
                            energy.violations += 1
                            if enforce_cap:
                                raise EnergyCapViolation(t, awake_count, cap)
                else:
                    if oracle_tick is not None:
                        oracle_tick(t)
                        awake = oracle_awake(t)
                    else:
                        awake = tuple(
                            i for i, ctrl in enumerate(controllers) if ctrl.wakes(t)
                        )
                    awake_count = len(awake)
                    energy_per_round.append(awake_count)
                    run_station_rounds += awake_count
                    if awake_count > run_peak_awake:
                        run_peak_awake = awake_count
                    if cap is not None and awake_count > cap:
                        energy.violations += 1
                        if enforce_cap:
                            raise EnergyCapViolation(t, awake_count, cap)

                # 3. Awake stations act, 4. channel arbitration (fused).
                transmissions = 0
                heard: Message | None = None
                for i in awake:
                    message = act[i](t)
                    if message is None:
                        continue
                    if message.sender != i:
                        raise ValueError(
                            f"station {i} transmitted a message claiming sender "
                            f"{message.sender}"
                        )
                    if checked_messages:
                        check_message(config, i, message)
                    transmissions += 1
                    heard = message if transmissions == 1 else None
                if transmissions == 0:
                    outcome = silence
                    n_silence += 1
                elif transmissions == 1:
                    outcome = heard_outcome
                    n_heard += 1
                else:
                    outcome = collision
                    n_collision += 1

                # 5. Delivery bookkeeping.
                delivered = False
                if (
                    heard is not None
                    and heard.packet is not None
                    and heard.packet.destination in awake
                ):
                    delivered = True
                    collector.record_delivery(
                        heard.packet, heard.packet.destination, t
                    )

                # 6. Feedback to awake stations (pooled: silence/collision
                #    rounds share interned singletons, heard rounds recycle
                #    one instance).
                if outcome is heard_outcome:
                    feedback = pool_heard(t, heard, delivered)
                elif outcome is silence:
                    feedback = silence_feedback
                else:
                    feedback = collision_feedback
                for i in awake:
                    give_feedback[i](t, feedback)
                # Drop the loop's reference so the pool sees itself as the
                # sole owner next round and can recycle the instance.
                feedback = None

                # 7. Metrics: queue sizes after the round.
                if incremental:
                    for station, _ in injections:
                        if station not in awake:
                            size = poll[station]()
                            if size != queue_sizes[station]:
                                total_queue += size - queue_sizes[station]
                                queue_sizes[station] = size
                                if size > per_station_max[station]:
                                    per_station_max[station] = size
                    if outcome is heard_outcome or not heard_only_polls:
                        for i in awake:
                            size = poll[i]()
                            if size != queue_sizes[i]:
                                total_queue += size - queue_sizes[i]
                                queue_sizes[i] = size
                                if size > per_station_max[i]:
                                    per_station_max[i] = size
                    elif injections:
                        # Heard-only capability: silent/collision rounds can
                        # still grow awake queues via injections.
                        for station, _ in injections:
                            if station in awake:
                                size = poll[station]()
                                if size != queue_sizes[station]:
                                    total_queue += size - queue_sizes[station]
                                    queue_sizes[station] = size
                                    if size > per_station_max[station]:
                                        per_station_max[station] = size
                    total_queue_series.append(total_queue)
                    if counts_list is None:
                        energy_series.append(awake_count)
                else:
                    queue_sizes = [p() for p in poll]
                    total_queue = sum(queue_sizes)
                    collector.begin_stations(n)
                    per_station_max = collector.per_station_max_queue
                    for i, size in enumerate(queue_sizes):
                        if size > per_station_max[i]:
                            per_station_max[i] = size
                    total_queue_series.append(total_queue)
                    if counts_list is None:
                        energy_series.append(awake_count)
                rounds_done += 1

                # 8. Adversary view update (skipped for oblivious
                #    adversaries; O(1) on the schedule-backed path, where
                #    awake-derived state comes from the period series and
                #    the live size list is aliased rather than copied).
                if observe_view:
                    if scheduled_view:
                        observe_scheduled(
                            outcome, queue_sizes, collector.delivered_count
                        )
                    else:
                        view.observe_round(
                            awake, outcome, list(queue_sizes), collector.delivered_count
                        )
                t += 1
        finally:
            # Reconcile the aggregate counters with the rounds actually
            # completed (exceptions included).
            self.round_no += rounds_done
            self._queue_sizes = queue_sizes
            self._total_queue = total_queue
            if (
                planned
                and self._plan_state is not None
                and self.round_no >= self._plan_state.stop
            ):
                # The cached plan is fully consumed; only aborted runs
                # leave a remainder for the next run() to replay.
                self._plan_state = None
            if scheduled_view:
                # Bring the lazily maintained history ring current so
                # post-run inspection sees the same window the
                # incremental path would have left behind.
                view.flush_window()
            if counts_list is not None:
                # Flush the precomputed awake-count series: the energy
                # monitor up to the last round that reached step 2, the
                # collector only up to the last completed round — exactly
                # what the per-round appends would have recorded.
                flushed = counts_list[:energized]
                energy_per_round.extend(flushed)
                run_station_rounds += sum(flushed)
                if flushed:
                    peak = max(flushed)
                    if peak > run_peak_awake:
                        run_peak_awake = peak
                collector.record_energy_series(counts_list[:rounds_done])
            collector.rounds_observed += rounds_done
            counts = collector.outcome_counts
            for outcome, count in (
                (silence, n_silence),
                (heard_outcome, n_heard),
                (collision, n_collision),
            ):
                if count:
                    counts[outcome] = counts.get(outcome, 0) + count
            # The quiescent-span path folds its counts in through
            # EnergyMonitor.observe_span; this covers the per-round
            # appends and the static-tier flush.
            energy.total_station_rounds += run_station_rounds
            if run_peak_awake > energy.max_awake:
                energy.max_awake = run_peak_awake
