"""Adversary interface.

An adversary decides, at the start of every round, which packets to inject
and into which stations, subject to its leaky-bucket type ``(rho, beta)``.
Concrete adversaries implement :meth:`Adversary.demand`, returning the
*(station, destination)* pairs they would like to inject this round; the
base class clips the demand to the leaky-bucket budget, materialises
packets through the bound :class:`~repro.channel.packet.PacketFactory` and
keeps the online constraint tracker consistent, so that no concrete
adversary can accidentally exceed its own type.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from .._accel import injection_round_indices
from ..channel.engine import AdversaryView
from ..channel.packet import Packet, PacketFactory
from .leaky_bucket import AdversaryType, LeakyBucketConstraint

__all__ = [
    "Adversary",
    "DEFAULT_OBSERVATION_WINDOW",
    "InjectionDemand",
    "InjectionPlan",
    "ObliviousAdversary",
    "ObservationProfile",
]

# A demand is a (source station, destination station) pair.
InjectionDemand = tuple[int, int]

#: History window granted to adversaries that do not declare a profile of
#: their own.  Large enough for any bounded-lookback heuristic, small
#: enough that week-long runs stay at O(window) memory.
DEFAULT_OBSERVATION_WINDOW = 1024


@dataclass(frozen=True, slots=True)
class ObservationProfile:
    """How much of the execution history an adversary actually observes.

    The engine negotiates the cheapest correct :class:`AdversaryView` from
    this declaration: an *oblivious* adversary (window 0) gets a view that
    is never updated, a *windowed* adversary a bounded ring buffer of the
    last ``window`` rounds, and a *full-history* adversary (window None)
    the unbounded record the worst-case model permits.  Per-station
    on-round counts (:meth:`AdversaryView.station_on_rounds`) are
    maintained incrementally from round 0 whenever the view is updated at
    all, so a bounded window never changes their values.
    """

    #: Number of completed rounds visible in the view's histories;
    #: ``0`` means the adversary never reads the view, ``None`` means the
    #: full unbounded history is required.
    window: int | None = None

    def __post_init__(self) -> None:
        if self.window is not None and self.window < 0:
            raise ValueError("observation window must be >= 0 (or None)")

    @property
    def is_oblivious(self) -> bool:
        """True when the adversary never reads the execution history."""
        return self.window == 0

    @classmethod
    def oblivious(cls) -> "ObservationProfile":
        """The adversary ignores the view entirely (fixed injection pattern)."""
        return cls(window=0)

    @classmethod
    def windowed(cls, window: int) -> "ObservationProfile":
        """The adversary reads at most the last ``window`` completed rounds."""
        if window < 1:
            raise ValueError("a windowed profile needs window >= 1")
        return cls(window=window)

    @classmethod
    def full(cls) -> "ObservationProfile":
        """The adversary may read the entire execution history."""
        return cls(window=None)


@dataclass(slots=True)
class InjectionPlan:
    """Materialised injections for the half-open round window ``[start, stop)``.

    ``offsets`` has ``stop - start + 1`` entries; the injections of round
    ``start + r`` are the ``(sources[j], destinations[j])`` pairs for
    ``offsets[r] <= j < offsets[r + 1]``, in the exact order the
    per-round :meth:`Adversary.inject` path would have produced them.
    Sources and destinations are plain int lists (vectorised planners
    build them in numpy and convert once), so the consuming engine can
    slice them without per-packet numpy scalar boxing.
    """

    start: int
    stop: int
    offsets: list[int]
    sources: list[int]
    destinations: list[int]
    # Lazily-built structured views, cached because a plan is consumed by
    # several engine passes (injection slicing, quiescent-span probes) and
    # may be replayed across run() calls.  Excluded from repr/compare: two
    # plans with the same rounds and pairs are the same plan.
    _arrays: "tuple[np.ndarray, np.ndarray, np.ndarray] | None" = field(
        default=None, repr=False, compare=False
    )
    _injection_rounds: "list[int] | None" = field(
        default=None, repr=False, compare=False
    )
    # Structural fingerprint captured when the first cached view is
    # built.  The caches are derived from the mutable list fields, so a
    # plan that is mutated or re-chunked after its first export would
    # silently serve stale CSR arrays; every cached read re-checks the
    # O(1) fingerprint and raises instead.
    _seal: "tuple | None" = field(default=None, repr=False, compare=False)

    def __len__(self) -> int:
        return len(self.sources)

    def _fingerprint(self) -> tuple:
        return (
            self.start,
            self.stop,
            len(self.offsets),
            len(self.sources),
            len(self.destinations),
            self.offsets[-1] if self.offsets else None,
        )

    def _check_seal(self) -> None:
        if self._seal is None:
            self._seal = self._fingerprint()
        elif self._seal != self._fingerprint():
            raise RuntimeError(
                "InjectionPlan was mutated after its first array export; "
                "the cached CSR views would be stale.  Build a new plan "
                "instead of re-chunking one that engines already consumed."
            )

    def as_arrays(self) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
        """The plan as structured arrays ``(offsets, sources, destinations)``.

        CSR layout: the injections of round ``start + r`` are rows
        ``offsets[r]:offsets[r + 1]`` of the flat source/destination
        arrays.  Built once and cached; all three are int64 so engine
        code can index and compare them without dtype surprises.  The
        plan is structurally sealed by the first export: mutating its
        window or pair lists afterwards makes this raise ``RuntimeError``
        rather than serve stale arrays.
        """
        self._check_seal()
        if self._arrays is None:
            self._arrays = (
                np.asarray(self.offsets, dtype=np.int64),
                np.asarray(self.sources, dtype=np.int64),
                np.asarray(self.destinations, dtype=np.int64),
            )
        return self._arrays

    def injection_rounds(self) -> list[int]:
        """Ascending absolute round numbers that carry >= 1 injection.

        This is the index the kernel and block engines binary-search when
        probing how far a quiescent span extends.  Cached after the first
        call; like :meth:`as_arrays` it raises if the plan was mutated
        after the cache was built.
        """
        self._check_seal()
        if self._injection_rounds is None:
            offsets = self.as_arrays()[0]
            self._injection_rounds = (
                injection_round_indices(offsets) + self.start
            ).tolist()
        return self._injection_rounds

    @classmethod
    def from_counts(
        cls,
        start: int,
        stop: int,
        counts: Sequence[int],
        sources: Sequence[int],
        destinations: Sequence[int],
    ) -> "InjectionPlan":
        """Assemble a plan from per-round counts plus flat pair arrays."""
        offsets = [0] * (len(counts) + 1)
        acc = 0
        for r, count in enumerate(counts):
            acc += count
            offsets[r + 1] = acc
        return cls(start, stop, offsets, list(sources), list(destinations))

    def pairs_for(self, round_no: int) -> list[InjectionDemand]:
        """The (source, destination) pairs planned for ``round_no``."""
        rel = round_no - self.start
        if not 0 <= rel < self.stop - self.start:
            raise IndexError(f"round {round_no} outside plan window")
        lo, hi = self.offsets[rel], self.offsets[rel + 1]
        return list(zip(self.sources[lo:hi], self.destinations[lo:hi]))

    def validate(self, n: int) -> None:
        """Structural and range checks (the engine's per-chunk guard)."""
        if self.stop < self.start:
            raise ValueError("plan window is reversed")
        if len(self.offsets) != self.stop - self.start + 1:
            raise ValueError("plan offsets do not cover the round window")
        if (
            self.offsets[0] != 0
            or self.offsets[-1] != len(self.sources)
            or len(self.sources) != len(self.destinations)
        ):
            raise ValueError("plan offsets disagree with the pair arrays")
        if any(a > b for a, b in zip(self.offsets, self.offsets[1:])):
            raise ValueError("plan offsets must be non-decreasing")
        if self.sources:
            if min(self.sources) < 0 or max(self.sources) >= n:
                raise ValueError(f"plan injects into stations outside [0, {n})")
            if min(self.destinations) < 0 or max(self.destinations) >= n:
                raise ValueError(f"plan addresses stations outside [0, {n})")
            if any(s == d for s, d in zip(self.sources, self.destinations)):
                raise ValueError(
                    "a packet's destination must differ from its source"
                )


class Adversary(abc.ABC):
    """Base class of all packet-injection adversaries.

    Parameters
    ----------
    rho, beta:
        The leaky-bucket type of the adversary.
    """

    #: Capability flag read by the kernel engine: when True, the adversary
    #: implements :meth:`plan_injections` and its injections for a whole
    #: chunk of rounds can be materialised up front — the kernel then
    #: consumes injections as array slices instead of calling
    #: :meth:`inject` once per round.  Only meaningful for adversaries
    #: whose demands never read the execution view (the per-round
    #: :meth:`inject` stays the universal fallback and the reference-loop
    #: path).
    plans_injections: bool = False

    def __init__(self, rho: float, beta: float) -> None:
        self.adversary_type = AdversaryType(rho=rho, beta=beta)
        self.constraint = LeakyBucketConstraint(self.adversary_type)
        self.n: int | None = None
        self.factory: PacketFactory | None = None

    # -- wiring ------------------------------------------------------------
    def bind(self, n: int, factory: PacketFactory | None = None) -> "Adversary":
        """Attach the adversary to a system of ``n`` stations."""
        if n < 2:
            raise ValueError("the routing problem needs at least 2 stations")
        self.n = n
        self.factory = factory or PacketFactory()
        self.on_bind(n)
        return self

    def on_bind(self, n: int) -> None:
        """Hook for subclasses that need to precompute per-``n`` state."""

    # -- capability declaration ---------------------------------------------
    def observation_profile(self) -> ObservationProfile:
        """Declare how much execution history this adversary observes.

        The engines size the :class:`~repro.channel.engine.AdversaryView`
        from this declaration.  The conservative default grants a bounded
        window of :data:`DEFAULT_OBSERVATION_WINDOW` rounds; subclasses
        that never read the view should return
        :meth:`ObservationProfile.oblivious` (the kernel then skips view
        maintenance entirely), and subclasses that genuinely need the
        unbounded history must return :meth:`ObservationProfile.full` (or
        the run must set ``EngineConfig(full_history=True)``).
        """
        return ObservationProfile.windowed(DEFAULT_OBSERVATION_WINDOW)

    @property
    def rho(self) -> float:
        return self.adversary_type.rho

    @property
    def beta(self) -> float:
        return self.adversary_type.beta

    # -- per-round injection ------------------------------------------------
    def inject(self, round_no: int, view: AdversaryView) -> list[tuple[int, Packet]]:
        """Return the (station, packet) injections for ``round_no``.

        The number of injections is the minimum of the subclass's demand
        and the current leaky-bucket budget.
        """
        if self.n is None or self.factory is None:
            raise RuntimeError("adversary.bind(n) must be called before inject()")
        budget = self.constraint.budget()
        demanded = self.demand(round_no, budget, view)
        if not demanded:
            # Most rounds of a low-rate run inject nothing; still advance
            # the constraint tracker so the budget refills.
            self.constraint.consume(0)
            return []
        demands = list(demanded)
        if len(demands) > budget:
            demands = demands[:budget]
        injections: list[tuple[int, Packet]] = []
        for source, destination in demands:
            self._validate_pair(source, destination)
            packet = self.factory.make(
                destination=destination, injected_at=round_no, origin=source
            )
            injections.append((source, packet))
        self.constraint.consume(len(injections))
        return injections

    @abc.abstractmethod
    def demand(
        self, round_no: int, budget: int, view: AdversaryView
    ) -> Sequence[InjectionDemand]:
        """Return up to ``budget`` (source, destination) pairs for this round."""

    # -- batched injection planning ------------------------------------------
    def plan_injections(self, start: int, stop: int) -> InjectionPlan:
        """Materialise the injections of rounds ``[start, stop)`` in one call.

        Only adversaries declaring :attr:`plans_injections` implement
        this; the plan must be packet-for-packet identical to calling
        :meth:`inject` for each round of the window (same pairs, same
        per-round order, same leaky-bucket state afterwards), so chunks
        may alternate freely with per-round injection.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not plan injections "
            "(plans_injections is False)"
        )

    # -- helpers -------------------------------------------------------------
    def _validate_pair(self, source: int, destination: int) -> None:
        assert self.n is not None
        if not 0 <= source < self.n:
            raise ValueError(f"source station {source} out of range for n={self.n}")
        if not 0 <= destination < self.n:
            raise ValueError(
                f"destination station {destination} out of range for n={self.n}"
            )
        if source == destination:
            raise ValueError("a packet's destination must differ from its source")

    def describe(self) -> str:
        """Human-readable description used in reports."""
        return f"{type(self).__name__}{self.adversary_type}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return self.describe()


class ObliviousAdversary(Adversary):
    """Base class of adversaries whose demands never read the view.

    Subclasses decide their injections from ``(round_no, budget)`` and
    internal state alone; declaring that lets the kernel engine skip all
    :class:`~repro.channel.engine.AdversaryView` maintenance — and makes
    the injections *plannable*: because demands cannot depend on the
    execution, whole chunks of rounds can be materialised up front.
    :meth:`plan_injections` therefore works for every oblivious subclass
    out of the box (the generic :meth:`_plan_chunk` replays ``demand``
    round by round with batched bookkeeping, preserving RNG draw order
    for the seeded stochastic families); the hot deterministic families
    override :meth:`_plan_chunk` with fully vectorised pair generation.
    """

    plans_injections = True

    def __init__(self, rho: float, beta: float) -> None:
        super().__init__(rho, beta)
        self._plan_view: AdversaryView | None = None

    def plan_injections(self, start: int, stop: int) -> InjectionPlan:
        if self.n is None or self.factory is None:
            raise RuntimeError(
                "adversary.bind(n) must be called before plan_injections()"
            )
        if stop < start:
            raise ValueError("plan window is reversed")
        counts, sources, destinations = self._plan_chunk(start, stop)
        return InjectionPlan.from_counts(start, stop, counts, sources, destinations)

    def _plan_chunk(
        self, start: int, stop: int
    ) -> tuple[list[int], list[int], list[int]]:
        """Default planner: replay ``demand`` round by round.

        Correct for *any* oblivious subclass — the calls, their order and
        the leaky-bucket bookkeeping are exactly those of per-round
        :meth:`inject` (minus packet materialisation, which the consuming
        engine performs in the same order), so even RNG-backed demands
        produce identical draws.  The view handed to ``demand`` is a
        never-updated window-0 view, which is precisely what an oblivious
        adversary sees from the kernel engine.
        """
        assert self.n is not None
        view = self._plan_view
        if view is None or view.n != self.n:
            view = self._plan_view = AdversaryView(n=self.n, window=0)
        constraint = self.constraint
        counts: list[int] = []
        sources: list[int] = []
        destinations: list[int] = []
        for t in range(start, stop):
            budget = constraint.budget()
            demanded = self.demand(t, budget, view)
            if not demanded:
                constraint.consume(0)
                counts.append(0)
                continue
            demands = list(demanded)
            if len(demands) > budget:
                demands = demands[:budget]
            for source, destination in demands:
                self._validate_pair(source, destination)
                sources.append(source)
                destinations.append(destination)
            counts.append(len(demands))
            constraint.consume(len(demands))
        return counts, sources, destinations

    def observation_profile(self) -> ObservationProfile:
        return ObservationProfile.oblivious()
