"""Adversary interface.

An adversary decides, at the start of every round, which packets to inject
and into which stations, subject to its leaky-bucket type ``(rho, beta)``.
Concrete adversaries implement :meth:`Adversary.demand`, returning the
*(station, destination)* pairs they would like to inject this round; the
base class clips the demand to the leaky-bucket budget, materialises
packets through the bound :class:`~repro.channel.packet.PacketFactory` and
keeps the online constraint tracker consistent, so that no concrete
adversary can accidentally exceed its own type.
"""

from __future__ import annotations

import abc
from typing import Sequence

from ..channel.engine import AdversaryView
from ..channel.packet import Packet, PacketFactory
from .leaky_bucket import AdversaryType, LeakyBucketConstraint

__all__ = ["Adversary", "InjectionDemand"]

# A demand is a (source station, destination station) pair.
InjectionDemand = tuple[int, int]


class Adversary(abc.ABC):
    """Base class of all packet-injection adversaries.

    Parameters
    ----------
    rho, beta:
        The leaky-bucket type of the adversary.
    """

    def __init__(self, rho: float, beta: float) -> None:
        self.adversary_type = AdversaryType(rho=rho, beta=beta)
        self.constraint = LeakyBucketConstraint(self.adversary_type)
        self.n: int | None = None
        self.factory: PacketFactory | None = None

    # -- wiring ------------------------------------------------------------
    def bind(self, n: int, factory: PacketFactory | None = None) -> "Adversary":
        """Attach the adversary to a system of ``n`` stations."""
        if n < 2:
            raise ValueError("the routing problem needs at least 2 stations")
        self.n = n
        self.factory = factory or PacketFactory()
        self.on_bind(n)
        return self

    def on_bind(self, n: int) -> None:
        """Hook for subclasses that need to precompute per-``n`` state."""

    @property
    def rho(self) -> float:
        return self.adversary_type.rho

    @property
    def beta(self) -> float:
        return self.adversary_type.beta

    # -- per-round injection ------------------------------------------------
    def inject(self, round_no: int, view: AdversaryView) -> list[tuple[int, Packet]]:
        """Return the (station, packet) injections for ``round_no``.

        The number of injections is the minimum of the subclass's demand
        and the current leaky-bucket budget.
        """
        if self.n is None or self.factory is None:
            raise RuntimeError("adversary.bind(n) must be called before inject()")
        budget = self.constraint.budget()
        demands = list(self.demand(round_no, budget, view))
        if len(demands) > budget:
            demands = demands[:budget]
        injections: list[tuple[int, Packet]] = []
        for source, destination in demands:
            self._validate_pair(source, destination)
            packet = self.factory.make(
                destination=destination, injected_at=round_no, origin=source
            )
            injections.append((source, packet))
        self.constraint.consume(len(injections))
        return injections

    @abc.abstractmethod
    def demand(
        self, round_no: int, budget: int, view: AdversaryView
    ) -> Sequence[InjectionDemand]:
        """Return up to ``budget`` (source, destination) pairs for this round."""

    # -- helpers -------------------------------------------------------------
    def _validate_pair(self, source: int, destination: int) -> None:
        assert self.n is not None
        if not 0 <= source < self.n:
            raise ValueError(f"source station {source} out of range for n={self.n}")
        if not 0 <= destination < self.n:
            raise ValueError(
                f"destination station {destination} out of range for n={self.n}"
            )
        if source == destination:
            raise ValueError("a packet's destination must differ from its source")

    def describe(self) -> str:
        """Human-readable description used in reports."""
        return f"{type(self).__name__}{self.adversary_type}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return self.describe()
