"""Deterministic adversarial injection patterns.

These are the fixed (non-adaptive) traffic generators used throughout the
experiments.  Each pattern injects as many packets per round as its
leaky-bucket budget allows (unless documented otherwise), choosing sources
and destinations according to a simple deterministic rule.  Worst-case
metrics reported by the harness are maxima over a *family* of such
patterns plus the adaptive adversaries of :mod:`repro.adversary.adaptive`.

All patterns are :class:`~repro.adversary.base.ObliviousAdversary`
subclasses: their demands never read the execution view, so the kernel
engine runs them without maintaining any adversary-visible history.
Each family also overrides :meth:`~ObliviousAdversary._plan_chunk` with a
fully vectorised planner: per-round budgets are materialised in one
:meth:`~repro.adversary.leaky_bucket.LeakyBucketConstraint.consume_run`
sweep and the (source, destination) streams are generated as numpy index
arithmetic, so the kernel engine consumes whole chunks of injections as
array slices (property-tested packet-for-packet identical to the
per-round ``demand`` path).
"""

from __future__ import annotations

import itertools
from typing import Sequence

import numpy as np

from ..channel.engine import AdversaryView
from .base import InjectionDemand, ObliviousAdversary


def _cycle_skipping(
    n: int, skip: int, cursor: int, total: int
) -> tuple[np.ndarray, int]:
    """``total`` values of the mod-``n`` counter stream that skips ``skip``.

    Vectorises the common demand idiom ``dest = cursor; cursor += 1;
    if dest == skip: dest = cursor; cursor += 1``: the emitted stream is
    the ascending cyclic order over ``[0, n) - {skip}`` and, after any
    emission, the counter sits one past the emitted value.  Returns the
    emitted values and the post-run counter (mod ``n``).
    """
    order = np.array([d for d in range(n) if d != skip], dtype=np.int64)
    cursor %= n
    first = (cursor + 1) % n if cursor == skip else cursor
    idx0 = int(np.nonzero(order == first)[0][0])
    emitted = order[(idx0 + np.arange(total, dtype=np.int64)) % (n - 1)]
    return emitted, (int(emitted[-1]) + 1) % n if total else cursor

__all__ = [
    "SingleTargetAdversary",
    "SingleSourceSprayAdversary",
    "RoundRobinAdversary",
    "AlternatingPairAdversary",
    "SaturatingAdversary",
    "BurstThenIdleAdversary",
    "GroupLocalAdversary",
    "NoInjectionAdversary",
]


class NoInjectionAdversary(ObliviousAdversary):
    """Injects nothing; useful to test quiescent behaviour of algorithms."""

    def __init__(self) -> None:
        super().__init__(rho=1.0, beta=0.0)

    def demand(
        self, round_no: int, budget: int, view: AdversaryView
    ) -> Sequence[InjectionDemand]:
        return []

    def _plan_chunk(self, start, stop):
        rounds = stop - start
        counts = self.constraint.consume_run(rounds, active=bytes(rounds))
        return counts, [], []


class SingleTargetAdversary(ObliviousAdversary):
    """All packets are injected into one station, destined to one other.

    This is the canonical worst case for direct and oblivious algorithms:
    every packet must cross the single (source, destination) link.
    """

    def __init__(self, rho: float, beta: float, source: int = 0, destination: int = 1) -> None:
        super().__init__(rho, beta)
        if source == destination:
            raise ValueError("source and destination must differ")
        self.source = source
        self.destination = destination

    def on_bind(self, n: int) -> None:
        if self.source >= n or self.destination >= n:
            raise ValueError("source/destination out of range for this system size")

    def demand(
        self, round_no: int, budget: int, view: AdversaryView
    ) -> Sequence[InjectionDemand]:
        return [(self.source, self.destination)] * budget

    def _plan_chunk(self, start, stop):
        counts = self.constraint.consume_run(stop - start)
        total = sum(counts)
        return counts, [self.source] * total, [self.destination] * total


class SingleSourceSprayAdversary(ObliviousAdversary):
    """One overloaded source station, destinations cycling over all others.

    Stresses algorithms whose schedules give every station the same share
    of transmission opportunities (the source needs far more than 1/n of
    the channel).
    """

    def __init__(self, rho: float, beta: float, source: int = 0) -> None:
        super().__init__(rho, beta)
        self.source = source
        self._next_destination = 0

    def demand(
        self, round_no: int, budget: int, view: AdversaryView
    ) -> Sequence[InjectionDemand]:
        assert self.n is not None
        demands: list[InjectionDemand] = []
        for _ in range(budget):
            dest = self._next_destination
            self._next_destination = (self._next_destination + 1) % self.n
            if dest == self.source:
                dest = self._next_destination
                self._next_destination = (self._next_destination + 1) % self.n
            demands.append((self.source, dest))
        return demands

    def _plan_chunk(self, start, stop):
        assert self.n is not None
        counts = self.constraint.consume_run(stop - start)
        total = sum(counts)
        if not total:
            return counts, [], []
        dests, self._next_destination = _cycle_skipping(
            self.n, self.source, self._next_destination, total
        )
        return counts, [self.source] * total, dests.tolist()


class RoundRobinAdversary(ObliviousAdversary):
    """Sources and destinations both cycle over all stations.

    The most 'balanced' pattern: every station receives roughly the same
    injection load.  Algorithms should handle it comfortably, so it mostly
    serves as a sanity baseline in sweeps.
    """

    def __init__(self, rho: float, beta: float, offset: int = 1) -> None:
        super().__init__(rho, beta)
        if offset == 0:
            raise ValueError("offset 0 would make source equal destination")
        self.offset = offset
        self._cursor = 0

    def demand(
        self, round_no: int, budget: int, view: AdversaryView
    ) -> Sequence[InjectionDemand]:
        assert self.n is not None
        demands: list[InjectionDemand] = []
        for _ in range(budget):
            source = self._cursor % self.n
            destination = (source + self.offset) % self.n
            if destination == source:
                destination = (source + 1) % self.n
            demands.append((source, destination))
            self._cursor += 1
        return demands

    def _plan_chunk(self, start, stop):
        assert self.n is not None
        counts = self.constraint.consume_run(stop - start)
        total = sum(counts)
        if not total:
            return counts, [], []
        n = self.n
        sources = (self._cursor + np.arange(total, dtype=np.int64)) % n
        destinations = (sources + self.offset) % n
        destinations = np.where(
            destinations == sources, (sources + 1) % n, destinations
        )
        self._cursor += total
        return counts, sources.tolist(), destinations.tolist()


class AlternatingPairAdversary(ObliviousAdversary):
    """Packets injected into ``source``, destinations alternating between two stations.

    Mirrors Case I of the proof of Lemma 1 (Theorem 2): one station is
    loaded with traffic addressed alternately to two receivers, which a
    cap-2 system cannot keep up with at rate 1.
    """

    def __init__(
        self,
        rho: float,
        beta: float,
        source: int = 1,
        destination_a: int = 0,
        destination_b: int = 2,
    ) -> None:
        super().__init__(rho, beta)
        if len({source, destination_a, destination_b}) != 3:
            raise ValueError("source and both destinations must be pairwise distinct")
        self.source = source
        self.destination_a = destination_a
        self.destination_b = destination_b
        self._parity = 0

    def on_bind(self, n: int) -> None:
        if max(self.source, self.destination_a, self.destination_b) >= n:
            raise ValueError("stations out of range for this system size")

    def demand(
        self, round_no: int, budget: int, view: AdversaryView
    ) -> Sequence[InjectionDemand]:
        demands: list[InjectionDemand] = []
        for _ in range(budget):
            dest = self.destination_a if self._parity == 0 else self.destination_b
            self._parity ^= 1
            demands.append((self.source, dest))
        return demands

    def _plan_chunk(self, start, stop):
        counts = self.constraint.consume_run(stop - start)
        total = sum(counts)
        if not total:
            return counts, [], []
        parity = (self._parity + np.arange(total, dtype=np.int64)) & 1
        destinations = np.where(
            parity == 0, self.destination_a, self.destination_b
        )
        self._parity = (self._parity + total) & 1
        return counts, [self.source] * total, destinations.tolist()


class SaturatingAdversary(ObliviousAdversary):
    """Injects at full budget every round, cycling sources, fixed stride destinations.

    With ``rho = 1`` this keeps the channel permanently saturated — the
    regime in which only Orchestra (energy cap 3) stays stable.
    """

    def __init__(self, rho: float = 1.0, beta: float = 1.0, stride: int = 1) -> None:
        super().__init__(rho, beta)
        self.stride = stride
        self._cursor = 0

    def demand(
        self, round_no: int, budget: int, view: AdversaryView
    ) -> Sequence[InjectionDemand]:
        assert self.n is not None
        demands: list[InjectionDemand] = []
        for _ in range(budget):
            source = self._cursor % self.n
            destination = (source + self.stride) % self.n
            if destination == source:
                destination = (source + 1) % self.n
            demands.append((source, destination))
            self._cursor += 1
        return demands

    def _plan_chunk(self, start, stop):
        assert self.n is not None
        counts = self.constraint.consume_run(stop - start)
        total = sum(counts)
        if not total:
            return counts, [], []
        n = self.n
        sources = (self._cursor + np.arange(total, dtype=np.int64)) % n
        destinations = (sources + self.stride) % n
        destinations = np.where(
            destinations == sources, (sources + 1) % n, destinations
        )
        self._cursor += total
        return counts, sources.tolist(), destinations.tolist()


class BurstThenIdleAdversary(ObliviousAdversary):
    """Alternates idle stretches with maximal bursts.

    The adversary stays silent for ``idle_rounds`` rounds, letting its
    leaky-bucket budget refill to the burstiness cap, then dumps the whole
    budget at once into a single station.  Exercises the burstiness (beta)
    component of every latency bound.
    """

    def __init__(
        self,
        rho: float,
        beta: float,
        idle_rounds: int = 16,
        source: int = 0,
        destination: int = 1,
    ) -> None:
        super().__init__(rho, beta)
        if idle_rounds < 1:
            raise ValueError("idle_rounds must be positive")
        if source == destination:
            raise ValueError("source and destination must differ")
        self.idle_rounds = idle_rounds
        self.source = source
        self.destination = destination

    def demand(
        self, round_no: int, budget: int, view: AdversaryView
    ) -> Sequence[InjectionDemand]:
        if round_no % (self.idle_rounds + 1) != self.idle_rounds:
            return []
        return [(self.source, self.destination)] * budget

    def _plan_chunk(self, start, stop):
        period = self.idle_rounds + 1
        active = [
            (start + r) % period == self.idle_rounds for r in range(stop - start)
        ]
        counts = self.constraint.consume_run(stop - start, active=active)
        total = sum(counts)
        return counts, [self.source] * total, [self.destination] * total


class GroupLocalAdversary(ObliviousAdversary):
    """All traffic stays inside one contiguous block of ``group_size`` stations.

    The worst case sketched for k-Clique in Theorem 7: the adversary
    injects packets into one pair of half-groups with destinations in the
    same pair, so only a 1/m fraction of the round-robin schedule is
    useful.
    """

    def __init__(
        self, rho: float, beta: float, group_start: int = 0, group_size: int = 2
    ) -> None:
        super().__init__(rho, beta)
        if group_size < 2:
            raise ValueError("group_size must be at least 2")
        self.group_start = group_start
        self.group_size = group_size
        self._pairs: list[InjectionDemand] = []
        self._cursor = 0

    def on_bind(self, n: int) -> None:
        members = [
            (self.group_start + i) % n for i in range(min(self.group_size, n))
        ]
        self._pairs = [
            (a, b) for a, b in itertools.permutations(members, 2)
        ]
        self._pair_sources = np.array([a for a, _ in self._pairs], dtype=np.int64)
        self._pair_destinations = np.array(
            [b for _, b in self._pairs], dtype=np.int64
        )

    def demand(
        self, round_no: int, budget: int, view: AdversaryView
    ) -> Sequence[InjectionDemand]:
        demands: list[InjectionDemand] = []
        for _ in range(budget):
            demands.append(self._pairs[self._cursor % len(self._pairs)])
            self._cursor += 1
        return demands

    def _plan_chunk(self, start, stop):
        counts = self.constraint.consume_run(stop - start)
        total = sum(counts)
        if not total:
            return counts, [], []
        idx = (self._cursor + np.arange(total, dtype=np.int64)) % len(self._pairs)
        self._cursor += total
        return (
            counts,
            self._pair_sources[idx].tolist(),
            self._pair_destinations[idx].tolist(),
        )
