"""Adaptive and schedule-aware lower-bound adversaries.

These adversaries realise the constructions used in the paper's
impossibility proofs:

* **Theorem 2** (no cap-2 algorithm is stable at rate 1): an adaptive
  adversary that keeps injecting a packet per round while steering traffic
  towards stations the algorithm keeps switched off.
* **Theorem 6** (no k-energy-oblivious algorithm is stable for
  ``rho > k/n``): by double counting, some station is switched on in at
  most a ``k/n`` fraction of rounds; the adversary reads the (public,
  fixed-in-advance) oblivious schedule, finds that station and floods it.
* **Theorem 9** (no k-energy-oblivious *direct* algorithm is stable for
  ``rho > k(k-1)/(n(n-1))``): some ordered pair of stations is jointly
  switched on in at most that fraction of rounds; the adversary floods
  that pair.

Energy-oblivious algorithms publish their schedule through the
:class:`ScheduleLike` protocol (see :mod:`repro.core.schedule`), which the
schedule-aware adversaries consume.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Protocol, Sequence, runtime_checkable

from ..channel.engine import AdversaryView
from .base import Adversary, InjectionDemand, ObliviousAdversary, ObservationProfile
from .patterns import _cycle_skipping

__all__ = [
    "ScheduleLike",
    "LeastOnStationAdversary",
    "LeastOnPairAdversary",
    "AdaptiveStarvationAdversary",
]


@runtime_checkable
class ScheduleLike(Protocol):
    """Anything that can answer 'is station i switched on in round t?'."""

    def is_awake(self, station: int, round_no: int) -> bool:  # pragma: no cover
        ...


def _periodic_sets(schedule: ScheduleLike) -> tuple[tuple[int, ...], ...] | None:
    """The schedule's finite period of awake sets, if it publishes one."""
    probe = getattr(schedule, "periodic_awake_sets", None)
    if probe is None:
        return None
    return probe()


@lru_cache(maxsize=32)
def _periodic_on_counts(
    period: tuple[tuple[int, ...], ...], n: int, horizon: int
) -> tuple[int, ...]:
    """On-counts over ``[0, horizon)`` for a periodic schedule, cached.

    Keyed by the period itself (plus ``n`` and ``horizon``), so distinct
    schedule instances built from the same spec — e.g. the per-spec
    algorithm reconstructions of a T1.6/T1.9 fan-out — share one table
    per worker process instead of recomputing an O(horizon * n) sweep
    each time.  The periodic structure also collapses the sweep to one
    pass over the period.
    """
    full, rem = divmod(horizon, len(period))
    counts = [0] * n
    for t, awake in enumerate(period):
        weight = full + (1 if t < rem else 0)
        if weight:
            for i in awake:
                counts[i] += weight
    return tuple(counts)


@lru_cache(maxsize=32)
def _periodic_pair_on_counts(
    period: tuple[tuple[int, ...], ...], n: int, horizon: int
) -> dict[tuple[int, int], int]:
    """Co-awake counts per ordered pair for a periodic schedule, cached.

    The returned dict is shared across callers — treat it as read-only.
    """
    full, rem = divmod(horizon, len(period))
    counts: dict[tuple[int, int], int] = {
        (w, z): 0 for w in range(n) for z in range(n) if w != z
    }
    for t, awake in enumerate(period):
        weight = full + (1 if t < rem else 0)
        if not weight:
            continue
        for w in awake:
            for z in awake:
                if w != z:
                    counts[(w, z)] += weight
    return counts


def _on_counts(schedule: ScheduleLike, n: int, horizon: int) -> Sequence[int]:
    """Per-station number of on-rounds over ``[0, horizon)``."""
    period = _periodic_sets(schedule)
    if period:
        return _periodic_on_counts(period, n, horizon)
    counts = [0] * n
    for t in range(horizon):
        for i in range(n):
            if schedule.is_awake(i, t):
                counts[i] += 1
    return counts


def _pair_on_counts(
    schedule: ScheduleLike, n: int, horizon: int
) -> dict[tuple[int, int], int]:
    """Per ordered pair (w, z), number of rounds both are on over ``[0, horizon)``.

    Periodic schedules hit the shared cache; treat the result as
    read-only.
    """
    period = _periodic_sets(schedule)
    if period:
        return _periodic_pair_on_counts(period, n, horizon)
    counts: dict[tuple[int, int], int] = {
        (w, z): 0 for w in range(n) for z in range(n) if w != z
    }
    for t in range(horizon):
        awake = [i for i in range(n) if schedule.is_awake(i, t)]
        for w in awake:
            for z in awake:
                if w != z:
                    counts[(w, z)] += 1
    return counts


class LeastOnStationAdversary(ObliviousAdversary):
    """Theorem 6 adversary: flood the station the oblivious schedule starves.

    Schedule-aware but view-oblivious: the victim is computed once at bind
    time from the *published* schedule, so no execution history is needed.

    Parameters
    ----------
    schedule:
        The algorithm's published oblivious schedule.
    horizon:
        Number of rounds over which to evaluate the schedule (use the
        planned experiment length, or the schedule's period).
    """

    def __init__(
        self, rho: float, beta: float, schedule: ScheduleLike, horizon: int
    ) -> None:
        super().__init__(rho, beta)
        if horizon < 1:
            raise ValueError("horizon must be positive")
        self.schedule = schedule
        self.horizon = horizon
        self.victim: int | None = None
        self._dest_cursor = 0

    def on_bind(self, n: int) -> None:
        counts = _on_counts(self.schedule, n, self.horizon)
        self.victim = min(range(n), key=lambda i: counts[i])

    def demand(
        self, round_no: int, budget: int, view: AdversaryView
    ) -> Sequence[InjectionDemand]:
        assert self.n is not None and self.victim is not None
        demands: list[InjectionDemand] = []
        for _ in range(budget):
            dest = self._dest_cursor % self.n
            self._dest_cursor += 1
            if dest == self.victim:
                dest = self._dest_cursor % self.n
                self._dest_cursor += 1
            demands.append((self.victim, dest))
        return demands

    def _plan_chunk(self, start, stop):
        assert self.n is not None and self.victim is not None
        counts = self.constraint.consume_run(stop - start)
        total = sum(counts)
        if not total:
            return counts, [], []
        destinations, self._dest_cursor = _cycle_skipping(
            self.n, self.victim, self._dest_cursor, total
        )
        return counts, [self.victim] * total, destinations.tolist()


class LeastOnPairAdversary(ObliviousAdversary):
    """Theorem 9 adversary: flood the ordered pair least often jointly awake.

    All packets are injected into station ``w`` with destination ``z``,
    where ``(w, z)`` minimises the number of rounds in which both are
    switched on under the published oblivious schedule.  Against a
    *direct*-routing algorithm only those co-awake rounds can deliver the
    packets.
    """

    def __init__(
        self, rho: float, beta: float, schedule: ScheduleLike, horizon: int
    ) -> None:
        super().__init__(rho, beta)
        if horizon < 1:
            raise ValueError("horizon must be positive")
        self.schedule = schedule
        self.horizon = horizon
        self.pair: tuple[int, int] | None = None

    def on_bind(self, n: int) -> None:
        counts = _pair_on_counts(self.schedule, n, self.horizon)
        self.pair = min(counts, key=lambda p: counts[p])

    def demand(
        self, round_no: int, budget: int, view: AdversaryView
    ) -> Sequence[InjectionDemand]:
        assert self.pair is not None
        source, destination = self.pair
        return [(source, destination)] * budget

    def _plan_chunk(self, start, stop):
        assert self.pair is not None
        counts = self.constraint.consume_run(stop - start)
        total = sum(counts)
        source, destination = self.pair
        return counts, [source] * total, [destination] * total


class AdaptiveStarvationAdversary(Adversary):
    """Theorem 2 style adaptive adversary for energy-cap-2 systems at rate 1.

    With only two stations awake per round, in every round at least
    ``n - 2`` stations are off.  Following the proof of Lemma 1, the
    adversary keeps one packet per round flowing while addressing traffic
    to the station that has been switched on least often so far (ties
    broken by name): whenever that station is off, packets addressed to it
    cannot possibly be delivered, and whenever the algorithm wakes it up to
    drain them, the adversary switches its attention to the currently most
    starved station.  Sources rotate over the remaining stations so no
    single queue can be drained preferentially.
    """

    def __init__(self, rho: float = 1.0, beta: float = 1.0) -> None:
        super().__init__(rho, beta)
        self._source_cursor = 0

    def observation_profile(self) -> ObservationProfile:
        # Only the per-station on-round *counts* are read; those are
        # maintained incrementally from round 0 whatever the window, so a
        # minimal one-round window suffices.
        return ObservationProfile.windowed(1)

    def _most_starved(self, view: AdversaryView) -> int:
        assert self.n is not None
        return view.least_on_station()

    def demand(
        self, round_no: int, budget: int, view: AdversaryView
    ) -> Sequence[InjectionDemand]:
        assert self.n is not None
        if budget == 0:
            # Computing the most starved station is the expensive part of
            # this adversary; at rate rho most rounds have no budget and
            # the victim choice would be discarded anyway.
            return []
        victim = self._most_starved(view)
        demands: list[InjectionDemand] = []
        for _ in range(budget):
            source = self._source_cursor % self.n
            self._source_cursor += 1
            if source == victim:
                source = self._source_cursor % self.n
                self._source_cursor += 1
            demands.append((source, victim))
        return demands
