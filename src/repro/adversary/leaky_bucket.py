"""Leaky-bucket admissibility constraint for adversarial packet injection.

An adversary of type ``(rho, beta)`` may inject at most ``rho * t + beta``
packets in *every* contiguous interval of ``t`` rounds (Section 2,
"Dynamic packet generation").  :class:`LeakyBucketConstraint` tracks the
exact remaining slack with an O(1)-per-round recurrence:

Let ``A_t`` be the largest number of packets that may still be injected in
round ``t`` without violating the constraint for *any* interval ending at
``t``.  For the interval consisting of round ``t`` alone the budget is
``rho + beta``; intervals that started earlier have their slack reduced by
past injections and increased by ``rho`` per elapsed round.  Hence

    A_1     = rho + beta
    A_{t+1} = min(A_t - x_t + rho,  rho + beta)

where ``x_t`` is the number of packets injected in round ``t``.  The
integer number of packets injectable in round ``t`` is ``floor(A_t)``,
which for ``t = 1`` equals the paper's burstiness ``floor(rho + beta)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = ["LeakyBucketConstraint", "LeakyBucketViolation", "AdversaryType"]


class LeakyBucketViolation(RuntimeError):
    """Raised when an injection pattern exceeds the (rho, beta) envelope."""


@dataclass(frozen=True, slots=True)
class AdversaryType:
    """The ``(rho, beta)`` type of a leaky-bucket adversary.

    ``rho`` is the injection rate (``0 < rho <= 1``) and ``beta >= 0`` is
    the burstiness coefficient.  The paper assumes ``beta >= 1``; we allow
    ``beta = 0`` for degenerate test scenarios.
    """

    rho: float
    beta: float

    def __post_init__(self) -> None:
        if not 0 < self.rho <= 1:
            raise ValueError(f"injection rate rho must be in (0, 1], got {self.rho}")
        if self.beta < 0:
            raise ValueError(f"burstiness coefficient beta must be >= 0, got {self.beta}")

    @property
    def burstiness(self) -> int:
        """Maximum number of packets injectable in a single round.

        Uses the same drift guard as :meth:`LeakyBucketConstraint.budget`
        so that a ``rho + beta`` lying one float ulp below an integer
        rounds consistently in both places (``budget() <= burstiness``
        must hold for every representable type).
        """
        return math.floor(self.rho + self.beta + 1e-9)

    def window_bound(self, t: int) -> float:
        """Upper bound on injections in any interval of ``t`` rounds."""
        if t <= 0:
            return 0.0
        return self.rho * t + self.beta

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"(rho={self.rho}, beta={self.beta})"


@dataclass(slots=True)
class LeakyBucketConstraint:
    """Online tracker of the remaining injection slack of a (rho, beta) type.

    Usage: call :meth:`budget` at the beginning of a round to learn how
    many packets may be injected, then :meth:`consume` with the number
    actually injected (which also advances the round).
    """

    adversary_type: AdversaryType
    _slack: float = field(init=False)
    _cap: float = field(init=False)
    _rho: float = field(init=False)
    _round: int = field(init=False, default=0)
    total_injected: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        # Cached scalars: budget()/consume() run once per simulated round.
        self._rho = self.adversary_type.rho
        self._cap = self.adversary_type.rho + self.adversary_type.beta
        self._slack = self._cap

    @property
    def rho(self) -> float:
        return self.adversary_type.rho

    @property
    def beta(self) -> float:
        return self.adversary_type.beta

    @property
    def round_no(self) -> int:
        """The round the constraint currently expects injections for."""
        return self._round

    def budget(self) -> int:
        """Number of packets that may be injected in the current round."""
        # Guard against floating point drift pushing the slack a hair
        # below an integer it mathematically equals.
        return max(0, math.floor(self._slack + 1e-9))

    def consume(self, count: int) -> None:
        """Register ``count`` injections for the current round and advance.

        Raises
        ------
        LeakyBucketViolation
            If ``count`` exceeds the current budget.
        """
        if count < 0:
            raise ValueError("injection count cannot be negative")
        if count > 0 and count > self.budget():
            raise LeakyBucketViolation(
                f"round {self._round}: injecting {count} packets exceeds the "
                f"budget {self.budget()} of adversary type {self.adversary_type}"
            )
        self.total_injected += count
        slack = self._slack - count + self._rho
        cap = self._cap
        self._slack = slack if slack < cap else cap
        self._round += 1

    def peek_after_skip(self, rounds: int) -> int:
        """Budget available after skipping ``rounds`` rounds without injecting."""
        slack = min(self._slack + rounds * self._rho, self._cap)
        return max(0, math.floor(slack + 1e-9))

    def consume_demands(self, demands) -> list[int]:
        """Clip a per-round demand sequence to the envelope and consume it.

        Equivalent to, for each round, ``budget()`` followed by
        ``consume(min(demand, budget))`` — exactly the clipping the
        per-round ``inject()`` path applies to an over-demanding
        adversary — in one call.  The float recurrence is evaluated in
        the same operation order as :meth:`consume`, so a run clipped
        here is bit-identical to the same demands tracked round by
        round.  This is the batch half of the versioned RNG protocol:
        the stochastic families draw raw per-round demand counts in one
        vectorised sweep and clip them against the bucket here.

        Returns the realised per-round injection counts.
        """
        counts = [0] * len(demands)
        slack = self._slack
        rho = self._rho
        cap = self._cap
        total = 0
        for r, demand in enumerate(demands):
            if demand:
                allowed = math.floor(slack + 1e-9)
                if allowed > 0:
                    take = demand if demand < allowed else allowed
                    counts[r] = take
                    total += take
                    slack = slack - take
            slack = slack + rho
            if slack > cap:
                slack = cap
        self._slack = slack
        self._round += len(demands)
        self.total_injected += total
        return counts

    def consume_run(self, rounds: int, active=None) -> list[int]:
        """Consume the full per-round budget for the next ``rounds`` rounds.

        The batch materialisation behind vectorised
        ``Adversary.plan_injections``: equivalent to ``rounds`` iterations
        of :meth:`budget` followed by :meth:`consume` of that whole budget
        (or of 0 on rounds where ``active[r]`` is falsy), in one call.
        The float recurrence is evaluated in the exact same operation
        order as :meth:`consume`, so a run materialised here is
        bit-identical to the same run tracked round by round.

        Returns the per-round injection counts (length ``rounds``).
        """
        if rounds < 0:
            raise ValueError("rounds cannot be negative")
        counts = [0] * rounds
        slack = self._slack
        rho = self._rho
        cap = self._cap
        total = 0
        for r in range(rounds):
            if active is None or active[r]:
                count = math.floor(slack + 1e-9)
                if count > 0:
                    counts[r] = count
                    total += count
                    slack = slack - count
            slack = slack + rho
            if slack > cap:
                slack = cap
        self._slack = slack
        self._round += rounds
        self.total_injected += total
        return counts


def verify_injection_record(
    counts: list[int], adversary_type: AdversaryType, *, strict: bool = True
) -> bool:
    """Check a per-round injection record against the (rho, beta) envelope.

    This is the O(t^2) reference check used by tests to validate the O(1)
    online tracker: for every contiguous interval the number of injections
    must not exceed ``rho * len + beta``.
    """
    prefix = [0]
    for c in counts:
        prefix.append(prefix[-1] + c)
    for start in range(len(counts)):
        for end in range(start + 1, len(counts) + 1):
            injected = prefix[end] - prefix[start]
            bound = adversary_type.window_bound(end - start)
            if injected > bound + 1e-9:
                if strict:
                    raise LeakyBucketViolation(
                        f"interval [{start}, {end}) injected {injected} > bound {bound}"
                    )
                return False
    return True
