"""Recording and replaying injection traces.

Two uses:

* **Reproducibility** — a stochastic or adaptive adversary's realised
  injections can be recorded once and replayed bit-for-bit against a
  different algorithm, so that algorithm comparisons in the benchmark
  harness see *identical* traffic.
* **Hand-crafted scenarios** — tests construct explicit
  :class:`InjectionTrace` objects to exercise specific protocol corner
  cases.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..channel.engine import AdversaryView
from .base import Adversary, InjectionDemand, ObliviousAdversary, ObservationProfile
from .leaky_bucket import AdversaryType, verify_injection_record

__all__ = ["TraceEntry", "InjectionTrace", "RecordingAdversary", "ReplayAdversary"]


@dataclass(frozen=True, slots=True)
class TraceEntry:
    """One recorded injection: round, source station and destination."""

    round_no: int
    source: int
    destination: int


@dataclass(slots=True)
class InjectionTrace:
    """An ordered collection of injections, independent of packet identity."""

    entries: list[TraceEntry] = field(default_factory=list)

    def append(self, round_no: int, source: int, destination: int) -> None:
        self.entries.append(TraceEntry(round_no, source, destination))

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    def per_round_counts(self, rounds: int | None = None) -> list[int]:
        """Number of injections in each round (padded to ``rounds``)."""
        horizon = rounds if rounds is not None else (
            max((e.round_no for e in self.entries), default=-1) + 1
        )
        counts = [0] * horizon
        for entry in self.entries:
            if entry.round_no < horizon:
                counts[entry.round_no] += 1
        return counts

    def conforms_to(self, rho: float, beta: float, rounds: int | None = None) -> bool:
        """Check the trace against a (rho, beta) leaky-bucket envelope."""
        counts = self.per_round_counts(rounds)
        return verify_injection_record(
            counts, AdversaryType(rho=rho, beta=beta), strict=False
        )

    @classmethod
    def from_entries(
        cls, entries: Iterable[tuple[int, int, int]]
    ) -> "InjectionTrace":
        trace = cls()
        for round_no, source, destination in entries:
            trace.append(round_no, source, destination)
        return trace


class RecordingAdversary(Adversary):
    """Wraps another adversary and records every injection it makes."""

    def __init__(self, inner: Adversary) -> None:
        super().__init__(inner.rho, inner.beta)
        self.inner = inner
        self.trace = InjectionTrace()

    def on_bind(self, n: int) -> None:
        if self.inner.n is None:
            self.inner.bind(n, self.factory)

    def observation_profile(self) -> ObservationProfile:
        # Recording adds no observation of its own; the wrapped adversary's
        # declaration decides what the engine must maintain.
        return self.inner.observation_profile()

    def demand(
        self, round_no: int, budget: int, view: AdversaryView
    ) -> Sequence[InjectionDemand]:
        demands = list(self.inner.demand(round_no, budget, view))[:budget]
        # Keep the inner adversary's own constraint tracker in sync so its
        # later decisions (e.g. burst scheduling) see the true budget.
        self.inner.constraint.consume(len(demands))
        for source, destination in demands:
            self.trace.append(round_no, source, destination)
        return demands

    def describe(self) -> str:
        return f"Recording({self.inner.describe()})"


class ReplayAdversary(ObliviousAdversary):
    """Replays a previously recorded :class:`InjectionTrace`.

    The declared ``(rho, beta)`` type must admit the trace; this is
    verified eagerly at bind time so that misuse fails fast.
    """

    def __init__(self, rho: float, beta: float, trace: InjectionTrace) -> None:
        super().__init__(rho, beta)
        self.trace = trace
        self._by_round: dict[int, list[TraceEntry]] = {}

    def on_bind(self, n: int) -> None:
        if not self.trace.conforms_to(self.rho, self.beta):
            raise ValueError(
                "trace does not conform to the declared (rho, beta) envelope"
            )
        self._by_round = {}
        for entry in self.trace:
            if entry.source >= n or entry.destination >= n:
                raise ValueError("trace references stations outside this system")
            self._by_round.setdefault(entry.round_no, []).append(entry)

    def demand(
        self, round_no: int, budget: int, view: AdversaryView
    ) -> Sequence[InjectionDemand]:
        entries = self._by_round.get(round_no, [])
        return [(e.source, e.destination) for e in entries][:budget]

    def _plan_chunk(self, start, stop):
        """Batched replay: one pass over the chunk, no per-round demand call.

        The trace conforms to the declared envelope (checked at bind), so
        the budget clip almost never engages; it is still applied exactly
        as the per-round path would, via the same budget()/consume()
        recurrence.
        """
        constraint = self.constraint
        by_round = self._by_round
        counts: list[int] = []
        sources: list[int] = []
        destinations: list[int] = []
        for t in range(start, stop):
            entries = by_round.get(t)
            if not entries:
                constraint.consume(0)
                counts.append(0)
                continue
            budget = constraint.budget()
            take = entries if len(entries) <= budget else entries[:budget]
            for entry in take:
                sources.append(entry.source)
                destinations.append(entry.destination)
            counts.append(len(take))
            constraint.consume(len(take))
        return counts, sources, destinations

    def describe(self) -> str:
        return f"Replay({len(self.trace)} injections, {self.adversary_type})"
