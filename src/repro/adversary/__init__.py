"""Adversarial packet-injection models (leaky bucket, Section 2).

Contains the ``(rho, beta)`` leaky-bucket constraint tracker, fixed
deterministic traffic patterns, seeded stochastic generators clipped to
the envelope, adaptive / schedule-aware lower-bound adversaries used for
the impossibility experiments, and trace record/replay utilities.
"""

from .adaptive import (
    AdaptiveStarvationAdversary,
    LeastOnPairAdversary,
    LeastOnStationAdversary,
    ScheduleLike,
)
from .base import (
    DEFAULT_OBSERVATION_WINDOW,
    Adversary,
    InjectionDemand,
    InjectionPlan,
    ObliviousAdversary,
    ObservationProfile,
)
from .leaky_bucket import (
    AdversaryType,
    LeakyBucketConstraint,
    LeakyBucketViolation,
    verify_injection_record,
)
from .patterns import (
    AlternatingPairAdversary,
    BurstThenIdleAdversary,
    GroupLocalAdversary,
    NoInjectionAdversary,
    RoundRobinAdversary,
    SaturatingAdversary,
    SingleSourceSprayAdversary,
    SingleTargetAdversary,
)
from .stochastic import (
    DEFAULT_RNG_VERSION,
    HotspotAdversary,
    RandomWalkAdversary,
    SeededAdversary,
    UniformRandomAdversary,
)
from .traces import InjectionTrace, RecordingAdversary, ReplayAdversary, TraceEntry

__all__ = [
    "AdaptiveStarvationAdversary",
    "Adversary",
    "AdversaryType",
    "AlternatingPairAdversary",
    "BurstThenIdleAdversary",
    "DEFAULT_OBSERVATION_WINDOW",
    "DEFAULT_RNG_VERSION",
    "GroupLocalAdversary",
    "HotspotAdversary",
    "InjectionDemand",
    "InjectionPlan",
    "InjectionTrace",
    "LeakyBucketConstraint",
    "LeakyBucketViolation",
    "LeastOnPairAdversary",
    "LeastOnStationAdversary",
    "NoInjectionAdversary",
    "ObliviousAdversary",
    "ObservationProfile",
    "RandomWalkAdversary",
    "RecordingAdversary",
    "ReplayAdversary",
    "RoundRobinAdversary",
    "SaturatingAdversary",
    "ScheduleLike",
    "SeededAdversary",
    "SingleSourceSprayAdversary",
    "SingleTargetAdversary",
    "TraceEntry",
    "UniformRandomAdversary",
    "verify_injection_record",
]
