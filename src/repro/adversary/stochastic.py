"""Seeded stochastic traffic generators clipped to the leaky bucket.

The paper's adversary is a worst-case abstraction; real evaluations also
exercise 'average' traffic.  These adversaries draw sources, destinations
and per-round demands from a seeded :class:`numpy.random.Generator` while
the base class guarantees the realised injection sequence never exceeds
the declared ``(rho, beta)`` envelope — so every stochastic run is also a
legal adversary of that type.

Being oblivious, these families also declare ``plans_injections`` and
are consumed by the kernel engine in batched chunks.  They deliberately
do *not* vectorise the draws: the generic
:meth:`~repro.adversary.base.ObliviousAdversary._plan_chunk` replays
``demand`` round by round, which preserves the exact generator call
sequence — a planned run draws the same stream as a per-round run, so
recorded traces, replays and kernel/reference comparisons stay
bit-identical.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..channel.engine import AdversaryView
from .base import InjectionDemand, ObliviousAdversary
from .leaky_bucket import LeakyBucketConstraint

__all__ = [
    "SeededAdversary",
    "UniformRandomAdversary",
    "HotspotAdversary",
    "RandomWalkAdversary",
]


class SeededAdversary(ObliviousAdversary):
    """Base class of the stochastic adversaries: explicit, replayable seeding.

    Stochastic traffic is oblivious in the adversarial sense: demands are
    drawn from the seeded generator, never from the execution view, so the
    kernel engine skips view maintenance for these adversaries.

    The seed is part of the adversary's identity: it appears in
    :meth:`describe`, so worst-case reports and deterministic tie-breaks
    distinguish different seeds, and spec-based runs reconstruct the exact
    generator in any process (parallel workers build adversaries fresh
    from their specs; that construction-from-seed is what makes parallel
    runs bit-identical to serial ones).  :meth:`reset_rng` additionally
    lets a caller reuse one instance for several replays; subclasses with
    RNG-derived state must override it to reset that state too.
    """

    def __init__(self, rho: float, beta: float, seed: int = 0) -> None:
        super().__init__(rho, beta)
        self.seed = seed
        self._rng = np.random.default_rng(seed)

    def reset_rng(self) -> None:
        """Restore the generator (and any derived state) to its seeded start.

        The leaky-bucket constraint tracker is reset too: a replayed run
        must see the same per-round budgets as the first, not the slack
        left over from a previous execution.
        """
        self._rng = np.random.default_rng(self.seed)
        self.constraint = LeakyBucketConstraint(self.adversary_type)

    def describe(self) -> str:
        return f"{type(self).__name__}{self.adversary_type}[seed={self.seed}]"


class UniformRandomAdversary(SeededAdversary):
    """Bernoulli(rho)-per-round arrivals with uniformly random endpoints."""

    def demand(
        self, round_no: int, budget: int, view: AdversaryView
    ) -> Sequence[InjectionDemand]:
        assert self.n is not None
        if budget == 0:
            return []
        count = int(self._rng.binomial(max(budget, 1), min(1.0, self.rho)))
        count = min(count, budget)
        demands: list[InjectionDemand] = []
        for _ in range(count):
            source = int(self._rng.integers(self.n))
            destination = int(self._rng.integers(self.n - 1))
            if destination >= source:
                destination += 1
            demands.append((source, destination))
        return demands


class HotspotAdversary(SeededAdversary):
    """A fraction of the traffic targets one hot destination.

    ``hot_fraction`` of packets are addressed to ``hot_station``; the rest
    are uniform.  Sources are uniform over the remaining stations.
    """

    def __init__(
        self,
        rho: float,
        beta: float,
        hot_station: int = 0,
        hot_fraction: float = 0.75,
        seed: int = 0,
    ) -> None:
        super().__init__(rho, beta, seed)
        if not 0 <= hot_fraction <= 1:
            raise ValueError("hot_fraction must lie in [0, 1]")
        self.hot_station = hot_station
        self.hot_fraction = hot_fraction

    def demand(
        self, round_no: int, budget: int, view: AdversaryView
    ) -> Sequence[InjectionDemand]:
        assert self.n is not None
        if budget == 0:
            return []
        count = int(self._rng.binomial(max(budget, 1), min(1.0, self.rho)))
        count = min(count, budget)
        demands: list[InjectionDemand] = []
        for _ in range(count):
            if self._rng.random() < self.hot_fraction:
                destination = self.hot_station
            else:
                destination = int(self._rng.integers(self.n))
            source = int(self._rng.integers(self.n - 1))
            if source >= destination:
                source += 1
            demands.append((source, destination))
        return demands


class RandomWalkAdversary(SeededAdversary):
    """Traffic locality drifts over time.

    The 'focus' station performs a lazy random walk over station names;
    packets are injected into the focus station with destinations near it.
    Exercises algorithms whose performance depends on which stations are
    currently loaded (e.g. Orchestra's baton movement).
    """

    def __init__(
        self, rho: float, beta: float, drift_probability: float = 0.2, seed: int = 0
    ) -> None:
        super().__init__(rho, beta, seed)
        if not 0 <= drift_probability <= 1:
            raise ValueError("drift_probability must lie in [0, 1]")
        self.drift_probability = drift_probability
        self._focus = 0

    def reset_rng(self) -> None:
        super().reset_rng()
        self._focus = 0

    def demand(
        self, round_no: int, budget: int, view: AdversaryView
    ) -> Sequence[InjectionDemand]:
        assert self.n is not None
        if self._rng.random() < self.drift_probability:
            self._focus = (self._focus + int(self._rng.integers(1, self.n))) % self.n
        if budget == 0:
            return []
        count = int(self._rng.binomial(max(budget, 1), min(1.0, self.rho)))
        count = min(count, budget)
        demands: list[InjectionDemand] = []
        for _ in range(count):
            offset = int(self._rng.integers(1, max(2, self.n // 2 + 1)))
            destination = (self._focus + offset) % self.n
            if destination == self._focus:
                destination = (self._focus + 1) % self.n
            demands.append((self._focus, destination))
        return demands
