"""Seeded stochastic traffic generators clipped to the leaky bucket.

The paper's adversary is a worst-case abstraction; real evaluations also
exercise 'average' traffic.  These adversaries draw sources, destinations
and per-round demands from a seeded :class:`numpy.random.Generator` while
the base class guarantees the realised injection sequence never exceeds
the declared ``(rho, beta)`` envelope — so every stochastic run is also a
legal adversary of that type.

Being oblivious, these families also declare ``plans_injections`` and
are consumed by the kernel engine in batched chunks.  How the generator
stream is consumed is **versioned**, because the stream is part of a
seeded run's identity (recorded runs, caches and replays must keep
reproducing bit-identical traffic):

* ``rng_version=1`` (the only protocol that existed before it was
  versioned) draws per round, with the *number* of calls depending on
  the realised budget.  It cannot be vectorised without changing the
  stream, so the generic
  :meth:`~repro.adversary.base.ObliviousAdversary._plan_chunk` replays
  ``demand`` round by round inside the plan call.  It is kept so
  pre-versioned recordings replay unchanged: spec dicts serialised
  before the version existed carry no ``rng_version`` key, and
  :meth:`repro.sim.specs.RunSpec.from_dict` reads that absence as
  version 1.
* ``rng_version=2`` (the default) is the *batched RNG protocol*: the stream is
  consumed in fixed, absolute blocks of :data:`RNG_BLOCK` rounds, each
  materialised by a handful of array draws (raw per-round demand counts
  first, then the per-packet draws, in a fixed documented order) and
  clipped against the leaky bucket in one
  :meth:`~repro.adversary.leaky_bucket.LeakyBucketConstraint.consume_demands`
  sweep.  Because block boundaries are fixed in absolute round numbers,
  the stream is independent of the engine's ``plan_chunk`` and of
  whether rounds are consumed through plans or per-round ``inject()``
  (both property-tested) — but it is a *different* stream from version
  1, which is why the version is an explicit, spec-recorded parameter
  rather than a silent upgrade.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..channel.engine import AdversaryView
from .base import InjectionDemand, ObliviousAdversary
from .leaky_bucket import LeakyBucketConstraint

__all__ = [
    "DEFAULT_RNG_VERSION",
    "RNG_BLOCK",
    "SeededAdversary",
    "UniformRandomAdversary",
    "HotspotAdversary",
    "RandomWalkAdversary",
]

#: Round-window granularity of the version-2 batched RNG protocol.  The
#: stream is drawn one absolute block ``[b * RNG_BLOCK, (b+1) * RNG_BLOCK)``
#: at a time, so the constant is part of the protocol: changing it would
#: change every version-2 stream.
RNG_BLOCK = 4096

#: RNG protocol new seeded adversaries speak unless told otherwise.  Spec
#: dicts serialised before the protocol was versioned carry no
#: ``rng_version`` key; :meth:`repro.sim.specs.RunSpec.from_dict` reads
#: that absence as version 1, so flipping this default never rewrites the
#: traffic of an existing recording.
DEFAULT_RNG_VERSION = 2


class SeededAdversary(ObliviousAdversary):
    """Base class of the stochastic adversaries: explicit, replayable seeding.

    Stochastic traffic is oblivious in the adversarial sense: demands are
    drawn from the seeded generator, never from the execution view, so the
    kernel engine skips view maintenance for these adversaries.

    The seed — and the RNG protocol version (see the module docstring) —
    are part of the adversary's identity: both appear in
    :meth:`describe`, so worst-case reports and deterministic tie-breaks
    distinguish them, and spec-based runs reconstruct the exact generator
    in any process (parallel workers build adversaries fresh from their
    specs; that construction-from-seed is what makes parallel runs
    bit-identical to serial ones).  :meth:`reset_rng` additionally lets a
    caller reuse one instance for several replays; subclasses with
    RNG-derived state must override it to reset that state too.
    """

    def __init__(
        self, rho: float, beta: float, seed: int = 0, rng_version: int = DEFAULT_RNG_VERSION
    ) -> None:
        super().__init__(rho, beta)
        if rng_version not in (1, 2):
            raise ValueError(
                f"unknown rng_version {rng_version!r}; known protocols: 1 "
                "(per-round draws), 2 (batched block draws)"
            )
        self.seed = seed
        self.rng_version = rng_version
        self._rng = np.random.default_rng(seed)
        # Version-2 block cache: the current block's base round, per-round
        # pair offsets (length RNG_BLOCK + 1) and flat pair lists.
        self._block_start = -1
        self._block_offsets: list[int] = []
        self._block_sources: list[int] = []
        self._block_destinations: list[int] = []

    def reset_rng(self) -> None:
        """Restore the generator (and any derived state) to its seeded start.

        The leaky-bucket constraint tracker is reset too: a replayed run
        must see the same per-round budgets as the first, not the slack
        left over from a previous execution.
        """
        self._rng = np.random.default_rng(self.seed)
        self.constraint = LeakyBucketConstraint(self.adversary_type)
        self._block_start = -1

    def describe(self) -> str:
        suffix = "" if self.rng_version == 1 else f",rng=v{self.rng_version}"
        return f"{type(self).__name__}{self.adversary_type}[seed={self.seed}{suffix}]"

    # -- version-2 batched RNG protocol --------------------------------------
    def _draw_block(self, start: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Materialise one RNG block: raw counts plus per-packet pairs.

        Returns ``(counts, sources, destinations)`` where ``counts`` has
        :data:`RNG_BLOCK` entries (the *raw*, pre-clipping demand of each
        round) and the pair arrays hold ``counts.sum()`` packets in round
        order.  Families define their own fixed draw order; the block is
        drawn exactly once per run, so the stream depends only on
        ``(seed, start)`` and the family's parameters.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not implement the batched RNG "
            "protocol (rng_version=2)"
        )

    def _ensure_block(self, round_no: int) -> None:
        base = round_no - (round_no % RNG_BLOCK)
        if base == self._block_start:
            return
        counts, sources, destinations = self._draw_block(base)
        offsets = np.zeros(len(counts) + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        self._block_start = base
        self._block_offsets = offsets.tolist()
        self._block_sources = sources.tolist()
        self._block_destinations = destinations.tolist()

    def _demand_from_block(self, round_no: int) -> Sequence[InjectionDemand]:
        """Version-2 per-round demand: slice the cached block.

        No generator call happens here, so — unlike version 1 — the
        stream cannot depend on the realised budget; clipping to the
        envelope is left to the caller (``inject`` truncates demands to
        the budget, ``_plan_chunk`` clips via ``consume_demands``).
        """
        self._ensure_block(round_no)
        rel = round_no - self._block_start
        lo = self._block_offsets[rel]
        hi = self._block_offsets[rel + 1]
        if lo == hi:
            return []
        return list(
            zip(self._block_sources[lo:hi], self._block_destinations[lo:hi])
        )

    def _plan_chunk(
        self, start: int, stop: int
    ) -> tuple[list[int], list[int], list[int]]:
        if self.rng_version != 2:
            # Version 1: the generic round-by-round replay preserves the
            # legacy per-round draw sequence exactly.
            return super()._plan_chunk(start, stop)
        counts: list[int] = []
        sources: list[int] = []
        destinations: list[int] = []
        constraint = self.constraint
        t = start
        while t < stop:
            self._ensure_block(t)
            base = self._block_start
            block_stop = min(stop, base + RNG_BLOCK)
            offsets = self._block_offsets
            rel = t - base
            raw = [
                offsets[r + 1] - offsets[r]
                for r in range(rel, block_stop - base)
            ]
            clipped = constraint.consume_demands(raw)
            counts.extend(clipped)
            block_sources = self._block_sources
            block_destinations = self._block_destinations
            for i, take in enumerate(clipped):
                if take:
                    lo = offsets[rel + i]
                    sources.extend(block_sources[lo : lo + take])
                    destinations.extend(block_destinations[lo : lo + take])
            t = block_stop
        return counts, sources, destinations

    # -- shared v2 draw helpers ----------------------------------------------
    def _raw_counts(self) -> np.ndarray:
        """Per-round raw demand counts of one block: Binomial(B, rho).

        ``B`` is the type's burstiness cap, so raw demand matches the
        version-1 shape (at most a burst per round, rate rho on average);
        the leaky bucket still clips every realised count to the exact
        envelope.
        """
        cap = max(1, self.adversary_type.burstiness)
        return self._rng.binomial(cap, min(1.0, self.rho), size=RNG_BLOCK)


class UniformRandomAdversary(SeededAdversary):
    """Bernoulli(rho)-per-round arrivals with uniformly random endpoints."""

    def demand(
        self, round_no: int, budget: int, view: AdversaryView
    ) -> Sequence[InjectionDemand]:
        assert self.n is not None
        if self.rng_version == 2:
            return self._demand_from_block(round_no)
        if budget == 0:
            return []
        count = int(self._rng.binomial(max(budget, 1), min(1.0, self.rho)))
        count = min(count, budget)
        demands: list[InjectionDemand] = []
        for _ in range(count):
            source = int(self._rng.integers(self.n))
            destination = int(self._rng.integers(self.n - 1))
            if destination >= source:
                destination += 1
            demands.append((source, destination))
        return demands

    def _draw_block(self, start: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        # Fixed draw order: counts, sources, destinations.
        rng = self._rng
        counts = self._raw_counts()
        total = int(counts.sum())
        sources = rng.integers(self.n, size=total)
        destinations = rng.integers(self.n - 1, size=total)
        destinations = destinations + (destinations >= sources)
        return counts, sources, destinations


class HotspotAdversary(SeededAdversary):
    """A fraction of the traffic targets one hot destination.

    ``hot_fraction`` of packets are addressed to ``hot_station``; the rest
    are uniform.  Sources are uniform over the remaining stations.
    """

    def __init__(
        self,
        rho: float,
        beta: float,
        hot_station: int = 0,
        hot_fraction: float = 0.75,
        seed: int = 0,
        rng_version: int = DEFAULT_RNG_VERSION,
    ) -> None:
        super().__init__(rho, beta, seed, rng_version)
        if not 0 <= hot_fraction <= 1:
            raise ValueError("hot_fraction must lie in [0, 1]")
        self.hot_station = hot_station
        self.hot_fraction = hot_fraction

    def demand(
        self, round_no: int, budget: int, view: AdversaryView
    ) -> Sequence[InjectionDemand]:
        assert self.n is not None
        if self.rng_version == 2:
            return self._demand_from_block(round_no)
        if budget == 0:
            return []
        count = int(self._rng.binomial(max(budget, 1), min(1.0, self.rho)))
        count = min(count, budget)
        demands: list[InjectionDemand] = []
        for _ in range(count):
            if self._rng.random() < self.hot_fraction:
                destination = self.hot_station
            else:
                destination = int(self._rng.integers(self.n))
            source = int(self._rng.integers(self.n - 1))
            if source >= destination:
                source += 1
            demands.append((source, destination))
        return demands

    def _draw_block(self, start: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        # Fixed draw order: counts, hot flags, cold destinations, sources.
        # (The cold-destination array is drawn for every packet so the
        # stream does not depend on the hot/cold split.)
        rng = self._rng
        counts = self._raw_counts()
        total = int(counts.sum())
        hot = rng.random(total) < self.hot_fraction
        destinations = np.where(
            hot, self.hot_station, rng.integers(self.n, size=total)
        )
        sources = rng.integers(self.n - 1, size=total)
        sources = sources + (sources >= destinations)
        return counts, sources, destinations


class RandomWalkAdversary(SeededAdversary):
    """Traffic locality drifts over time.

    The 'focus' station performs a lazy random walk over station names;
    packets are injected into the focus station with destinations near it.
    Exercises algorithms whose performance depends on which stations are
    currently loaded (e.g. Orchestra's baton movement).
    """

    def __init__(
        self,
        rho: float,
        beta: float,
        drift_probability: float = 0.2,
        seed: int = 0,
        rng_version: int = DEFAULT_RNG_VERSION,
    ) -> None:
        super().__init__(rho, beta, seed, rng_version)
        if not 0 <= drift_probability <= 1:
            raise ValueError("drift_probability must lie in [0, 1]")
        self.drift_probability = drift_probability
        self._focus = 0

    def reset_rng(self) -> None:
        super().reset_rng()
        self._focus = 0

    def demand(
        self, round_no: int, budget: int, view: AdversaryView
    ) -> Sequence[InjectionDemand]:
        assert self.n is not None
        if self.rng_version == 2:
            return self._demand_from_block(round_no)
        if self._rng.random() < self.drift_probability:
            self._focus = (self._focus + int(self._rng.integers(1, self.n))) % self.n
        if budget == 0:
            return []
        count = int(self._rng.binomial(max(budget, 1), min(1.0, self.rho)))
        count = min(count, budget)
        demands: list[InjectionDemand] = []
        for _ in range(count):
            offset = int(self._rng.integers(1, max(2, self.n // 2 + 1)))
            destination = (self._focus + offset) % self.n
            if destination == self._focus:
                destination = (self._focus + 1) % self.n
            demands.append((self._focus, destination))
        return demands

    def _draw_block(self, start: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        # Fixed draw order: drift flags, drift steps, counts, offsets.
        # Drift steps are drawn for every round (used only where the flag
        # is set) so the walk is one cumulative-sum, and the focus of each
        # packet is the post-drift focus of its round — matching the
        # version-1 ordering of drift before demand.
        rng = self._rng
        n = self.n
        drift = rng.random(RNG_BLOCK) < self.drift_probability
        steps = rng.integers(1, n, size=RNG_BLOCK)
        focus = (self._focus + np.cumsum(np.where(drift, steps, 0))) % n
        self._focus = int(focus[-1])
        counts = self._raw_counts()
        total = int(counts.sum())
        offsets = rng.integers(1, max(2, n // 2 + 1), size=total)
        packet_focus = np.repeat(focus, counts)
        destinations = (packet_focus + offsets) % n
        destinations = np.where(
            destinations == packet_focus, (packet_focus + 1) % n, destinations
        )
        return counts, packet_focus, destinations
