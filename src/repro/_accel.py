"""Optional numba acceleration probe.

The simulation is pure CPython + numpy by design; numba is an *optional*
accelerator, never a dependency.  This module probes for it once at
import time and exposes

* :data:`HAVE_NUMBA` — True when ``import numba`` succeeded,
* :func:`maybe_jit` — ``numba.njit`` when available, the identity
  decorator otherwise (a silent no-op, so decorated functions stay plain
  Python functions on numba-free installs),
* the jitted array helpers of the block engine's inner loop, each with a
  vectorised numpy fallback so behaviour is bit-identical either way.

Everything downstream imports from here instead of touching numba
directly; the CI matrix runs one leg with numba installed (exercising the
JIT path) and one without (asserting the probe degrades cleanly).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "HAVE_NUMBA",
    "maybe_jit",
    "injection_round_indices",
    "segment_round_totals",
    "per_station_flow",
    "count_transmitting",
]

try:  # pragma: no cover - exercised on the numba-installed CI leg
    from numba import njit as _njit

    HAVE_NUMBA = True
except Exception:  # ImportError, or a broken numba install — same answer.
    _njit = None
    HAVE_NUMBA = False


def maybe_jit(func=None, **jit_kwargs):
    """``numba.njit`` when numba is importable, identity decorator otherwise.

    Usable bare (``@maybe_jit``) or with njit keyword arguments
    (``@maybe_jit(cache=True)``).  On numba-free installs the function is
    returned unchanged, so callers need no feature checks of their own —
    but hot callers that have a *different* (vectorised) numpy fallback
    should branch on :data:`HAVE_NUMBA` instead of calling the undecorated
    per-element loop.
    """

    def wrap(f):
        if HAVE_NUMBA:
            return _njit(**jit_kwargs)(f)
        return f

    if func is not None:
        return wrap(func)
    return wrap


# Each kernel below ships two bit-identical implementations: a scalar
# loop ``_<name>_jit`` (plain Python on numba-free installs, njit-compiled
# otherwise) and a vectorised numpy expression ``_<name>_np`` used as the
# fallback.  tests/unit/test_accel_parity.py pins the two paths against
# each other over randomised segment inputs on both CI legs.


@maybe_jit(cache=False)
def _injection_round_indices_jit(offsets):  # pragma: no cover - numba leg only
    out = np.empty(offsets.shape[0] - 1, dtype=np.int64)
    m = 0
    for r in range(offsets.shape[0] - 1):
        if offsets[r + 1] > offsets[r]:
            out[m] = r
            m += 1
    return out[:m]


def _injection_round_indices_np(offsets: np.ndarray) -> np.ndarray:
    return np.flatnonzero(offsets[1:] > offsets[:-1])


def injection_round_indices(offsets: np.ndarray) -> np.ndarray:
    """Relative round indices of an injection plan that carry injections.

    ``offsets`` is an injection plan's CSR-style offset array
    (``len == rounds + 1``); round ``r`` carries injections iff
    ``offsets[r + 1] > offsets[r]``.  This is the scan behind the block
    and kernel engines' quiescent-span probes: jitted (single pass, no
    temporaries) when numba is available, vectorised numpy otherwise.
    """
    if HAVE_NUMBA:
        return _injection_round_indices_jit(offsets)
    return _injection_round_indices_np(offsets)


@maybe_jit(cache=False)
def _segment_round_totals_jit(  # pragma: no cover - numba leg only
    delta_offsets, delta_values, initial_total
):
    rounds = delta_offsets.shape[0] - 1
    out = np.empty(rounds, dtype=np.int64)
    total = initial_total
    for r in range(rounds):
        for k in range(delta_offsets[r], delta_offsets[r + 1]):
            total += delta_values[k]
        out[r] = total
    return out


def _segment_round_totals_np(
    delta_offsets: np.ndarray, delta_values: np.ndarray, initial_total: int
) -> np.ndarray:
    # Row sums via prefix-sum differences: ``np.add.reduceat`` returns
    # ``operand[idx]`` for empty CSR rows, which silent rounds hit
    # constantly, so the cumsum-diff form is the correct vectorisation.
    prefix = np.concatenate(
        (np.zeros(1, dtype=np.int64), np.cumsum(delta_values, dtype=np.int64))
    )
    per_round = prefix[delta_offsets[1:]] - prefix[delta_offsets[:-1]]
    return np.cumsum(per_round, dtype=np.int64) + initial_total


def segment_round_totals(
    delta_offsets: np.ndarray, delta_values: np.ndarray, initial_total: int
) -> np.ndarray:
    """End-of-round total queue lengths of a lowered segment.

    ``delta_offsets``/``delta_values`` are the segment's queue-delta CSR
    (one row per round); the result is the running total starting from
    ``initial_total``, one entry per round — exactly the slice the block
    engine appends to ``MetricsCollector.total_queue_series``.
    """
    if HAVE_NUMBA:
        return _segment_round_totals_jit(
            delta_offsets, delta_values, np.int64(initial_total)
        )
    return _segment_round_totals_np(delta_offsets, delta_values, initial_total)


@maybe_jit(cache=False)
def _per_station_flow_jit(  # pragma: no cover - numba leg only
    delta_stations, delta_values, base_sizes
):
    sizes = base_sizes.copy()
    peaks = base_sizes.copy()
    for k in range(delta_stations.shape[0]):
        s = delta_stations[k]
        sizes[s] += delta_values[k]
        if sizes[s] > peaks[s]:
            peaks[s] = sizes[s]
    return sizes, peaks


def _per_station_flow_np(
    delta_stations: np.ndarray, delta_values: np.ndarray, base_sizes: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    sizes = base_sizes.copy()
    peaks = base_sizes.copy()
    m = delta_stations.shape[0]
    if m == 0:
        return sizes, peaks
    # Group the entries by station with a stable sort (preserving the
    # chronological order within each station), take within-group running
    # sums, and reduce each group to its last value (final size) and its
    # maximum (peak).  ``np.bincount(weights=...)`` promotes to float64
    # and a global cumsum/cummax would leak across groups, hence the
    # segmented form.
    order = np.argsort(delta_stations, kind="stable")
    stations = delta_stations[order]
    cumulative = np.cumsum(delta_values[order], dtype=np.int64)
    starts = np.flatnonzero(
        np.concatenate((np.ones(1, dtype=bool), stations[1:] != stations[:-1]))
    )
    group_lengths = np.diff(np.concatenate((starts, np.asarray([m]))))
    group_base = np.concatenate(
        (np.zeros(1, dtype=np.int64), cumulative[starts[1:] - 1])
    )
    running = cumulative - np.repeat(group_base, group_lengths) + base_sizes[stations]
    touched = stations[starts]
    # reduceat is safe here: every group is non-empty by construction.
    group_peaks = np.maximum.reduceat(running, starts)
    sizes[touched] = running[starts + group_lengths - 1]
    peaks[touched] = np.maximum(base_sizes[touched], group_peaks)
    return sizes, peaks


def per_station_flow(
    delta_stations: np.ndarray, delta_values: np.ndarray, base_sizes: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Fold a lowered segment's queue-delta CSR into per-station flows.

    Starting from ``base_sizes`` (length-n int64, the queue sizes at
    segment start), returns ``(sizes, peaks)``: the per-station sizes
    after applying every delta in order, and the running per-station
    maxima along the way (initialised at the base, so ``peaks >=
    base_sizes`` elementwise).  Because the CSR carries at most one net
    entry per station per round, the entry-level running values are
    exactly the end-of-round sizes the per-round engines poll — which is
    what makes the peaks usable for ``per_station_max_queue``.
    """
    if HAVE_NUMBA:
        return _per_station_flow_jit(delta_stations, delta_values, base_sizes)
    return _per_station_flow_np(delta_stations, delta_values, base_sizes)


@maybe_jit(cache=False)
def _count_transmitting_jit(transmitters):  # pragma: no cover - numba leg only
    m = 0
    for k in range(transmitters.shape[0]):
        if transmitters[k] >= 0:
            m += 1
    return m


def _count_transmitting_np(transmitters: np.ndarray) -> int:
    return int(np.count_nonzero(transmitters >= 0))


def count_transmitting(transmitters: np.ndarray) -> int:
    """Number of heard rounds in a lowered segment's transmitter array."""
    if HAVE_NUMBA:
        return int(_count_transmitting_jit(transmitters))
    return _count_transmitting_np(transmitters)
