"""Optional numba acceleration probe.

The simulation is pure CPython + numpy by design; numba is an *optional*
accelerator, never a dependency.  This module probes for it once at
import time and exposes

* :data:`HAVE_NUMBA` — True when ``import numba`` succeeded,
* :func:`maybe_jit` — ``numba.njit`` when available, the identity
  decorator otherwise (a silent no-op, so decorated functions stay plain
  Python functions on numba-free installs),
* the jitted array helpers of the block engine's inner loop, each with a
  vectorised numpy fallback so behaviour is bit-identical either way.

Everything downstream imports from here instead of touching numba
directly; the CI matrix runs one leg with numba installed (exercising the
JIT path) and one without (asserting the probe degrades cleanly).
"""

from __future__ import annotations

import numpy as np

__all__ = ["HAVE_NUMBA", "maybe_jit", "injection_round_indices"]

try:  # pragma: no cover - exercised on the numba-installed CI leg
    from numba import njit as _njit

    HAVE_NUMBA = True
except Exception:  # ImportError, or a broken numba install — same answer.
    _njit = None
    HAVE_NUMBA = False


def maybe_jit(func=None, **jit_kwargs):
    """``numba.njit`` when numba is importable, identity decorator otherwise.

    Usable bare (``@maybe_jit``) or with njit keyword arguments
    (``@maybe_jit(cache=True)``).  On numba-free installs the function is
    returned unchanged, so callers need no feature checks of their own —
    but hot callers that have a *different* (vectorised) numpy fallback
    should branch on :data:`HAVE_NUMBA` instead of calling the undecorated
    per-element loop.
    """

    def wrap(f):
        if HAVE_NUMBA:
            return _njit(**jit_kwargs)(f)
        return f

    if func is not None:
        return wrap(func)
    return wrap


@maybe_jit(cache=False)
def _injection_round_indices_jit(offsets):  # pragma: no cover - numba leg only
    out = np.empty(offsets.shape[0] - 1, dtype=np.int64)
    m = 0
    for r in range(offsets.shape[0] - 1):
        if offsets[r + 1] > offsets[r]:
            out[m] = r
            m += 1
    return out[:m]


def injection_round_indices(offsets: np.ndarray) -> np.ndarray:
    """Relative round indices of an injection plan that carry injections.

    ``offsets`` is an injection plan's CSR-style offset array
    (``len == rounds + 1``); round ``r`` carries injections iff
    ``offsets[r + 1] > offsets[r]``.  This is the scan behind the block
    and kernel engines' quiescent-span probes: jitted (single pass, no
    temporaries) when numba is available, vectorised numpy otherwise.
    """
    if HAVE_NUMBA:
        return _injection_round_indices_jit(offsets)
    return np.flatnonzero(offsets[1:] > offsets[:-1])
