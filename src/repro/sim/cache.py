"""On-disk result cache keyed by canonical :class:`RunSpec` hashes.

Simulations are deterministic functions of their spec, so a finished
:class:`~repro.sim.runner.RunResult` can be reused whenever the same spec
is executed again — across processes, sessions and machines.  The cache
stores one pickled payload per spec hash plus a small JSON sidecar (the
spec and its headline summary) so cached results remain inspectable with
ordinary shell tools.

The default location is ``~/.cache/repro-sim`` and can be overridden with
the ``REPRO_CACHE_DIR`` environment variable or per-cache with an explicit
root path.
"""

from __future__ import annotations

import json
import os
import pickle
import tempfile
from pathlib import Path

from .runner import RunResult
from .specs import RunSpec

__all__ = ["CACHE_VERSION", "ResultCache", "default_cache_dir"]

CACHE_VERSION = 1


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro-sim``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-sim"


class ResultCache:
    """Persistent spec-hash → :class:`RunResult` store.

    Corrupt, unreadable or version-mismatched entries are treated as
    misses, never as errors: the cache must always be safe to delete.
    """

    def __init__(self, root: str | Path | None = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    # -- key layout ----------------------------------------------------------
    def _payload_path(self, spec: RunSpec) -> Path:
        return self.root / f"{spec.spec_hash()}.pkl"

    def _sidecar_path(self, spec: RunSpec) -> Path:
        return self.root / f"{spec.spec_hash()}.json"

    # -- store/load ----------------------------------------------------------
    def get(self, spec: RunSpec) -> RunResult | None:
        """Return the cached result for ``spec``, or None on a miss."""
        path = self._payload_path(spec)
        try:
            with path.open("rb") as fh:
                payload = pickle.load(fh)
        except Exception:
            # Corrupt/truncated pickles raise a zoo of types (UnpicklingError,
            # EOFError, ValueError, AttributeError, ...); all of them mean
            # "recompute", never "crash".
            self.misses += 1
            return None
        if (
            not isinstance(payload, dict)
            or payload.get("version") != CACHE_VERSION
            or payload.get("spec") != spec.to_dict()
            or not isinstance(payload.get("result"), RunResult)
        ):
            self.misses += 1
            return None
        self.hits += 1
        return payload["result"]

    def put(self, spec: RunSpec, result: RunResult) -> None:
        """Store ``result`` under ``spec``'s hash (atomic write)."""
        payload = {
            "version": CACHE_VERSION,
            "spec": spec.to_dict(),
            "result": result,
        }
        self._atomic_write(self._payload_path(spec), pickle.dumps(payload))
        sidecar = json.dumps(
            {
                "version": CACHE_VERSION,
                "spec": spec.to_dict(),
                "summary": result.summary.as_dict(),
            },
            indent=2,
            sort_keys=True,
        )
        self._atomic_write(self._sidecar_path(spec), sidecar.encode("utf-8"))

    def _atomic_write(self, path: Path, data: bytes) -> None:
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(data)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # -- maintenance ----------------------------------------------------------
    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.pkl"))

    def __contains__(self, spec: RunSpec) -> bool:
        return self._payload_path(spec).exists()

    def clear(self) -> int:
        """Delete every cache entry; return the number of payloads removed."""
        removed = 0
        for path in self.root.glob("*.pkl"):
            path.unlink(missing_ok=True)
            removed += 1
        for path in self.root.glob("*.json"):
            path.unlink(missing_ok=True)
        return removed
