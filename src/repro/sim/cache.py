"""On-disk result cache keyed by canonical :class:`RunSpec` hashes.

Simulations are deterministic functions of their spec, so a finished
:class:`~repro.sim.runner.RunResult` can be reused whenever the same spec
is executed again — across processes, sessions and machines.  The cache
stores one pickled payload per spec hash plus a small JSON sidecar (the
spec and its headline summary) so cached results remain inspectable with
ordinary shell tools.

The default location is ``~/.cache/repro-sim`` and can be overridden with
the ``REPRO_CACHE_DIR`` environment variable or per-cache with an explicit
root path.
"""

from __future__ import annotations

import json
import os
import pickle
import tempfile
from pathlib import Path

from .runner import RunResult
from .specs import EXECUTION_FIELDS, RunSpec

__all__ = ["CACHE_VERSION", "ResultCache", "default_cache_dir"]

# Version 2: the seeded adversaries' default RNG protocol flipped to the
# batched stream (rng_version=2).  Entries cached under version 1 may hold
# results for specs whose dicts predate explicit rng_version recording, so
# they cannot be trusted against the re-normalised spec hashes.
CACHE_VERSION = 2


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro-sim``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-sim"


class ResultCache:
    """Persistent spec-hash → :class:`RunResult` store.

    Corrupt, unreadable or version-mismatched entries are treated as
    misses, never as errors: the cache must always be safe to delete.
    """

    def __init__(self, root: str | Path | None = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    # -- key layout ----------------------------------------------------------
    def _payload_path(self, spec: RunSpec) -> Path:
        return self.root / f"{spec.spec_hash()}.pkl"

    def _sidecar_path(self, spec: RunSpec) -> Path:
        return self.root / f"{spec.spec_hash()}.json"

    # -- store/load ----------------------------------------------------------
    @staticmethod
    def _stored_identity(stored: object) -> dict | None:
        """Project a stored spec dict onto its identity fields.

        Stored specs carry the full :meth:`RunSpec.to_dict` (identity
        fields plus execution knobs); entries written before the knobs
        were serialised carry the identity fields alone.  Either way the
        identity projection is what must match — a result computed by one
        engine is valid for a spec requesting another.
        """
        if not isinstance(stored, dict):
            return None
        return {k: v for k, v in stored.items() if k not in EXECUTION_FIELDS}

    def get(self, spec: RunSpec) -> RunResult | None:
        """Return the cached result for ``spec``, or None on a miss."""
        path = self._payload_path(spec)
        try:
            with path.open("rb") as fh:
                payload = pickle.load(fh)
        except Exception:
            # Corrupt/truncated pickles raise a zoo of types (UnpicklingError,
            # EOFError, ValueError, AttributeError, ...); all of them mean
            # "recompute", never "crash".
            self.misses += 1
            return None
        if (
            not isinstance(payload, dict)
            or payload.get("version") != CACHE_VERSION
            or self._stored_identity(payload.get("spec")) != spec.identity_dict()
            or not isinstance(payload.get("result"), RunResult)
        ):
            self.misses += 1
            return None
        self.hits += 1
        return payload["result"]

    def put(self, spec: RunSpec, result: RunResult) -> None:
        """Store ``result`` under ``spec``'s hash (atomic writes).

        The JSON sidecar is written *before* the pickled payload: the
        payload is what :meth:`get` keys a hit on, so after a crash
        between the two writes the entry reads as a clean miss (an
        orphan sidecar is inert) rather than as a payload whose sidecar
        is missing or stale.
        """
        sidecar = json.dumps(
            {
                "version": CACHE_VERSION,
                "spec": spec.to_dict(),
                "summary": result.summary.as_dict(),
            },
            indent=2,
            sort_keys=True,
        )
        self._atomic_write(self._sidecar_path(spec), sidecar.encode("utf-8"))
        payload = {
            "version": CACHE_VERSION,
            "spec": spec.to_dict(),
            "result": result,
        }
        self._atomic_write(self._payload_path(spec), pickle.dumps(payload))

    def _atomic_write(self, path: Path, data: bytes) -> None:
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(data)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # -- maintenance ----------------------------------------------------------
    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.pkl"))

    def __contains__(self, spec: RunSpec) -> bool:
        return self._payload_path(spec).exists()

    def clear(self) -> int:
        """Delete every cache entry; return the number of entries removed.

        An *entry* is one spec hash, counted once whether its payload,
        its sidecar or both were present — so an orphan sidecar left by
        an interrupted :meth:`put` is counted too, not silently removed.
        Stale ``*.tmp`` files from writes that never reached
        ``os.replace`` are swept as well (they have no entry semantics
        and are not counted).
        """
        entries: set[str] = set()
        for pattern in ("*.pkl", "*.json"):
            for path in self.root.glob(pattern):
                path.unlink(missing_ok=True)
                entries.add(path.stem)
        for path in self.root.glob("*.tmp"):
            path.unlink(missing_ok=True)
        return len(entries)
