"""On-disk and remote result caches keyed by canonical :class:`RunSpec` hashes.

Simulations are deterministic functions of their spec, so a finished
:class:`~repro.sim.runner.RunResult` can be reused whenever the same spec
is executed again — across processes, sessions and machines.  The cache
stores one pickled payload per spec hash plus a small JSON sidecar (the
spec and its headline summary) so cached results remain inspectable with
ordinary shell tools.

Storage is pluggable: :class:`ResultCache` handles the *envelope*
(checksummed pickled payloads, version and spec-identity verification,
hit/miss/quarantine accounting) while a :class:`CacheBackend` moves the
bytes.  Two backends exist:

* :class:`LocalCacheBackend` — the original filesystem layout
  (``<hash>.pkl`` + ``<hash>.json`` under one directory, atomic
  write-then-rename, a ``corrupt/`` quarantine subdirectory).
* :class:`RemoteCacheBackend` — speaks to the cache endpoints of a
  ``repro serve`` process (``GET/PUT /api/cache/<hash>``) through the
  resilient RPC client (:mod:`repro.sim.netclient`): per-request
  timeouts, deterministic retry/backoff, a circuit breaker, and SHA-256
  checksums verified on both ends.  Workers using it need **no shared
  filesystem**.  While the circuit is open the backend *degrades
  gracefully*: writes spill into a local spill directory and reads fall
  back to it, so the worker keeps making progress; when the circuit
  half-opens and a probe succeeds, spilled entries are *reconciled* —
  re-published to the server — and the spill drains.

Robustness contract (the distributed-sweep substrate relies on it):

* **Checksums** — every payload is written with a SHA-256 header line;
  reads verify it, so a truncated or bit-flipped payload is *detected*
  (:class:`~repro.sim.faults.CacheCorruptionError`), not unpickled into
  garbage.  Pre-checksum payloads (no header) are still readable.
* **Atomic writes** — payloads and sidecars land via write-then-rename;
  a crash mid-write leaves a swept ``*.tmp``, never a half entry.
  Racing writers of the same entry (duplicate shard execution) both
  write the bit-identical bytes and the last rename wins.
* **Quarantine** — an entry that fails verification is moved into the
  ``corrupt/`` subdirectory (payload + sidecar, preserved for forensics)
  and the read falls through to a recompute: :meth:`ResultCache.get`
  returns None, it never raises — including when two processes race to
  quarantine the same entry and the loser's rename finds it gone.
* **Fault injection** — a seeded :class:`~repro.sim.faults.FaultPlan`
  can deterministically truncate payloads at read time, so the whole
  detect → quarantine → recompute path is replayable in tests.

The default location is ``~/.cache/repro-sim`` and can be overridden with
the ``REPRO_CACHE_DIR`` environment variable or per-cache with an explicit
root path.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from pathlib import Path

from .faults import CacheCorruptionError, FaultPlan
from .netclient import (
    CircuitOpenError,
    ResilientClient,
    RpcError,
    RpcPolicy,
    RpcResponse,
    TornResponseError,
)
from .runner import RunResult
from .specs import EXECUTION_FIELDS, RunSpec

__all__ = [
    "CACHE_VERSION",
    "CacheBackend",
    "CacheCorruptionError",
    "ClearStats",
    "LocalCacheBackend",
    "RemoteCacheBackend",
    "ResultCache",
    "default_cache_dir",
    "payload_checksum_ok",
    "split_checksum_header",
]

# Version 2: the seeded adversaries' default RNG protocol flipped to the
# batched stream (rng_version=2).  Entries cached under version 1 may hold
# results for specs whose dicts predate explicit rng_version recording, so
# they cannot be trusted against the re-normalised spec hashes.  (The
# checksum header added later is a *file-format* wrapper, detected per
# file, and did not invalidate version-2 entries.)
CACHE_VERSION = 2

#: Length of the payload checksum header: 64 hex chars + ``\n``.
_CHECKSUM_HEADER_LEN = 65

#: Request/response header naming the sidecar's byte length when a PUT
#: body carries ``sidecar + payload`` concatenated.
SIDECAR_LENGTH_HEADER = "X-Sidecar-Length"


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro-sim``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-sim"


def split_checksum_header(raw: bytes) -> tuple[str | None, bytes]:
    """Split a payload into ``(embedded hex digest, body)``.

    Returns ``(None, raw)`` for pre-checksum payloads that carry no
    header — those cannot be verified but must remain readable.
    """
    header = raw[:_CHECKSUM_HEADER_LEN]
    if len(header) == _CHECKSUM_HEADER_LEN and header.endswith(b"\n"):
        digest = header[:-1]
        try:
            digest_text = digest.decode("ascii")
        except UnicodeDecodeError:
            return None, raw
        if len(digest_text) == 64 and all(
            c in "0123456789abcdef" for c in digest_text
        ):
            return digest_text, raw[_CHECKSUM_HEADER_LEN:]
    return None, raw


def payload_checksum_ok(raw: bytes) -> bool:
    """Whether a payload's embedded checksum (if present) verifies.

    The transport-level check both ends of the remote cache protocol
    apply: cheap (no unpickling), and a legacy payload with no header
    passes — it is merely unverifiable, not known-bad.
    """
    digest, body = split_checksum_header(raw)
    return digest is None or hashlib.sha256(body).hexdigest() == digest


def verify_payload(raw: bytes, name: str) -> object:
    """Verify and unpickle one payload's bytes.

    Raises :class:`CacheCorruptionError` on anything that means the
    bytes cannot be trusted: checksum mismatch, truncation, or an
    unpicklable body.  (Unpickling raises a zoo of types —
    UnpicklingError, EOFError, ValueError, AttributeError, ... — all of
    which are corruption from the caller's point of view.)
    """
    digest, body = split_checksum_header(raw)
    if digest is not None:
        actual = hashlib.sha256(body).hexdigest()
        if actual != digest:
            raise CacheCorruptionError(
                f"payload checksum mismatch in {name}: "
                f"header {digest[:12]}..., body {actual[:12]}..."
            )
    try:
        return pickle.loads(body)
    except Exception as exc:
        raise CacheCorruptionError(
            f"unreadable payload in {name}: {type(exc).__name__}: {exc}"
        ) from exc


class ClearStats(int):
    """Return value of :meth:`ResultCache.clear`.

    An ``int`` (the number of live entries removed, back-compatible with
    older callers) carrying the full sweep breakdown: quarantined entries
    removed from ``corrupt/`` and stale ``*.tmp`` files swept.
    """

    entries: int
    quarantined: int
    tmp_swept: int

    def __new__(cls, entries: int, quarantined: int, tmp_swept: int) -> "ClearStats":
        self = super().__new__(cls, entries)
        self.entries = entries
        self.quarantined = quarantined
        self.tmp_swept = tmp_swept
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ClearStats(entries={self.entries}, quarantined={self.quarantined}, "
            f"tmp_swept={self.tmp_swept})"
        )


class CacheBackend:
    """Byte-level storage under :class:`ResultCache` (and the cache server).

    Keys are canonical spec hashes (hex strings).  ``load`` raises
    :class:`KeyError` on a miss; ``store`` must be atomic per entry;
    ``quarantine`` is best-effort and must never raise on a concurrent
    removal of the same entry.
    """

    def load(self, key: str) -> bytes:
        raise NotImplementedError

    def store(self, key: str, payload: bytes, sidecar: str) -> None:
        raise NotImplementedError

    def contains(self, key: str) -> bool:
        raise NotImplementedError

    def quarantine(self, key: str) -> None:
        raise NotImplementedError


class LocalCacheBackend(CacheBackend):
    """The original one-directory filesystem layout."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        #: Atomic write hook; :class:`ResultCache` rebinds it to its own
        #: (historically monkeypatchable) ``_atomic_write`` method.
        self._write = self._atomic_write

    # -- layout ---------------------------------------------------------------
    @property
    def quarantine_dir(self) -> Path:
        return self.root / "corrupt"

    def payload_path(self, key: str) -> Path:
        return self.root / f"{key}.pkl"

    def sidecar_path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    # -- byte I/O -------------------------------------------------------------
    def _atomic_write(self, path: Path, data: bytes) -> None:
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(data)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def load(self, key: str) -> bytes:
        try:
            with self.payload_path(key).open("rb") as fh:
                return fh.read()
        except FileNotFoundError:
            raise KeyError(key) from None

    def store(self, key: str, payload: bytes, sidecar: str) -> None:
        # Sidecar before payload: the payload keys a hit, so a crash
        # between the writes leaves a clean miss (an orphan sidecar is
        # inert), never a payload with missing/stale metadata.
        self._write(self.sidecar_path(key), sidecar.encode("utf-8"))
        self._write(self.payload_path(key), payload)

    def contains(self, key: str) -> bool:
        return self.payload_path(key).exists()

    def quarantine(self, key: str) -> None:
        """Move a failed-verification entry into ``corrupt/``.

        Concurrency-safe: two processes that both detect the same
        corrupt entry race their renames, and the loser — whose source
        file the winner already moved or unlinked — treats the
        FileNotFoundError as success, preserving ``get()``'s
        never-raises contract.
        """
        self.quarantine_dir.mkdir(parents=True, exist_ok=True)
        for path in (self.payload_path(key), self.sidecar_path(key)):
            try:
                os.replace(path, self.quarantine_dir / path.name)
            except FileNotFoundError:
                continue
            except OSError:
                continue

    # -- maintenance ----------------------------------------------------------
    def entry_count(self) -> int:
        return sum(1 for _ in self.root.glob("*.pkl"))

    def quarantined_entries(self) -> int:
        if not self.quarantine_dir.is_dir():
            return 0
        return len({p.stem for p in self.quarantine_dir.iterdir() if p.is_file()})

    def clear(self) -> ClearStats:
        entries: set[str] = set()
        for pattern in ("*.pkl", "*.json"):
            for path in self.root.glob(pattern):
                path.unlink(missing_ok=True)
                entries.add(path.stem)
        tmp_swept = 0
        for path in self.root.glob("*.tmp"):
            path.unlink(missing_ok=True)
            tmp_swept += 1
        quarantined: set[str] = set()
        if self.quarantine_dir.is_dir():
            for path in list(self.quarantine_dir.iterdir()):
                if path.is_file():
                    quarantined.add(path.stem)
                    path.unlink(missing_ok=True)
            try:
                self.quarantine_dir.rmdir()
            except OSError:
                pass
        return ClearStats(len(entries), len(quarantined), tmp_swept)


class RemoteCacheBackend(CacheBackend):
    """Cache entries fetched from / published to a ``repro serve`` process.

    Every exchange goes through one :class:`ResilientClient` (timeouts,
    deterministic retries, circuit breaker, checksummed bodies).  The
    graceful-degradation contract:

    * ``store`` that cannot reach the server (circuit open, retries
      exhausted) **spills** the entry into a local spill directory and
      returns success — the worker keeps computing.
    * ``load`` that cannot reach the server serves spilled entries and
      otherwise reads as a miss (the caller recomputes).
    * When the circuit half-opens and a probe succeeds — or any later
      request succeeds while spill entries remain — the backend
      **reconciles**: spilled entries are re-published and removed.

    Parameters
    ----------
    base_url:
        The serve process's base URL (``http://host:port``) or its cache
        prefix (``.../api/cache``); either is accepted.
    client:
        Shared :class:`ResilientClient` (the worker passes the same one
        used for queue RPCs so the breaker state is shared); a private
        client is built from ``policy``/``fault_plan`` when omitted.
    spill_dir:
        Local spill directory; a private temp directory is created
        lazily when omitted.  Must be worker-local — spilling to shared
        storage would defeat the no-shared-filesystem topology.
    """

    def __init__(
        self,
        base_url: str,
        *,
        client: ResilientClient | None = None,
        policy: RpcPolicy | None = None,
        fault_plan: FaultPlan | None = None,
        spill_dir: str | Path | None = None,
    ) -> None:
        base = base_url.rstrip("/")
        if not base.endswith("/api/cache"):
            base = f"{base}/api/cache"
        self.base_url = base
        self.client = (
            client
            if client is not None
            else ResilientClient(policy, fault_plan=fault_plan)
        )
        self._spill_dir = Path(spill_dir) if spill_dir is not None else None
        self.spilled = 0
        self.reconciled = 0
        self.spill_hits = 0
        self.degraded_reads = 0
        self._flushing = False
        self.client.breaker.on_close.append(self._on_circuit_close)

    def _url(self, key: str) -> str:
        return f"{self.base_url}/{key}"

    @staticmethod
    def _verify_response(resp: RpcResponse) -> None:
        """Defence in depth: the payload's *embedded* checksum must hold
        (the client already verified transport length + header digest)."""
        if resp.status == 200 and not payload_checksum_ok(resp.body):
            raise TornResponseError("cache payload failed its embedded checksum")

    # -- spill ----------------------------------------------------------------
    @property
    def spill_dir(self) -> Path:
        if self._spill_dir is None:
            self._spill_dir = Path(tempfile.mkdtemp(prefix="repro-spill-"))
        self._spill_dir.mkdir(parents=True, exist_ok=True)
        return self._spill_dir

    def _spill(self, key: str, payload: bytes, sidecar: str) -> None:
        root = self.spill_dir
        fd, tmp = tempfile.mkstemp(dir=root, suffix=".tmp")
        with os.fdopen(fd, "wb") as fh:
            fh.write(payload)
        (root / f"{key}.json.part").write_text(sidecar, encoding="utf-8")
        os.replace(root / f"{key}.json.part", root / f"{key}.json")
        os.replace(tmp, root / f"{key}.pkl")
        self.spilled += 1

    def _spill_read(self, key: str) -> bytes | None:
        if self._spill_dir is None:
            return None
        try:
            return (self._spill_dir / f"{key}.pkl").read_bytes()
        except OSError:
            return None

    def pending_spill(self) -> set[str]:
        """Spec hashes currently parked in the spill directory."""
        if self._spill_dir is None or not self._spill_dir.is_dir():
            return set()
        return {p.stem for p in self._spill_dir.glob("*.pkl")}

    def _on_circuit_close(self) -> None:
        self.flush_spill()

    def flush_spill(self) -> int:
        """Re-publish spilled entries to the server; returns how many.

        Stops at the first failure (the circuit machinery decides when
        to try again); never raises.
        """
        if self._flushing or self._spill_dir is None:
            return 0
        self._flushing = True
        flushed = 0
        try:
            for pkl in sorted(self._spill_dir.glob("*.pkl")):
                key = pkl.stem
                sidecar_path = self._spill_dir / f"{key}.json"
                try:
                    payload = pkl.read_bytes()
                    sidecar = (
                        sidecar_path.read_text("utf-8")
                        if sidecar_path.exists()
                        else "{}"
                    )
                except OSError:
                    continue
                try:
                    self._put(key, payload, sidecar)
                except RpcError:
                    break
                pkl.unlink(missing_ok=True)
                sidecar_path.unlink(missing_ok=True)
                self.reconciled += 1
                flushed += 1
        finally:
            self._flushing = False
        return flushed

    # -- backend protocol ------------------------------------------------------
    def load(self, key: str) -> bytes:
        try:
            resp = self.client.request(
                "GET",
                self._url(key),
                key=f"cache/{key}",
                ok=(200, 404),
                verify=self._verify_response,
            )
        except (CircuitOpenError, RpcError):
            spilled = self._spill_read(key)
            if spilled is not None:
                self.spill_hits += 1
                return spilled
            self.degraded_reads += 1
            raise KeyError(key) from None
        if resp.status == 404:
            spilled = self._spill_read(key)
            if spilled is not None:
                self.spill_hits += 1
                return spilled
            raise KeyError(key)
        return resp.body

    def _put(self, key: str, payload: bytes, sidecar: str) -> None:
        sidecar_bytes = sidecar.encode("utf-8")
        # Distinct request key from the GET/HEAD of the same entry:
        # reads and writes are independent operations, so they must not
        # share one backoff-jitter/fault-coin attempt clock.
        self.client.request(
            "PUT",
            self._url(key),
            data=sidecar_bytes + payload,
            headers={
                "Content-Type": "application/octet-stream",
                SIDECAR_LENGTH_HEADER: str(len(sidecar_bytes)),
            },
            key=f"cache/put/{key}",
        )

    def store(self, key: str, payload: bytes, sidecar: str) -> None:
        try:
            self._put(key, payload, sidecar)
        except RpcError:
            # Circuit open or retries exhausted: degrade to the local
            # spill cache; reconciliation re-publishes it later.
            self._spill(key, payload, sidecar)
            return
        if self.pending_spill():
            self.flush_spill()

    def contains(self, key: str) -> bool:
        try:
            resp = self.client.request(
                "HEAD", self._url(key), key=f"cache/{key}", ok=(200, 404)
            )
        except RpcError:
            return self._spill_read(key) is not None
        return resp.status == 200 or self._spill_read(key) is not None

    def quarantine(self, key: str) -> None:
        # Verification failures on the server's copy are quarantined by
        # the server itself on its next read; the client just recomputes.
        return

    def stats_dict(self) -> dict[str, int]:
        """RPC + spill counters (merged into worker/executor stats)."""
        merged = self.client.stats.as_dict()
        merged.update(
            spilled=self.spilled,
            reconciled=self.reconciled,
            spill_hits=self.spill_hits,
            degraded_reads=self.degraded_reads,
            spill_pending=len(self.pending_spill()),
        )
        return merged


class ResultCache:
    """Persistent spec-hash → :class:`RunResult` store.

    Corrupt, unreadable or version-mismatched entries are treated as
    misses, never as errors: the cache must always be safe to delete.
    Entries that fail *verification* (checksum mismatch, truncated or
    unpicklable payload) are additionally quarantined into ``corrupt/``
    so repeated sweeps do not re-read known-bad bytes and the evidence
    survives for inspection.

    Parameters
    ----------
    root:
        Cache directory (default :func:`default_cache_dir`); ignored
        when an explicit ``backend`` is given.
    fault_plan:
        Optional deterministic fault injector: reads whose
        ``corrupts_read(spec_hash, read_no)`` coin fires have their
        payload truncated on disk first, exercising the real quarantine
        path (local backends only — remote corruption is injected by the
        RPC layer instead).
    backend:
        Byte-level storage; defaults to a :class:`LocalCacheBackend`
        over ``root``.  Pass a :class:`RemoteCacheBackend` to run
        against a ``repro serve`` cache with no shared filesystem.
    """

    def __init__(
        self,
        root: str | Path | None = None,
        *,
        fault_plan: FaultPlan | None = None,
        backend: CacheBackend | None = None,
    ) -> None:
        if backend is None:
            backend = LocalCacheBackend(root if root is not None else default_cache_dir())
        self.backend = backend
        self.root = getattr(backend, "root", None)
        if isinstance(backend, LocalCacheBackend):
            # Route the backend's writes through the (historically
            # monkeypatchable) method below, resolved at call time.
            backend._write = lambda path, data: self._atomic_write(path, data)
        self.fault_plan = fault_plan
        self.hits = 0
        self.misses = 0
        #: Entries moved to ``corrupt/`` by this cache instance.
        self.quarantined = 0
        self._read_counts: dict[str, int] = {}

    def _local(self) -> LocalCacheBackend:
        if not isinstance(self.backend, LocalCacheBackend):
            raise TypeError(
                "this operation needs a local cache backend, not "
                f"{type(self.backend).__name__}"
            )
        return self.backend

    # -- key layout (local-backend compatibility surface) ----------------------
    @property
    def quarantine_dir(self) -> Path:
        return self._local().quarantine_dir

    def _payload_path(self, spec: RunSpec) -> Path:
        return self._local().payload_path(spec.spec_hash())

    def _sidecar_path(self, spec: RunSpec) -> Path:
        return self._local().sidecar_path(spec.spec_hash())

    # -- store/load ----------------------------------------------------------
    @staticmethod
    def _stored_identity(stored: object) -> dict | None:
        """Project a stored spec dict onto its identity fields.

        Stored specs carry the full :meth:`RunSpec.to_dict` (identity
        fields plus execution knobs); entries written before the knobs
        were serialised carry the identity fields alone.  Either way the
        identity projection is what must match — a result computed by one
        engine is valid for a spec requesting another.
        """
        if not isinstance(stored, dict):
            return None
        return {k: v for k, v in stored.items() if k not in EXECUTION_FIELDS}

    @staticmethod
    def _load_payload(path: Path) -> object:
        """Read and verify one payload file.

        Raises :class:`FileNotFoundError` on a plain miss and
        :class:`CacheCorruptionError` on anything that means the bytes
        on disk cannot be trusted.
        """
        with path.open("rb") as fh:
            raw = fh.read()
        return verify_payload(raw, path.name)

    def _quarantine(self, spec: RunSpec) -> None:
        """Move a failed-verification entry out of the live set."""
        self.backend.quarantine(spec.spec_hash())
        self.quarantined += 1

    def _maybe_inject_corruption(self, spec: RunSpec) -> None:
        """Deterministically truncate the payload when the fault coin fires."""
        if self.fault_plan is None or not isinstance(self.backend, LocalCacheBackend):
            return
        key = spec.spec_hash()
        path = self.backend.payload_path(key)
        if not path.exists():
            return
        read_no = self._read_counts.get(key, 0)
        self._read_counts[key] = read_no + 1
        if self.fault_plan.corrupts_read(key, read_no):
            data = path.read_bytes()
            path.write_bytes(data[: max(1, len(data) // 2)])

    def get(self, spec: RunSpec) -> RunResult | None:
        """Return the cached result for ``spec``, or None on a miss.

        Never raises: a payload that fails verification is quarantined
        (locally: into ``corrupt/``) and reads as a miss, so the caller
        recomputes; an unreachable remote backend likewise reads as a
        miss (graceful degradation).
        """
        key = spec.spec_hash()
        self._maybe_inject_corruption(spec)
        try:
            raw = self.backend.load(key)
        except KeyError:
            self.misses += 1
            return None
        except OSError:
            self.misses += 1
            return None
        try:
            payload = verify_payload(raw, key)
        except CacheCorruptionError:
            self._quarantine(spec)
            self.misses += 1
            return None
        if (
            not isinstance(payload, dict)
            or payload.get("version") != CACHE_VERSION
            or self._stored_identity(payload.get("spec")) != spec.identity_dict()
            or not isinstance(payload.get("result"), RunResult)
        ):
            self.misses += 1
            return None
        self.hits += 1
        return payload["result"]

    def put(self, spec: RunSpec, result: RunResult) -> None:
        """Store ``result`` under ``spec``'s hash (atomic writes).

        The JSON sidecar is written *before* the pickled payload: the
        payload is what :meth:`get` keys a hit on, so after a crash
        between the two writes the entry reads as a clean miss (an
        orphan sidecar is inert) rather than as a payload whose sidecar
        is missing or stale.  The payload itself carries a SHA-256
        header over its pickled body so later reads can verify it.
        """
        sidecar = json.dumps(
            {
                "version": CACHE_VERSION,
                "spec": spec.to_dict(),
                "summary": result.summary.as_dict(),
            },
            indent=2,
            sort_keys=True,
        )
        body = pickle.dumps(
            {
                "version": CACHE_VERSION,
                "spec": spec.to_dict(),
                "result": result,
            }
        )
        header = hashlib.sha256(body).hexdigest().encode("ascii") + b"\n"
        self.backend.store(spec.spec_hash(), header + body, sidecar)

    def _atomic_write(self, path: Path, data: bytes) -> None:
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(data)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # -- remote-backend passthroughs ------------------------------------------
    def rpc_stats(self) -> dict[str, int]:
        """RPC/spill counters when the backend is remote, else ``{}``."""
        if isinstance(self.backend, RemoteCacheBackend):
            return self.backend.stats_dict()
        return {}

    def flush_spill(self) -> int:
        """Reconcile a remote backend's spill cache; no-op locally."""
        if isinstance(self.backend, RemoteCacheBackend):
            return self.backend.flush_spill()
        return 0

    def pending_spill(self) -> set[str]:
        if isinstance(self.backend, RemoteCacheBackend):
            return self.backend.pending_spill()
        return set()

    # -- maintenance ----------------------------------------------------------
    def __len__(self) -> int:
        return self._local().entry_count()

    def __contains__(self, spec: RunSpec) -> bool:
        return self.backend.contains(spec.spec_hash())

    def quarantined_entries(self) -> int:
        """Distinct spec hashes currently held in ``corrupt/``."""
        return self._local().quarantined_entries()

    def clear(self) -> ClearStats:
        """Delete every cache entry; return a :class:`ClearStats` count.

        An *entry* is one spec hash, counted once whether its payload,
        its sidecar or both were present — so an orphan sidecar left by
        an interrupted :meth:`put` is counted too, not silently removed.
        Stale ``*.tmp`` files from writes that never reached
        ``os.replace`` are swept as well (they have no entry semantics
        and are not counted in the int value).  Quarantined entries in
        ``corrupt/`` are removed and reported via
        :attr:`ClearStats.quarantined`.
        """
        return self._local().clear()
