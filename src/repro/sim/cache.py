"""On-disk result cache keyed by canonical :class:`RunSpec` hashes.

Simulations are deterministic functions of their spec, so a finished
:class:`~repro.sim.runner.RunResult` can be reused whenever the same spec
is executed again — across processes, sessions and machines.  The cache
stores one pickled payload per spec hash plus a small JSON sidecar (the
spec and its headline summary) so cached results remain inspectable with
ordinary shell tools.

Robustness contract (the distributed-sweep substrate relies on it):

* **Checksums** — every payload is written with a SHA-256 header line;
  reads verify it, so a truncated or bit-flipped payload is *detected*
  (:class:`~repro.sim.faults.CacheCorruptionError`), not unpickled into
  garbage.  Pre-checksum payloads (no header) are still readable.
* **Atomic writes** — payloads and sidecars land via write-then-rename;
  a crash mid-write leaves a swept ``*.tmp``, never a half entry.
* **Quarantine** — an entry that fails verification is moved into the
  ``corrupt/`` subdirectory (payload + sidecar, preserved for forensics)
  and the read falls through to a recompute: :meth:`get` returns None,
  it never raises.
* **Fault injection** — a seeded :class:`~repro.sim.faults.FaultPlan`
  can deterministically truncate payloads at read time, so the whole
  detect → quarantine → recompute path is replayable in tests.

The default location is ``~/.cache/repro-sim`` and can be overridden with
the ``REPRO_CACHE_DIR`` environment variable or per-cache with an explicit
root path.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from pathlib import Path

from .faults import CacheCorruptionError, FaultPlan
from .runner import RunResult
from .specs import EXECUTION_FIELDS, RunSpec

__all__ = [
    "CACHE_VERSION",
    "CacheCorruptionError",
    "ClearStats",
    "ResultCache",
    "default_cache_dir",
]

# Version 2: the seeded adversaries' default RNG protocol flipped to the
# batched stream (rng_version=2).  Entries cached under version 1 may hold
# results for specs whose dicts predate explicit rng_version recording, so
# they cannot be trusted against the re-normalised spec hashes.  (The
# checksum header added later is a *file-format* wrapper, detected per
# file, and did not invalidate version-2 entries.)
CACHE_VERSION = 2

#: Length of the payload checksum header: 64 hex chars + ``\n``.
_CHECKSUM_HEADER_LEN = 65


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro-sim``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-sim"


class ClearStats(int):
    """Return value of :meth:`ResultCache.clear`.

    An ``int`` (the number of live entries removed, back-compatible with
    older callers) carrying the full sweep breakdown: quarantined entries
    removed from ``corrupt/`` and stale ``*.tmp`` files swept.
    """

    entries: int
    quarantined: int
    tmp_swept: int

    def __new__(cls, entries: int, quarantined: int, tmp_swept: int) -> "ClearStats":
        self = super().__new__(cls, entries)
        self.entries = entries
        self.quarantined = quarantined
        self.tmp_swept = tmp_swept
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ClearStats(entries={self.entries}, quarantined={self.quarantined}, "
            f"tmp_swept={self.tmp_swept})"
        )


class ResultCache:
    """Persistent spec-hash → :class:`RunResult` store.

    Corrupt, unreadable or version-mismatched entries are treated as
    misses, never as errors: the cache must always be safe to delete.
    Entries that fail *verification* (checksum mismatch, truncated or
    unpicklable payload) are additionally quarantined into ``corrupt/``
    so repeated sweeps do not re-read known-bad bytes and the evidence
    survives for inspection.

    Parameters
    ----------
    root:
        Cache directory (default :func:`default_cache_dir`).
    fault_plan:
        Optional deterministic fault injector: reads whose
        ``corrupts_read(spec_hash, read_no)`` coin fires have their
        payload truncated on disk first, exercising the real quarantine
        path.
    """

    def __init__(
        self, root: str | Path | None = None, *, fault_plan: FaultPlan | None = None
    ) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.root.mkdir(parents=True, exist_ok=True)
        self.fault_plan = fault_plan
        self.hits = 0
        self.misses = 0
        #: Entries moved to ``corrupt/`` by this cache instance.
        self.quarantined = 0
        self._read_counts: dict[str, int] = {}

    # -- key layout ----------------------------------------------------------
    @property
    def quarantine_dir(self) -> Path:
        return self.root / "corrupt"

    def _payload_path(self, spec: RunSpec) -> Path:
        return self.root / f"{spec.spec_hash()}.pkl"

    def _sidecar_path(self, spec: RunSpec) -> Path:
        return self.root / f"{spec.spec_hash()}.json"

    # -- store/load ----------------------------------------------------------
    @staticmethod
    def _stored_identity(stored: object) -> dict | None:
        """Project a stored spec dict onto its identity fields.

        Stored specs carry the full :meth:`RunSpec.to_dict` (identity
        fields plus execution knobs); entries written before the knobs
        were serialised carry the identity fields alone.  Either way the
        identity projection is what must match — a result computed by one
        engine is valid for a spec requesting another.
        """
        if not isinstance(stored, dict):
            return None
        return {k: v for k, v in stored.items() if k not in EXECUTION_FIELDS}

    @staticmethod
    def _load_payload(path: Path) -> object:
        """Read and verify one payload file.

        Raises :class:`FileNotFoundError` on a plain miss and
        :class:`CacheCorruptionError` on anything that means the bytes
        on disk cannot be trusted: checksum mismatch, truncation, or an
        unpicklable body.  (Unpickling raises a zoo of types —
        UnpicklingError, EOFError, ValueError, AttributeError, ... — all
        of which are corruption from the caller's point of view.)
        """
        with path.open("rb") as fh:
            raw = fh.read()
        body = raw
        header = raw[:_CHECKSUM_HEADER_LEN]
        if len(header) == _CHECKSUM_HEADER_LEN and header.endswith(b"\n"):
            digest = header[:-1]
            try:
                digest_text = digest.decode("ascii")
                is_checksum = len(digest_text) == 64 and all(
                    c in "0123456789abcdef" for c in digest_text
                )
            except UnicodeDecodeError:
                is_checksum = False
            if is_checksum:
                body = raw[_CHECKSUM_HEADER_LEN:]
                actual = hashlib.sha256(body).hexdigest()
                if actual != digest_text:
                    raise CacheCorruptionError(
                        f"payload checksum mismatch in {path.name}: "
                        f"header {digest_text[:12]}..., body {actual[:12]}..."
                    )
        try:
            return pickle.loads(body)
        except Exception as exc:
            raise CacheCorruptionError(
                f"unreadable payload in {path.name}: {type(exc).__name__}: {exc}"
            ) from exc

    def _quarantine(self, spec: RunSpec) -> None:
        """Move a failed-verification entry into ``corrupt/``."""
        self.quarantine_dir.mkdir(parents=True, exist_ok=True)
        for path in (self._payload_path(spec), self._sidecar_path(spec)):
            if path.exists():
                os.replace(path, self.quarantine_dir / path.name)
        self.quarantined += 1

    def _maybe_inject_corruption(self, spec: RunSpec, path: Path) -> None:
        """Deterministically truncate the payload when the fault coin fires."""
        if self.fault_plan is None or not path.exists():
            return
        key = spec.spec_hash()
        read_no = self._read_counts.get(key, 0)
        self._read_counts[key] = read_no + 1
        if self.fault_plan.corrupts_read(key, read_no):
            data = path.read_bytes()
            path.write_bytes(data[: max(1, len(data) // 2)])

    def get(self, spec: RunSpec) -> RunResult | None:
        """Return the cached result for ``spec``, or None on a miss.

        Never raises: a payload that fails verification is quarantined
        into ``corrupt/`` and reads as a miss, so the caller recomputes.
        """
        path = self._payload_path(spec)
        self._maybe_inject_corruption(spec, path)
        try:
            payload = self._load_payload(path)
        except CacheCorruptionError:
            self._quarantine(spec)
            self.misses += 1
            return None
        except OSError:
            self.misses += 1
            return None
        if (
            not isinstance(payload, dict)
            or payload.get("version") != CACHE_VERSION
            or self._stored_identity(payload.get("spec")) != spec.identity_dict()
            or not isinstance(payload.get("result"), RunResult)
        ):
            self.misses += 1
            return None
        self.hits += 1
        return payload["result"]

    def put(self, spec: RunSpec, result: RunResult) -> None:
        """Store ``result`` under ``spec``'s hash (atomic writes).

        The JSON sidecar is written *before* the pickled payload: the
        payload is what :meth:`get` keys a hit on, so after a crash
        between the two writes the entry reads as a clean miss (an
        orphan sidecar is inert) rather than as a payload whose sidecar
        is missing or stale.  The payload itself carries a SHA-256
        header over its pickled body so later reads can verify it.
        """
        sidecar = json.dumps(
            {
                "version": CACHE_VERSION,
                "spec": spec.to_dict(),
                "summary": result.summary.as_dict(),
            },
            indent=2,
            sort_keys=True,
        )
        self._atomic_write(self._sidecar_path(spec), sidecar.encode("utf-8"))
        body = pickle.dumps(
            {
                "version": CACHE_VERSION,
                "spec": spec.to_dict(),
                "result": result,
            }
        )
        header = hashlib.sha256(body).hexdigest().encode("ascii") + b"\n"
        self._atomic_write(self._payload_path(spec), header + body)

    def _atomic_write(self, path: Path, data: bytes) -> None:
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(data)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # -- maintenance ----------------------------------------------------------
    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.pkl"))

    def __contains__(self, spec: RunSpec) -> bool:
        return self._payload_path(spec).exists()

    def quarantined_entries(self) -> int:
        """Distinct spec hashes currently held in ``corrupt/``."""
        if not self.quarantine_dir.is_dir():
            return 0
        return len({p.stem for p in self.quarantine_dir.iterdir() if p.is_file()})

    def clear(self) -> ClearStats:
        """Delete every cache entry; return a :class:`ClearStats` count.

        An *entry* is one spec hash, counted once whether its payload,
        its sidecar or both were present — so an orphan sidecar left by
        an interrupted :meth:`put` is counted too, not silently removed.
        Stale ``*.tmp`` files from writes that never reached
        ``os.replace`` are swept as well (they have no entry semantics
        and are not counted in the int value).  Quarantined entries in
        ``corrupt/`` are removed and reported via
        :attr:`ClearStats.quarantined`.
        """
        entries: set[str] = set()
        for pattern in ("*.pkl", "*.json"):
            for path in self.root.glob(pattern):
                path.unlink(missing_ok=True)
                entries.add(path.stem)
        tmp_swept = 0
        for path in self.root.glob("*.tmp"):
            path.unlink(missing_ok=True)
            tmp_swept += 1
        quarantined: set[str] = set()
        if self.quarantine_dir.is_dir():
            for path in list(self.quarantine_dir.iterdir()):
                if path.is_file():
                    quarantined.add(path.stem)
                    path.unlink(missing_ok=True)
            try:
                self.quarantine_dir.rmdir()
            except OSError:
                pass
        return ClearStats(len(entries), len(quarantined), tmp_swept)
