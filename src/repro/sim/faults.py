"""Deterministic fault injection for the orchestration layer.

A sweep should survive every failure mode a multi-machine deployment can
throw at it — a worker dying mid-spec, a transient exception inside a
dispatch, a cache payload truncated on disk, a worker stalling past its
deadline — and produce results *bit-identical* to a fault-free run.  To
pin that with the same equivalence discipline the engine stack uses
(lowered ≡ block ≡ kernel ≡ reference), faults must be replayable: a
:class:`FaultPlan` derives every fault decision from a SHA-256 coin over
``(seed, fault kind, spec hash, attempt)``, so a plan injects exactly
the same faults wherever and whenever it is replayed — independent of
scheduling order, worker count or wall-clock time.

Like the ``engine``/``plan_chunk``/``quiescence_skip``/``lowering``
execution knobs, a fault plan rides on :class:`~repro.sim.specs.RunSpec`
*outside* the spec's identity: ``fault_plan`` round-trips through
``to_dict``/``from_dict`` (it must reach worker processes) but never
enters ``identity_dict``/``spec_hash`` — injecting faults cannot change
what a run computes, only how many attempts computing it takes.

Fault kinds:

``kill``
    The worker process exits hard (``os._exit``) mid-spec, breaking the
    pool.  In the serial in-process path a kill degrades to a
    :class:`TransientFault` (killing the orchestrator itself would not
    be an injection, it would be sabotage).
``stall``
    The worker sleeps ``stall_seconds`` before executing — long enough
    to blow a supervised per-spec deadline, harmless when no deadline is
    armed.
``transient``
    A :class:`TransientFault` is raised instead of executing.
``corrupt``
    :class:`~repro.sim.cache.ResultCache` truncates the stored payload
    before reading it, exercising the checksum → quarantine →
    recompute path.
``lease``
    A distributed-sweep worker "dies" mid-shard: it stops heartbeating
    and abandons its claimed :class:`~repro.sim.queue.WorkQueue` lease
    without completing or releasing it, forcing the lease to expire and
    the shard to be *stolen* by another worker.  Applied by the worker
    loop (:func:`repro.sim.worker.run_worker`), keyed on the shard id
    and its takeover count rather than a spec hash.
``net-refuse`` / ``net-timeout`` / ``net-torn`` / ``net-http-error`` /
``net-corrupt``
    Network faults injected around the distributed service's RPC calls:
    a refused connection, a request timeout, a torn (truncated)
    response, an HTTP 500, or a bit-flipped body.  Drawn via
    :meth:`FaultPlan.net_fault` over ``(seed, kind, request key,
    attempt)`` and applied on *both* sides — the
    :class:`~repro.sim.netclient.ResilientClient` simulates them before/
    after real exchanges, and the ``repro serve`` HTTP handlers inflict
    them on real responses — so the retry/backoff/circuit-breaker/
    checksum machinery is exercised end to end.  Like every other kind
    they are budgeted per key, so bounded retries provably converge.

Every kind is budgeted: a spec suffers at most ``fault_budget`` faulted
attempts, so any retry policy with ``max_retries >= fault_budget``
provably converges on the fault-free result.  In the distributed
setting an attempt counter cannot survive a worker crash, so the coin
is drawn over the *effective* attempt ``attempt + attempt_offset``: a
worker executing a shard stolen ``t`` times runs the specs under
``with_offset(t)``, which advances every spec's coin stream past the
attempts the dead workers already burned — the budget bounds total
faults per spec across the whole fleet, not per process.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass, field, replace
from typing import Any, Mapping

__all__ = [
    "CacheCorruptionError",
    "FailedResult",
    "FaultPlan",
    "InjectedFault",
    "TransientFault",
    "mark_worker_process",
]


class InjectedFault(RuntimeError):
    """Base class of every deliberately injected failure."""


class TransientFault(InjectedFault):
    """A retryable failure: re-executing the same spec is expected to work."""


class CacheCorruptionError(RuntimeError):
    """A cache payload failed verification (truncated, unpicklable, or
    checksum mismatch).  Raised by the low-level payload loader and routed
    through the cache's quarantine path — callers of
    :meth:`ResultCache.get` observe a miss, never this error."""


# Worker processes are marked via the pool initializer so a kill fault
# knows whether ``os._exit`` takes down a disposable worker (intended) or
# the orchestrating process itself (never).
_IN_WORKER = False


def mark_worker_process() -> None:
    """Pool initializer: flag this process as a disposable worker."""
    global _IN_WORKER
    _IN_WORKER = True


def in_worker_process() -> bool:
    return _IN_WORKER


#: Exit status used by injected worker kills (distinctive in core dumps /
#: pool diagnostics; any nonzero status breaks the pool the same way).
KILL_EXIT_STATUS = 86

#: Worker-side fault kinds in the order they are checked; the first kind
#: whose coin fires wins, so one attempt suffers at most one fault.
WORKER_FAULT_KINDS = ("kill", "stall", "transient")

#: Network fault kinds in check order; as above, the first coin to fire
#: wins, so one request attempt suffers at most one network disaster.
NET_FAULT_KINDS = ("refuse", "timeout", "torn", "http_error", "corrupt")


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, replayable schedule of injected faults.

    Rates are per-attempt probabilities in ``[0, 1]``; the decision for
    ``(kind, spec_hash, attempt)`` is a pure function of the plan's seed,
    so replaying a plan — in any process, in any order — injects exactly
    the same faults.  ``fault_budget`` bounds the number of faulted
    attempts per spec (and corrupted reads per cache entry), guaranteeing
    convergence under bounded retries.
    """

    seed: int = 0
    kill_rate: float = 0.0
    stall_rate: float = 0.0
    transient_rate: float = 0.0
    corrupt_rate: float = 0.0
    lease_death_rate: float = 0.0
    net_refuse_rate: float = 0.0
    net_timeout_rate: float = 0.0
    net_torn_rate: float = 0.0
    net_http_error_rate: float = 0.0
    net_corrupt_rate: float = 0.0
    stall_seconds: float = 1.0
    fault_budget: int = 1
    #: Added to every ``attempt`` before budgeting and coin draws.  The
    #: distributed worker loop sets it to a shard's takeover count so a
    #: stolen shard resumes the fault schedule where the dead worker
    #: left off instead of replaying (and re-suffering) attempt 0.
    attempt_offset: int = 0

    def __post_init__(self) -> None:
        for name in (
            "kill_rate",
            "stall_rate",
            "transient_rate",
            "corrupt_rate",
            "lease_death_rate",
            "net_refuse_rate",
            "net_timeout_rate",
            "net_torn_rate",
            "net_http_error_rate",
            "net_corrupt_rate",
        ):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if self.fault_budget < 0:
            raise ValueError("fault_budget must be non-negative")
        if self.stall_seconds < 0:
            raise ValueError("stall_seconds must be non-negative")
        if self.attempt_offset < 0:
            raise ValueError("attempt_offset must be non-negative")

    # -- the deterministic coin ----------------------------------------------
    def _coin(self, kind: str, spec_hash: str, attempt: int) -> float:
        digest = hashlib.sha256(
            f"{self.seed}:{kind}:{spec_hash}:{attempt}".encode("utf-8")
        ).digest()
        return int.from_bytes(digest[:8], "big") / 2**64

    def _rate(self, kind: str) -> float:
        return {
            "kill": self.kill_rate,
            "stall": self.stall_rate,
            "transient": self.transient_rate,
            "corrupt": self.corrupt_rate,
            "lease": self.lease_death_rate,
            "net-refuse": self.net_refuse_rate,
            "net-timeout": self.net_timeout_rate,
            "net-torn": self.net_torn_rate,
            "net-http_error": self.net_http_error_rate,
            "net-corrupt": self.net_corrupt_rate,
        }[kind]

    def decide(self, kind: str, spec_hash: str, attempt: int) -> bool:
        """Whether fault ``kind`` fires for ``spec_hash`` on ``attempt``.

        Pure and replayable: the same arguments always return the same
        answer, in any process.  The decision is keyed on the *effective*
        attempt ``attempt + attempt_offset``; effective attempts at or
        beyond ``fault_budget`` never fault.
        """
        effective = attempt + self.attempt_offset
        if effective >= self.fault_budget:
            return False
        rate = self._rate(kind)
        return rate > 0.0 and self._coin(kind, spec_hash, effective) < rate

    @property
    def active(self) -> bool:
        """Whether any *worker/cache/lease* fault can fire (what the
        supervised executor stamps on specs; network coins are drawn by
        the RPC layer and never ride a spec)."""
        return any(
            (
                self.kill_rate,
                self.stall_rate,
                self.transient_rate,
                self.corrupt_rate,
                self.lease_death_rate,
            )
        )

    @property
    def net_active(self) -> bool:
        """Whether any network fault can fire."""
        return any(
            (
                self.net_refuse_rate,
                self.net_timeout_rate,
                self.net_torn_rate,
                self.net_http_error_rate,
                self.net_corrupt_rate,
            )
        )

    def net_fault(self, key: str, attempt: int) -> str | None:
        """The network fault (if any) for request ``key``, attempt ``attempt``.

        Drawn from the *base* coin stream like :meth:`lease_death` —
        ``attempt_offset`` is a spec-attempt shift and does not apply;
        the caller's per-key request counter is already the global
        clock.  Budgeted: attempts at or beyond ``fault_budget`` never
        fault, so every bounded retry loop converges.
        """
        if attempt >= self.fault_budget:
            return None
        for kind in NET_FAULT_KINDS:
            rate = self._rate(f"net-{kind}")
            if rate > 0.0 and self._coin(f"net-{kind}", key, attempt) < rate:
                return kind
        return None

    def with_offset(self, offset: int) -> "FaultPlan":
        """The same plan shifted to effective attempt ``offset``.

        The distributed worker loop calls this with a shard's takeover
        count before stamping specs, so every process executing the
        shard draws from one global per-spec coin stream.
        """
        return replace(self, attempt_offset=offset)

    def lease_death(self, shard_id: str, takeovers: int) -> bool:
        """Whether the worker claiming ``shard_id`` abandons it mid-shard.

        Keyed on the takeover count (not the worker's identity), so a
        stolen shard's coin advances and ``fault_budget`` bounds how
        often one shard can be orphaned.  Drawn from the *base* stream —
        ``attempt_offset`` does not shift it, the takeover count is
        already the global counter.
        """
        effective = takeovers
        if effective >= self.fault_budget:
            return False
        rate = self.lease_death_rate
        return rate > 0.0 and self._coin("lease", shard_id, effective) < rate

    # -- worker-side application ---------------------------------------------
    def worker_fault(self, spec_hash: str, attempt: int) -> str | None:
        """The worker-side fault (if any) for this attempt.

        The supervisor calls this too — with identical answers — to
        *attribute* pool breakage to the spec whose kill fired.
        """
        for kind in WORKER_FAULT_KINDS:
            if self.decide(kind, spec_hash, attempt):
                return kind
        return None

    def apply_in_worker(self, spec_hash: str, attempt: int) -> None:
        """Inject this attempt's fault (called at the top of ``execute_spec``).

        ``kill`` hard-exits worker processes only; in-process (serial)
        execution degrades it to a :class:`TransientFault` so the
        orchestrator survives.  ``stall`` sleeps and then lets the run
        proceed — the spec completes normally unless a supervised
        deadline kills it first.
        """
        kind = self.worker_fault(spec_hash, attempt)
        if kind is None:
            return
        if kind == "kill":
            if in_worker_process():
                os._exit(KILL_EXIT_STATUS)
            raise TransientFault(
                f"injected worker-kill for {spec_hash[:12]} attempt {attempt} "
                "(degraded to a transient fault in serial mode)"
            )
        if kind == "stall":
            time.sleep(self.stall_seconds)
            return
        raise TransientFault(
            f"injected transient fault for {spec_hash[:12]} attempt {attempt}"
        )

    def corrupts_read(self, spec_hash: str, read_no: int) -> bool:
        """Whether cache read number ``read_no`` of this entry is corrupted."""
        return self.decide("corrupt", spec_hash, read_no)

    # -- serialisation --------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "kill_rate": self.kill_rate,
            "stall_rate": self.stall_rate,
            "transient_rate": self.transient_rate,
            "corrupt_rate": self.corrupt_rate,
            "lease_death_rate": self.lease_death_rate,
            "net_refuse_rate": self.net_refuse_rate,
            "net_timeout_rate": self.net_timeout_rate,
            "net_torn_rate": self.net_torn_rate,
            "net_http_error_rate": self.net_http_error_rate,
            "net_corrupt_rate": self.net_corrupt_rate,
            "stall_seconds": self.stall_seconds,
            "fault_budget": self.fault_budget,
            "attempt_offset": self.attempt_offset,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultPlan":
        return cls(
            seed=int(data.get("seed", 0)),
            kill_rate=float(data.get("kill_rate", 0.0)),
            stall_rate=float(data.get("stall_rate", 0.0)),
            transient_rate=float(data.get("transient_rate", 0.0)),
            corrupt_rate=float(data.get("corrupt_rate", 0.0)),
            lease_death_rate=float(data.get("lease_death_rate", 0.0)),
            net_refuse_rate=float(data.get("net_refuse_rate", 0.0)),
            net_timeout_rate=float(data.get("net_timeout_rate", 0.0)),
            net_torn_rate=float(data.get("net_torn_rate", 0.0)),
            net_http_error_rate=float(data.get("net_http_error_rate", 0.0)),
            net_corrupt_rate=float(data.get("net_corrupt_rate", 0.0)),
            stall_seconds=float(data.get("stall_seconds", 1.0)),
            fault_budget=int(data.get("fault_budget", 1)),
            attempt_offset=int(data.get("attempt_offset", 0)),
        )

    def stamp(self, attempt: int) -> dict:
        """The plan plus the attempt number, as shipped on a spec's
        ``fault_plan`` execution field to the executing process."""
        data = self.to_dict()
        data["attempt"] = int(attempt)
        return data

    @staticmethod
    def apply_stamp(stamp: Mapping[str, Any], spec_hash: str) -> None:
        """Replay a shipped stamp inside the executing process."""
        FaultPlan.from_dict(stamp).apply_in_worker(
            spec_hash, int(stamp.get("attempt", 0))
        )


@dataclass(slots=True)
class FailedResult:
    """A quarantined spec: every attempt failed, the sweep moved on.

    Takes the place of a :class:`~repro.sim.runner.RunResult` in a result
    list so one poison spec aborts nothing.  Never cached; skipped
    (deterministically, with a warning) by ``worst_case_over``; rendered
    as a FAILED row by the sweep table.
    """

    spec: Any  # RunSpec (typed loosely to keep this module import-free)
    error: str
    error_type: str
    attempts: int
    fault_events: list[str] = field(default_factory=list)

    #: Discriminator mirrored by ``RunResult.failed`` (False there), so
    #: callers can branch without importing this type.
    failed: bool = True

    @property
    def spec_hash(self) -> str:
        return self.spec.spec_hash()

    @property
    def label(self) -> str:
        return self.spec.label or f"{self.spec.algorithm} vs {self.spec.adversary}"

    def describe(self) -> str:
        return (
            f"FAILED after {self.attempts} attempt(s): "
            f"{self.error_type}: {self.error}"
        )
