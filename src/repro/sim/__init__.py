"""Simulation harness: runner, parameter sweeps, experiments and reporting.

The orchestration layer is spec-first: declarative :class:`RunSpec`
descriptions of runs can be executed serially, fanned out over a process
pool by :class:`ParallelExecutor`, and cached on disk by
:class:`ResultCache`.  The supervised layer on top makes that stack
fault-tolerant: a seeded :class:`FaultPlan` injects deterministic,
replayable failures (worker kills, transient exceptions, cache
corruption, stalls), an :class:`ExecutionPolicy` retries/quarantines
them, and a :class:`SweepManifest` checkpoints sweep status for resume.
"""

from .cache import CacheCorruptionError, ClearStats, ResultCache, default_cache_dir
from .faults import FailedResult, FaultPlan, InjectedFault, TransientFault
from .manifest import SweepManifest
from .parallel import (
    ExecutionPolicy,
    ExecutorStats,
    ParallelExecutor,
    WorkerCrashError,
    default_chunk_size,
    default_worker_count,
    run_specs,
)
from .progress import ProgressTicker
from .runner import RunResult, resolve_engine, run_simulation, worst_case_over
from .specs import (
    RunSpec,
    available_adversaries,
    execute_spec,
    execute_spec_batch,
    make_adversary,
    register_adversary,
    spec_fragment,
)
from .sweep import SweepPoint, SweepSeries, sweep

__all__ = [
    "CacheCorruptionError",
    "ClearStats",
    "ExecutionPolicy",
    "ExecutorStats",
    "FailedResult",
    "FaultPlan",
    "InjectedFault",
    "ParallelExecutor",
    "ProgressTicker",
    "ResultCache",
    "RunResult",
    "RunSpec",
    "SweepManifest",
    "SweepPoint",
    "SweepSeries",
    "TransientFault",
    "WorkerCrashError",
    "available_adversaries",
    "default_cache_dir",
    "default_chunk_size",
    "default_worker_count",
    "execute_spec",
    "execute_spec_batch",
    "make_adversary",
    "register_adversary",
    "resolve_engine",
    "run_simulation",
    "run_specs",
    "spec_fragment",
    "sweep",
    "worst_case_over",
]
