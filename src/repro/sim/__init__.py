"""Simulation harness: runner, parameter sweeps, experiments and reporting."""

from .runner import RunResult, run_simulation, worst_case_over
from .sweep import SweepPoint, SweepSeries, sweep

__all__ = [
    "RunResult",
    "SweepPoint",
    "SweepSeries",
    "run_simulation",
    "sweep",
    "worst_case_over",
]
