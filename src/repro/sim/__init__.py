"""Simulation harness: runner, parameter sweeps, experiments and reporting.

The orchestration layer is spec-first: declarative :class:`RunSpec`
descriptions of runs can be executed serially, fanned out over a process
pool by :class:`ParallelExecutor`, and cached on disk by
:class:`ResultCache`.  The supervised layer on top makes that stack
fault-tolerant: a seeded :class:`FaultPlan` injects deterministic,
replayable failures (worker kills, transient exceptions, cache
corruption, stalls), an :class:`ExecutionPolicy` retries/quarantines
them, and a :class:`SweepManifest` checkpoints sweep status for resume.

The distributed layer turns that harness into a service: a filesystem
:class:`WorkQueue` shards spec batches into lease-based work items
(atomic rename-to-claim, TTL heartbeats, expired-lease stealing),
:func:`run_worker` is the ``repro worker`` loop executing claimed shards
through the supervised executor into a shared cache, and
:class:`SweepService` is the ``repro serve`` front end accepting spec
batches over HTTP with graceful local fallback when no worker is alive.

The network itself is a fault domain: :class:`ResilientClient` wraps
every RPC with timeouts, deterministic retry/backoff and a circuit
breaker, :class:`RemoteCacheBackend` + :class:`RemoteWorkQueue` let
workers run with **no shared filesystem** (spilling locally and
reconciling when an open circuit closes), and :class:`FaultPlan` network
coins inject refused/torn/corrupt/500 exchanges deterministically on
both client and server.
"""

from .cache import (
    CacheBackend,
    CacheCorruptionError,
    ClearStats,
    LocalCacheBackend,
    RemoteCacheBackend,
    ResultCache,
    default_cache_dir,
)
from .faults import FailedResult, FaultPlan, InjectedFault, TransientFault
from .manifest import SweepManifest
from .netclient import (
    CircuitBreaker,
    CircuitOpenError,
    ResilientClient,
    RpcError,
    RpcHttpError,
    RpcPolicy,
    RpcStats,
    RpcUnavailableError,
    TornResponseError,
)
from .parallel import (
    ExecutionPolicy,
    ExecutorStats,
    ParallelExecutor,
    WorkerCrashError,
    default_chunk_size,
    default_worker_count,
    run_specs,
)
from .progress import ProgressTicker
from .queue import (
    LeaseLostError,
    RemoteWorkLease,
    RemoteWorkQueue,
    WorkLease,
    WorkQueue,
    collect_results,
    shard_index,
    status_record,
)
from .runner import RunResult, resolve_engine, run_simulation, worst_case_over
from .service import SweepJob, SweepService, make_server
from .specs import (
    RunSpec,
    available_adversaries,
    execute_spec,
    execute_spec_batch,
    make_adversary,
    register_adversary,
    spec_fragment,
)
from .sweep import SweepPoint, SweepSeries, sweep
from .worker import WorkerStats, process_lease, run_worker

__all__ = [
    "CacheBackend",
    "CacheCorruptionError",
    "CircuitBreaker",
    "CircuitOpenError",
    "ClearStats",
    "ExecutionPolicy",
    "ExecutorStats",
    "FailedResult",
    "FaultPlan",
    "InjectedFault",
    "LeaseLostError",
    "LocalCacheBackend",
    "ParallelExecutor",
    "ProgressTicker",
    "RemoteCacheBackend",
    "RemoteWorkLease",
    "RemoteWorkQueue",
    "ResilientClient",
    "ResultCache",
    "RpcError",
    "RpcHttpError",
    "RpcPolicy",
    "RpcStats",
    "RpcUnavailableError",
    "RunResult",
    "RunSpec",
    "SweepJob",
    "SweepManifest",
    "SweepPoint",
    "SweepSeries",
    "SweepService",
    "TornResponseError",
    "TransientFault",
    "WorkLease",
    "WorkQueue",
    "WorkerCrashError",
    "WorkerStats",
    "available_adversaries",
    "collect_results",
    "default_cache_dir",
    "default_chunk_size",
    "default_worker_count",
    "execute_spec",
    "execute_spec_batch",
    "make_adversary",
    "make_server",
    "process_lease",
    "register_adversary",
    "resolve_engine",
    "run_simulation",
    "run_specs",
    "shard_index",
    "spec_fragment",
    "status_record",
    "sweep",
    "worst_case_over",
]
