"""``repro serve``: an HTTP front end over the distributed sweep queue.

Stdlib only (``http.server`` + ``urllib``) — the service accepts batches
of :class:`~repro.sim.specs.RunSpec` dicts over HTTP, shards them into a
:class:`~repro.sim.queue.WorkQueue` for ``repro worker`` processes to
claim, tracks progress in a server-side
:class:`~repro.sim.manifest.SweepManifest`, and streams newline-delimited
JSON progress snapshots.  It is also the **cache and queue authority**
for workers running with no shared filesystem: the ``/api/cache``
endpoints serve and accept checksummed result payloads, and the
``/api/queue`` endpoints expose claim/heartbeat/complete/abandon over
HTTP (token-addressed leases backed by the same on-disk queue, so
HTTP and shared-filesystem workers can mix freely).  Robustness posture:

* **Work stealing** — the monitor thread reclaims expired leases, so a
  killed worker's shard returns to ``pending/`` for the survivors.
  Remote leases are ordinary leases: a worker whose heartbeats stop
  (crash, partition, open circuit) lapses its TTL and is stolen.
* **Local fallback** — when a job stalls (work pending, nothing leased,
  no progress for ``fallback_after`` seconds) the server claims shards
  itself and executes them in-process.  A sweep submitted with *zero*
  workers alive therefore still completes, just serially.  Fallback
  execution never injects faults and never marks the server a worker
  process, so a stray ``kill`` coin can only degrade to a transient.
* **Idempotent results** — results live in the content-addressed cache;
  the server assembles a job's result set from cache + ``done/``
  records, so at-least-once shard execution is invisible to clients.
  Duplicate concurrent cache PUTs of the same key carry bit-identical
  bodies and converge through atomic rename, last writer wins.
* **Verified payloads** — cache bodies carry SHA-256 checksums at two
  layers (transport header over the HTTP body, embedded header inside
  the payload); the server verifies both on PUT — rejecting torn uploads
  with 400 + ``X-Checksum-Mismatch`` so clients retry with clean bytes —
  and re-verifies on GET, quarantining entries that rotted on disk.
* **Deterministic network faults** — a server-side
  :class:`~repro.sim.faults.FaultPlan` with net rates injects refused
  connections, stalls, torn/corrupted responses and HTTP 500s from
  SHA-256 coins over ``(seed, kind, key, attempt)``, mirroring the
  client-side injection in :mod:`repro.sim.netclient`.

Endpoints (HTTP/1.0, ``Connection: close``):

==============================  ===============================================
``GET /healthz``                liveness + job count
``POST /api/jobs``              ``{"specs": [...], "shard_size"?: n}`` → job id
``GET /api/jobs/<id>``          one progress snapshot (incl. rpc/cache stats)
``GET /api/jobs/<id>/stream``   ndjson snapshots until the job completes
``GET /api/jobs/<id>/results``  per-spec outcomes (409 until complete)
``GET/HEAD /api/cache/<hash>``  fetch / probe one checksummed payload
``PUT /api/cache/<hash>``       publish one payload (sidecar + pickle body)
``GET /api/queue``              shard counts, drained flag, lease TTL
``POST /api/queue/claim``       ``{"owner"}`` → token-addressed lease or null
``POST /api/queue/heartbeat``   ``{"token", "ttl"?}`` (410 when lost)
``POST /api/queue/complete``    ``{"token", "statuses", "rpc"?}``
``POST /api/queue/abandon``     ``{"token"}``
==============================  ===============================================
"""

from __future__ import annotations

import http.client
import json
import re
import threading
import time
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from urllib import error as urlerror
from urllib import request as urlrequest

from .cache import (
    SIDECAR_LENGTH_HEADER,
    LocalCacheBackend,
    ResultCache,
    default_cache_dir,
    payload_checksum_ok,
)
from .faults import FailedResult, FaultPlan
from .manifest import SweepManifest
from .netclient import (
    CHECKSUM_MISMATCH_HEADER,
    PAYLOAD_CHECKSUM_HEADER,
    ResilientClient,
    RpcPolicy,
    payload_digest,
)
from .parallel import ExecutionPolicy
from .queue import DEFAULT_LEASE_TTL, LeaseLostError, WorkLease, WorkQueue, collect_results
from .runner import RunResult
from .specs import RunSpec
from .worker import process_lease

__all__ = [
    "SweepJob",
    "SweepService",
    "fetch_results",
    "make_server",
    "submit_batch",
    "wait_for_job",
]

_CACHE_KEY_RE = re.compile(r"^[0-9a-f]{16,64}$")


@dataclass
class SweepJob:
    """One submitted spec batch and its tracking state."""

    job_id: str
    specs: list[RunSpec]
    manifest: SweepManifest
    shard_ids: list[str]
    #: spec hash → "done" | "failed", filled in by the monitor.
    state: dict[str, str] = field(default_factory=dict)
    complete: bool = False
    served_locally: int = 0
    #: Aggregated worker RPC/spill counters from this job's done records.
    rpc: dict[str, int] = field(default_factory=dict)

    def snapshot(self) -> dict:
        done = sum(1 for s in self.state.values() if s == "done")
        failed = sum(1 for s in self.state.values() if s == "failed")
        return {
            "job": self.job_id,
            "total": len(self.specs),
            "done": done,
            "failed": failed,
            "pending": len(self.specs) - done - failed,
            "complete": self.complete,
            "served_locally": self.served_locally,
            "rpc": dict(self.rpc),
        }


class SweepService:
    """Job registry + queue monitor backing the HTTP handler.

    Usable without HTTP too (the in-process tests drive it directly):
    :meth:`submit` shards a batch and starts a monitor thread;
    :meth:`wait` blocks until the job completes; :meth:`results`
    assembles the final per-spec outcomes.  The HTTP handler additionally
    routes remote-worker traffic through :meth:`claim_lease` /
    :meth:`lease_heartbeat` / :meth:`lease_complete` /
    :meth:`lease_abandon` (a token → :class:`WorkLease` registry over the
    same on-disk queue) and serves the cache endpoints straight from the
    service's local cache backend.

    Parameters
    ----------
    fault_plan:
        Optional *server-side* network fault injector: cache and queue
        endpoint responses draw ``net_fault(f"srv:{key}", attempt)``
        coins and simulate refused/stalled/torn/corrupt/500 responses
        deterministically (progress streaming and health checks are
        exempt — they are observability, not the fault domain under
        test).
    """

    def __init__(
        self,
        queue_root: str | Path,
        cache_dir: str | Path | None = None,
        *,
        lease_ttl: float = DEFAULT_LEASE_TTL,
        shard_size: int = 4,
        fallback_after: float = 2.0,
        poll: float = 0.1,
        fault_plan: FaultPlan | None = None,
    ) -> None:
        if cache_dir is None:
            cache_dir = default_cache_dir()
        self.queue = WorkQueue(queue_root, lease_ttl=lease_ttl, cache_dir=cache_dir)
        self.cache = ResultCache(cache_dir)
        self.shard_size = shard_size
        self.fallback_after = fallback_after
        self.poll = poll
        self.fault_plan = fault_plan
        self.jobs: dict[str, SweepJob] = {}
        self._lock = threading.Lock()
        self._next_id = 1
        self._closed = threading.Event()
        #: Token → live lease for remote (HTTP) workers.
        self._leases: dict[str, WorkLease] = {}
        self._lease_seq = 0
        #: Per-key attempt clocks for server-side net fault coins.
        self._net_attempts: dict[str, int] = {}
        #: Cache endpoint counters (merged into job snapshots).
        self.cache_counters: dict[str, int] = {
            "gets": 0,
            "get_hits": 0,
            "puts": 0,
            "put_rejects": 0,
            "quarantined": 0,
        }

    # -- server-side fault coins ----------------------------------------------
    def draw_server_fault(self, key: str) -> str | None:
        plan = self.fault_plan
        if plan is None or not plan.net_active:
            return None
        with self._lock:
            attempt = self._net_attempts.get(key, 0)
            self._net_attempts[key] = attempt + 1
        return plan.net_fault(f"srv:{key}", attempt)

    # -- cache authority -------------------------------------------------------
    def _local_backend(self) -> LocalCacheBackend:
        backend = self.cache.backend
        if not isinstance(backend, LocalCacheBackend):  # pragma: no cover
            raise TypeError("the serve process must own a local cache backend")
        return backend

    def cache_get(self, key: str) -> bytes | None:
        """Raw verified payload bytes for ``key``, or None on a miss.

        A stored entry that fails its embedded checksum (rotted on disk,
        torn by a crashed writer) is quarantined server-side and reads
        as a miss — the same never-serve-garbage contract
        :meth:`ResultCache.get` keeps locally.
        """
        backend = self._local_backend()
        with self._lock:
            self.cache_counters["gets"] += 1
        try:
            raw = backend.load(key)
        except (KeyError, OSError):
            return None
        if not payload_checksum_ok(raw):
            backend.quarantine(key)
            with self._lock:
                self.cache_counters["quarantined"] += 1
            return None
        with self._lock:
            self.cache_counters["get_hits"] += 1
        return raw

    def cache_put(self, key: str, payload: bytes, sidecar: str) -> None:
        backend = self._local_backend()
        backend.store(key, payload, sidecar)
        with self._lock:
            self.cache_counters["puts"] += 1

    def cache_contains(self, key: str) -> bool:
        return self._local_backend().contains(key)

    def count_put_reject(self) -> None:
        with self._lock:
            self.cache_counters["put_rejects"] += 1

    # -- queue authority (token-addressed leases for remote workers) -----------
    def claim_lease(self, owner: str) -> dict | None:
        """Claim one shard on behalf of a remote worker.

        Returns the wire record (token, shard, takeovers, spec dicts) or
        None when nothing is claimable.  Registry entries whose on-disk
        lease vanished (expired and stolen) are pruned here so the map
        cannot grow without bound.
        """
        lease = self.queue.claim(owner)
        if lease is None:
            return None
        with self._lock:
            self._lease_seq += 1
            token = f"{lease.shard_id}.t{lease.takeovers}.{self._lease_seq}"
            self._leases[token] = lease
            for stale_token, stale in list(self._leases.items()):
                if stale.lost or not stale.path.exists():
                    del self._leases[stale_token]
        return {
            "token": token,
            "shard": lease.shard_id,
            "takeovers": lease.takeovers,
            "specs": [spec.to_dict() for spec in lease.specs],
            "lease_ttl": self.queue.lease_ttl,
        }

    def _lease_for(self, token: str) -> WorkLease | None:
        with self._lock:
            return self._leases.get(token)

    def _drop_lease(self, token: str) -> None:
        with self._lock:
            self._leases.pop(token, None)

    def lease_heartbeat(self, token: str, ttl: float | None = None) -> bool:
        lease = self._lease_for(token)
        if lease is None:
            return False
        try:
            lease.heartbeat(ttl)
        except LeaseLostError:
            self._drop_lease(token)
            return False
        return True

    def lease_complete(
        self, token: str, statuses: list[dict], rpc: dict | None = None
    ) -> bool:
        lease = self._lease_for(token)
        if lease is None:
            return False
        # Statuses are published even when the lease was stolen
        # (WorkLease.complete's contract); either way the token is spent.
        lease.complete(statuses, extra=rpc)
        self._drop_lease(token)
        return True

    def lease_abandon(self, token: str) -> bool:
        lease = self._lease_for(token)
        if lease is None:
            return False
        released = lease.abandon()
        self._drop_lease(token)
        return released

    def queue_info(self) -> dict:
        counts = self.queue.counts()
        return {
            "counts": counts,
            "drained": counts["pending"] == 0 and counts["leased"] == 0,
            "lease_ttl": self.queue.lease_ttl,
        }

    # -- job lifecycle --------------------------------------------------------
    def submit(
        self, spec_dicts: list[dict | RunSpec], *, shard_size: int | None = None
    ) -> SweepJob:
        """Shard a batch into the queue and start tracking it."""
        specs = [
            s if isinstance(s, RunSpec) else RunSpec.from_dict(s) for s in spec_dicts
        ]
        if not specs:
            raise ValueError("a job needs at least one spec")
        with self._lock:
            job_id = f"job-{self._next_id}"
            self._next_id += 1
        jobs_dir = self.queue.root / "jobs"
        jobs_dir.mkdir(parents=True, exist_ok=True)
        manifest = SweepManifest(jobs_dir / f"{job_id}.manifest.json")
        for spec in specs:
            manifest.record_pending(spec)
        shard_ids = self.queue.enqueue(
            specs, shard_size=shard_size or self.shard_size, prefix=job_id
        )
        job = SweepJob(
            job_id=job_id, specs=specs, manifest=manifest, shard_ids=shard_ids
        )
        with self._lock:
            self.jobs[job_id] = job
        threading.Thread(
            target=self._drive, args=(job,), name=f"monitor-{job_id}", daemon=True
        ).start()
        return job

    def _refresh(self, job: SweepJob) -> bool:
        """Fold queue/cache state into the job; True if anything advanced."""
        statuses = self.queue.done_statuses()
        advanced = False
        for spec in job.specs:
            key = spec.spec_hash()
            if key in job.state:
                continue
            record = statuses.get(key)
            if record is not None and record.get("status") == "failed":
                job.state[key] = "failed"
                job.manifest.record_failed(
                    spec,
                    FailedResult(
                        spec=spec,
                        error=str(record.get("error", "unknown failure")),
                        error_type=str(record.get("error_type", "Exception")),
                        attempts=int(record.get("attempts", 0)),
                        fault_events=list(record.get("fault_events") or []),
                    ),
                )
                advanced = True
            elif (record is not None and record.get("status") == "done") or (
                spec in self.cache
            ):
                job.state[key] = "done"
                job.manifest.record_done(spec)
                advanced = True
        if advanced:
            job.rpc = self.queue.rpc_totals(prefix=job.job_id)
        if len(job.state) == len(job.specs) and not job.complete:
            job.rpc = self.queue.rpc_totals(prefix=job.job_id)
            job.complete = True
            job.manifest.compact()
            advanced = True
        return advanced

    def _drive(self, job: SweepJob) -> None:
        """Monitor thread: reclaim expired leases, fall back to local
        execution when no worker is making progress, finish the manifest."""
        last_advance = time.monotonic()
        while not self._closed.is_set():
            self.queue.reclaim_expired()
            if self._refresh(job):
                last_advance = time.monotonic()
            if job.complete:
                return
            stalled = time.monotonic() - last_advance >= self.fallback_after
            counts = self.queue.counts()
            if stalled and counts["leased"] == 0 and counts["pending"] > 0:
                # No worker is alive and holding a lease: drain the
                # pending shards in-process until the queue is empty (or
                # a resurrected worker starts winning the claim races).
                while not self._closed.is_set():
                    lease = self.queue.claim(f"serve-local-{job.job_id}")
                    if lease is None:
                        break
                    job.served_locally += 1
                    process_lease(lease, self.cache, ExecutionPolicy())
                    self._refresh(job)
                last_advance = time.monotonic()
                continue
            self._closed.wait(self.poll)

    def wait(self, job: SweepJob, timeout: float | None = None) -> bool:
        """Block until ``job`` completes; False on timeout."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while not job.complete:
            if deadline is not None and time.monotonic() >= deadline:
                return False
            time.sleep(self.poll)
        return True

    def results(self, job: SweepJob) -> list[dict]:
        """Per-spec outcome records for a completed job."""
        out = []
        for spec, result in zip(
            job.specs, collect_results(job.specs, self.cache, self.queue)
        ):
            record: dict = {
                "spec_hash": spec.spec_hash(),
                "label": spec.label or f"{spec.algorithm} vs {spec.adversary}",
            }
            if isinstance(result, RunResult):
                record["status"] = "done"
                record["summary"] = result.summary.as_dict()
            elif isinstance(result, FailedResult):
                record["status"] = "failed"
                record["error"] = result.error
                record["error_type"] = result.error_type
                record["attempts"] = result.attempts
            else:
                record["status"] = "missing"
            out.append(record)
        return out

    def close(self) -> None:
        self._closed.set()


def make_server(
    service: SweepService, host: str = "127.0.0.1", port: int = 0
) -> ThreadingHTTPServer:
    """Bind a threaded HTTP server over ``service`` (port 0 = ephemeral)."""

    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.0"

        def log_message(self, fmt, *args):  # quiet by default
            pass

        # -- plumbing ---------------------------------------------------------
        def _send_body(
            self,
            body: bytes,
            status: int = 200,
            content_type: str = "application/json",
            *,
            fault: str | None = None,
            extra_headers: dict[str, str] | None = None,
            head_only: bool = False,
        ) -> None:
            """Send one response, applying an injected wire fault if drawn.

            ``torn`` advertises the full Content-Length but writes only
            half the body; ``corrupt`` flips the final byte while the
            checksum header still covers the pristine bytes — either way
            the client's verification layer must detect the damage.
            Write errors (client went away) are swallowed: a disconnect
            is the peer's business, not a handler crash.
            """
            try:
                self.send_response(status)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.send_header(PAYLOAD_CHECKSUM_HEADER, payload_digest(body))
                for name, value in (extra_headers or {}).items():
                    self.send_header(name, value)
                self.send_header("Connection", "close")
                self.end_headers()
                if head_only:
                    return
                out = body
                if fault == "torn" and len(body) > 1:
                    out = body[: len(body) // 2]
                elif fault == "corrupt" and body:
                    out = body[:-1] + bytes([body[-1] ^ 0xFF])
                self.wfile.write(out)
            except OSError:
                pass

        def _send_json(
            self,
            payload: dict,
            status: int = 200,
            *,
            fault: str | None = None,
            extra_headers: dict[str, str] | None = None,
        ) -> None:
            self._send_body(
                json.dumps(payload).encode("utf-8"),
                status,
                fault=fault,
                extra_headers=extra_headers,
            )

        def _job(self, job_id: str) -> SweepJob | None:
            return service.jobs.get(job_id)

        def _read_body(self) -> bytes:
            length = int(self.headers.get("Content-Length", "0"))
            return self.rfile.read(length) if length > 0 else b""

        def _read_json(self) -> dict:
            payload = json.loads(self._read_body().decode("utf-8"))
            if not isinstance(payload, dict):
                raise ValueError("request body must be a JSON object")
            return payload

        def _pre_fault(self, key: str) -> str | None:
            """Draw the server-side fault for this exchange; apply the
            ones that preempt a response.  Returns the fault to thread
            into the response writer ("torn"/"corrupt"), or raises
            ``_Refused`` semantics by returning the sentinel "refuse"
            which the caller must honour by *not responding at all*.
            """
            fault = service.draw_server_fault(key)
            if fault == "timeout":
                time.sleep(
                    service.fault_plan.stall_seconds
                    if service.fault_plan is not None
                    else 0.0
                )
                return None
            return fault

        # -- routes -----------------------------------------------------------
        def do_GET(self) -> None:
            parts = [p for p in self.path.split("?")[0].split("/") if p]
            if parts == ["healthz"]:
                self._send_json({"ok": True, "jobs": len(service.jobs)})
                return
            if len(parts) == 3 and parts[:2] == ["api", "cache"]:
                self._cache_get(parts[2], head_only=False)
                return
            if parts == ["api", "queue"]:
                fault = self._pre_fault("queue/info")
                if fault == "refuse":
                    return
                self._send_json(service.queue_info(), fault=fault)
                return
            if len(parts) >= 2 and parts[:1] == ["api"] and parts[1] == "jobs":
                if len(parts) == 3:
                    job = self._job(parts[2])
                    if job is None:
                        self._send_json({"error": "unknown job"}, 404)
                        return
                    snap = job.snapshot()
                    snap["cache"] = dict(service.cache_counters)
                    self._send_json(snap)
                    return
                if len(parts) == 4 and parts[3] == "results":
                    job = self._job(parts[2])
                    if job is None:
                        self._send_json({"error": "unknown job"}, 404)
                        return
                    if not job.complete:
                        self._send_json({"error": "job still running"}, 409)
                        return
                    self._send_json(
                        {"job": job.job_id, "results": service.results(job)}
                    )
                    return
                if len(parts) == 4 and parts[3] == "stream":
                    self._stream(parts[2])
                    return
            self._send_json({"error": "not found"}, 404)

        def do_HEAD(self) -> None:
            parts = [p for p in self.path.split("?")[0].split("/") if p]
            if len(parts) == 3 and parts[:2] == ["api", "cache"]:
                self._cache_get(parts[2], head_only=True)
                return
            self._send_body(b"", 404, head_only=True)

        def _cache_get(self, key: str, *, head_only: bool) -> None:
            if not _CACHE_KEY_RE.match(key):
                self._send_json({"error": "bad cache key"}, 400)
                return
            fault = self._pre_fault(f"cache/{key}")
            if fault == "refuse":
                return
            raw = service.cache_get(key)
            if raw is None:
                self._send_body(
                    b"", 404, "application/octet-stream", head_only=head_only
                )
                return
            self._send_body(
                raw,
                200,
                "application/octet-stream",
                fault=fault,
                head_only=head_only,
            )

        def do_PUT(self) -> None:
            parts = [p for p in self.path.split("?")[0].split("/") if p]
            if len(parts) != 3 or parts[:2] != ["api", "cache"]:
                self._send_json({"error": "not found"}, 404)
                return
            key = parts[2]
            if not _CACHE_KEY_RE.match(key):
                self._send_json({"error": "bad cache key"}, 400)
                return
            # Writes draw their own coin stream, mirroring the client's
            # read/write key split.
            fault = self._pre_fault(f"cache/put/{key}")
            if fault == "refuse":
                return
            try:
                declared = int(self.headers.get("Content-Length", "0"))
                body = self._read_body()
            except (OSError, ValueError):
                self._send_json({"error": "unreadable body"}, 400)
                return
            mismatch = {CHECKSUM_MISMATCH_HEADER: "1"}
            if len(body) != declared:
                service.count_put_reject()
                self._send_json(
                    {"error": "body checksum/length mismatch"},
                    400,
                    extra_headers=mismatch,
                )
                return
            transport_digest = self.headers.get(PAYLOAD_CHECKSUM_HEADER)
            if transport_digest is not None and payload_digest(body) != transport_digest:
                service.count_put_reject()
                self._send_json(
                    {"error": "body checksum mismatch"}, 400, extra_headers=mismatch
                )
                return
            try:
                sidecar_len = int(self.headers.get(SIDECAR_LENGTH_HEADER, "0"))
                if not 0 <= sidecar_len <= len(body):
                    raise ValueError("bad sidecar length")
                sidecar = body[:sidecar_len].decode("utf-8")
            except (ValueError, UnicodeDecodeError):
                self._send_json({"error": "bad sidecar framing"}, 400)
                return
            payload = body[sidecar_len:]
            if not payload_checksum_ok(payload):
                # The embedded checksum failed with an intact transport
                # body: the *client* sent rotten bytes; still flagged as
                # a checksum mismatch so a client whose request tore in
                # flight (no transport header verified) retries cleanly.
                service.count_put_reject()
                self._send_json(
                    {"error": "payload checksum mismatch"},
                    400,
                    extra_headers=mismatch,
                )
                return
            service.cache_put(key, payload, sidecar)
            self._send_json({"stored": key}, 201, fault=fault)

        def _stream(self, job_id: str) -> None:
            job = self._job(job_id)
            if job is None:
                self._send_json({"error": "unknown job"}, 404)
                return
            try:
                self.send_response(200)
                self.send_header("Content-Type", "application/x-ndjson")
                self.send_header("Connection", "close")
                self.end_headers()
            except OSError:
                return
            while True:
                snap = job.snapshot()
                try:
                    self.wfile.write((json.dumps(snap) + "\n").encode("utf-8"))
                    self.wfile.flush()
                except OSError:
                    # Client went away mid-stream: exit quietly; the job
                    # (and every other subscriber) is unaffected.
                    return
                if snap["complete"]:
                    return
                time.sleep(service.poll)

        def do_POST(self) -> None:
            parts = [p for p in self.path.split("?")[0].split("/") if p]
            if parts == ["api", "jobs"]:
                self._post_job()
                return
            if len(parts) == 3 and parts[:2] == ["api", "queue"]:
                self._post_queue(parts[2])
                return
            self._send_json({"error": "not found"}, 404)

        def _post_job(self) -> None:
            try:
                payload = self._read_json()
                specs = payload["specs"]
                if not isinstance(specs, list) or not specs:
                    raise ValueError("specs must be a non-empty list")
                job = service.submit(specs, shard_size=payload.get("shard_size"))
            except (KeyError, TypeError, ValueError) as exc:
                self._send_json({"error": f"bad request: {exc}"}, 400)
                return
            self._send_json(
                {
                    "job": job.job_id,
                    "total": len(job.specs),
                    "shards": job.shard_ids,
                },
                201,
            )

        def _post_queue(self, action: str) -> None:
            fault = self._pre_fault(f"queue/{action}")
            if fault == "refuse":
                return
            try:
                payload = self._read_json()
            except (OSError, ValueError):
                self._send_json({"error": "bad request body"}, 400)
                return
            if action == "claim":
                owner = str(payload.get("owner", "worker"))
                lease = service.claim_lease(owner)
                self._send_json({"lease": lease}, fault=fault)
                return
            token = payload.get("token")
            if not isinstance(token, str) or not token:
                self._send_json({"error": "missing lease token"}, 400)
                return
            if action == "heartbeat":
                ttl = payload.get("ttl")
                ok = service.lease_heartbeat(
                    token, float(ttl) if ttl is not None else None
                )
                if not ok:
                    self._send_json({"error": "lease lost"}, 410)
                    return
                self._send_json({"ok": True}, fault=fault)
                return
            if action == "complete":
                statuses = payload.get("statuses")
                if not isinstance(statuses, list):
                    self._send_json({"error": "statuses must be a list"}, 400)
                    return
                rpc = payload.get("rpc")
                ok = service.lease_complete(
                    token, statuses, rpc if isinstance(rpc, dict) else None
                )
                if not ok:
                    self._send_json({"error": "lease lost"}, 410)
                    return
                self._send_json({"ok": True}, fault=fault)
                return
            if action == "abandon":
                ok = service.lease_abandon(token)
                self._send_json({"ok": True, "released": ok}, fault=fault)
                return
            self._send_json({"error": "not found"}, 404)

    class Server(ThreadingHTTPServer):
        daemon_threads = True
        allow_reuse_address = True

    return Server((host, port), Handler)


# -- client helpers (used by ``repro submit`` and the integration tests) ------
def submit_batch(
    base_url: str,
    spec_dicts: list[dict],
    *,
    shard_size: int | None = None,
    client: ResilientClient | None = None,
    timeout: float = 10.0,
) -> dict:
    """POST a spec batch; returns the server's job record.

    Goes through the resilient client as a *non-idempotent* request:
    only *connection refused* (the server socket not listening yet — the
    startup race — or gone) is retried, since a refused connection is
    the one transport failure that proves the batch never arrived.  Any
    other failure surfaces rather than risking a double enqueue.
    """
    body: dict = {"specs": spec_dicts}
    if shard_size is not None:
        body["shard_size"] = shard_size
    cli = client if client is not None else ResilientClient(RpcPolicy(timeout=timeout))
    return cli.post_json(
        f"{base_url.rstrip('/')}/api/jobs",
        body,
        key="jobs/submit",
        idempotent=False,
        ok=(200, 201),
    )


def wait_for_job(
    base_url: str,
    job_id: str,
    *,
    timeout: float = 300.0,
    on_progress=None,
    read_timeout: float = 10.0,
) -> dict:
    """Follow the job's ndjson progress stream until it completes.

    Returns the final snapshot.  ``on_progress(snapshot)`` is invoked
    for every streamed line.  Every socket operation is bounded by
    ``read_timeout`` — a hung server reads as a dropped stream, never a
    wedged client — and reconnects back off exponentially (reset on a
    successful connect) until the ``timeout`` deadline expires.
    """
    deadline = time.monotonic() + timeout
    url = f"{base_url.rstrip('/')}/api/jobs/{job_id}/stream"
    last: dict = {}
    delay = 0.05
    while time.monotonic() < deadline:
        try:
            with urlrequest.urlopen(url, timeout=read_timeout) as resp:
                delay = 0.05
                for raw in resp:
                    line = raw.decode("utf-8").strip()
                    if not line:
                        continue
                    last = json.loads(line)
                    if on_progress is not None:
                        on_progress(last)
                    if last.get("complete"):
                        return last
        except (OSError, urlerror.URLError, ValueError, http.client.HTTPException):
            pass
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            break
        time.sleep(min(delay, remaining))
        delay = min(2.0, delay * 2)
    raise TimeoutError(f"job {job_id} did not complete within {timeout}s")


def fetch_results(
    base_url: str,
    job_id: str,
    *,
    client: ResilientClient | None = None,
    timeout: float = 10.0,
) -> list[dict]:
    """GET a completed job's per-spec outcome records (with retries)."""
    cli = client if client is not None else ResilientClient(RpcPolicy(timeout=timeout))
    payload = cli.get_json(
        f"{base_url.rstrip('/')}/api/jobs/{job_id}/results",
        key=f"jobs/{job_id}/results",
    )
    return payload["results"]
