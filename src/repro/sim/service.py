"""``repro serve``: an HTTP front end over the distributed sweep queue.

Stdlib only (``http.server`` + ``urllib``) — the service accepts batches
of :class:`~repro.sim.specs.RunSpec` dicts over HTTP, shards them into a
:class:`~repro.sim.queue.WorkQueue` for ``repro worker`` processes to
claim, tracks progress in a server-side
:class:`~repro.sim.manifest.SweepManifest`, and streams newline-delimited
JSON progress snapshots.  Robustness posture:

* **Work stealing** — the monitor thread reclaims expired leases, so a
  killed worker's shard returns to ``pending/`` for the survivors.
* **Local fallback** — when a job stalls (work pending, nothing leased,
  no progress for ``fallback_after`` seconds) the server claims shards
  itself and executes them in-process.  A sweep submitted with *zero*
  workers alive therefore still completes, just serially.  Fallback
  execution never injects faults and never marks the server a worker
  process, so a stray ``kill`` coin can only degrade to a transient.
* **Idempotent results** — results live in the shared content-addressed
  cache; the server assembles a job's result set from cache + ``done/``
  records, so at-least-once shard execution is invisible to clients.

Endpoints (HTTP/1.0, ``Connection: close``):

========================  =====================================================
``GET /healthz``          liveness + job count
``POST /api/jobs``        ``{"specs": [...], "shard_size"?: n}`` → job id
``GET /api/jobs/<id>``    one progress snapshot
``GET /api/jobs/<id>/stream``   ndjson snapshots until the job completes
``GET /api/jobs/<id>/results``  per-spec outcomes (409 until complete)
========================  =====================================================
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from urllib import error as urlerror
from urllib import request as urlrequest

from .cache import ResultCache, default_cache_dir
from .faults import FailedResult
from .manifest import SweepManifest
from .parallel import ExecutionPolicy
from .queue import DEFAULT_LEASE_TTL, WorkQueue, collect_results
from .runner import RunResult
from .specs import RunSpec
from .worker import process_lease

__all__ = [
    "SweepJob",
    "SweepService",
    "fetch_results",
    "make_server",
    "submit_batch",
    "wait_for_job",
]


@dataclass
class SweepJob:
    """One submitted spec batch and its tracking state."""

    job_id: str
    specs: list[RunSpec]
    manifest: SweepManifest
    shard_ids: list[str]
    #: spec hash → "done" | "failed", filled in by the monitor.
    state: dict[str, str] = field(default_factory=dict)
    complete: bool = False
    served_locally: int = 0

    def snapshot(self) -> dict:
        done = sum(1 for s in self.state.values() if s == "done")
        failed = sum(1 for s in self.state.values() if s == "failed")
        return {
            "job": self.job_id,
            "total": len(self.specs),
            "done": done,
            "failed": failed,
            "pending": len(self.specs) - done - failed,
            "complete": self.complete,
            "served_locally": self.served_locally,
        }


class SweepService:
    """Job registry + queue monitor backing the HTTP handler.

    Usable without HTTP too (the in-process tests drive it directly):
    :meth:`submit` shards a batch and starts a monitor thread;
    :meth:`wait` blocks until the job completes; :meth:`results`
    assembles the final per-spec outcomes.
    """

    def __init__(
        self,
        queue_root: str | Path,
        cache_dir: str | Path | None = None,
        *,
        lease_ttl: float = DEFAULT_LEASE_TTL,
        shard_size: int = 4,
        fallback_after: float = 2.0,
        poll: float = 0.1,
    ) -> None:
        if cache_dir is None:
            cache_dir = default_cache_dir()
        self.queue = WorkQueue(queue_root, lease_ttl=lease_ttl, cache_dir=cache_dir)
        self.cache = ResultCache(cache_dir)
        self.shard_size = shard_size
        self.fallback_after = fallback_after
        self.poll = poll
        self.jobs: dict[str, SweepJob] = {}
        self._lock = threading.Lock()
        self._next_id = 1
        self._closed = threading.Event()

    # -- job lifecycle --------------------------------------------------------
    def submit(
        self, spec_dicts: list[dict | RunSpec], *, shard_size: int | None = None
    ) -> SweepJob:
        """Shard a batch into the queue and start tracking it."""
        specs = [
            s if isinstance(s, RunSpec) else RunSpec.from_dict(s) for s in spec_dicts
        ]
        if not specs:
            raise ValueError("a job needs at least one spec")
        with self._lock:
            job_id = f"job-{self._next_id}"
            self._next_id += 1
        jobs_dir = self.queue.root / "jobs"
        jobs_dir.mkdir(parents=True, exist_ok=True)
        manifest = SweepManifest(jobs_dir / f"{job_id}.manifest.json")
        for spec in specs:
            manifest.record_pending(spec)
        shard_ids = self.queue.enqueue(
            specs, shard_size=shard_size or self.shard_size, prefix=job_id
        )
        job = SweepJob(
            job_id=job_id, specs=specs, manifest=manifest, shard_ids=shard_ids
        )
        with self._lock:
            self.jobs[job_id] = job
        threading.Thread(
            target=self._drive, args=(job,), name=f"monitor-{job_id}", daemon=True
        ).start()
        return job

    def _refresh(self, job: SweepJob) -> bool:
        """Fold queue/cache state into the job; True if anything advanced."""
        statuses = self.queue.done_statuses()
        advanced = False
        for spec in job.specs:
            key = spec.spec_hash()
            if key in job.state:
                continue
            record = statuses.get(key)
            if record is not None and record.get("status") == "failed":
                job.state[key] = "failed"
                job.manifest.record_failed(
                    spec,
                    FailedResult(
                        spec=spec,
                        error=str(record.get("error", "unknown failure")),
                        error_type=str(record.get("error_type", "Exception")),
                        attempts=int(record.get("attempts", 0)),
                        fault_events=list(record.get("fault_events") or []),
                    ),
                )
                advanced = True
            elif (record is not None and record.get("status") == "done") or (
                spec in self.cache
            ):
                job.state[key] = "done"
                job.manifest.record_done(spec)
                advanced = True
        if len(job.state) == len(job.specs) and not job.complete:
            job.complete = True
            job.manifest.compact()
            advanced = True
        return advanced

    def _drive(self, job: SweepJob) -> None:
        """Monitor thread: reclaim expired leases, fall back to local
        execution when no worker is making progress, finish the manifest."""
        last_advance = time.monotonic()
        while not self._closed.is_set():
            self.queue.reclaim_expired()
            if self._refresh(job):
                last_advance = time.monotonic()
            if job.complete:
                return
            stalled = time.monotonic() - last_advance >= self.fallback_after
            counts = self.queue.counts()
            if stalled and counts["leased"] == 0 and counts["pending"] > 0:
                # No worker is alive and holding a lease: drain the
                # pending shards in-process until the queue is empty (or
                # a resurrected worker starts winning the claim races).
                while not self._closed.is_set():
                    lease = self.queue.claim(f"serve-local-{job.job_id}")
                    if lease is None:
                        break
                    job.served_locally += 1
                    process_lease(lease, self.cache, ExecutionPolicy())
                    self._refresh(job)
                last_advance = time.monotonic()
                continue
            self._closed.wait(self.poll)

    def wait(self, job: SweepJob, timeout: float | None = None) -> bool:
        """Block until ``job`` completes; False on timeout."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while not job.complete:
            if deadline is not None and time.monotonic() >= deadline:
                return False
            time.sleep(self.poll)
        return True

    def results(self, job: SweepJob) -> list[dict]:
        """Per-spec outcome records for a completed job."""
        out = []
        for spec, result in zip(
            job.specs, collect_results(job.specs, self.cache, self.queue)
        ):
            record: dict = {
                "spec_hash": spec.spec_hash(),
                "label": spec.label or f"{spec.algorithm} vs {spec.adversary}",
            }
            if isinstance(result, RunResult):
                record["status"] = "done"
                record["summary"] = result.summary.as_dict()
            elif isinstance(result, FailedResult):
                record["status"] = "failed"
                record["error"] = result.error
                record["error_type"] = result.error_type
                record["attempts"] = result.attempts
            else:
                record["status"] = "missing"
            out.append(record)
        return out

    def close(self) -> None:
        self._closed.set()


def make_server(
    service: SweepService, host: str = "127.0.0.1", port: int = 0
) -> ThreadingHTTPServer:
    """Bind a threaded HTTP server over ``service`` (port 0 = ephemeral)."""

    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.0"

        def log_message(self, fmt, *args):  # quiet by default
            pass

        # -- plumbing ---------------------------------------------------------
        def _send_json(self, payload: dict, status: int = 200) -> None:
            body = json.dumps(payload).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.send_header("Connection", "close")
            self.end_headers()
            self.wfile.write(body)

        def _job(self, job_id: str) -> SweepJob | None:
            return service.jobs.get(job_id)

        # -- routes -----------------------------------------------------------
        def do_GET(self) -> None:
            parts = [p for p in self.path.split("?")[0].split("/") if p]
            if parts == ["healthz"]:
                self._send_json({"ok": True, "jobs": len(service.jobs)})
                return
            if len(parts) >= 2 and parts[:1] == ["api"] and parts[1] == "jobs":
                if len(parts) == 3:
                    job = self._job(parts[2])
                    if job is None:
                        self._send_json({"error": "unknown job"}, 404)
                        return
                    self._send_json(job.snapshot())
                    return
                if len(parts) == 4 and parts[3] == "results":
                    job = self._job(parts[2])
                    if job is None:
                        self._send_json({"error": "unknown job"}, 404)
                        return
                    if not job.complete:
                        self._send_json({"error": "job still running"}, 409)
                        return
                    self._send_json(
                        {"job": job.job_id, "results": service.results(job)}
                    )
                    return
                if len(parts) == 4 and parts[3] == "stream":
                    self._stream(parts[2])
                    return
            self._send_json({"error": "not found"}, 404)

        def _stream(self, job_id: str) -> None:
            job = self._job(job_id)
            if job is None:
                self._send_json({"error": "unknown job"}, 404)
                return
            self.send_response(200)
            self.send_header("Content-Type", "application/x-ndjson")
            self.send_header("Connection", "close")
            self.end_headers()
            while True:
                snap = job.snapshot()
                self.wfile.write((json.dumps(snap) + "\n").encode("utf-8"))
                self.wfile.flush()
                if snap["complete"]:
                    return
                time.sleep(service.poll)

        def do_POST(self) -> None:
            parts = [p for p in self.path.split("?")[0].split("/") if p]
            if parts != ["api", "jobs"]:
                self._send_json({"error": "not found"}, 404)
                return
            try:
                length = int(self.headers.get("Content-Length", "0"))
                payload = json.loads(self.rfile.read(length).decode("utf-8"))
                specs = payload["specs"]
                if not isinstance(specs, list) or not specs:
                    raise ValueError("specs must be a non-empty list")
                job = service.submit(specs, shard_size=payload.get("shard_size"))
            except (KeyError, TypeError, ValueError) as exc:
                self._send_json({"error": f"bad request: {exc}"}, 400)
                return
            self._send_json(
                {
                    "job": job.job_id,
                    "total": len(job.specs),
                    "shards": job.shard_ids,
                },
                201,
            )

    class Server(ThreadingHTTPServer):
        daemon_threads = True
        allow_reuse_address = True

    return Server((host, port), Handler)


# -- client helpers (used by ``repro submit`` and the integration tests) ------
def submit_batch(
    base_url: str, spec_dicts: list[dict], *, shard_size: int | None = None
) -> dict:
    """POST a spec batch; returns the server's job record."""
    body: dict = {"specs": spec_dicts}
    if shard_size is not None:
        body["shard_size"] = shard_size
    req = urlrequest.Request(
        f"{base_url.rstrip('/')}/api/jobs",
        data=json.dumps(body).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urlrequest.urlopen(req) as resp:
        return json.loads(resp.read().decode("utf-8"))


def wait_for_job(
    base_url: str,
    job_id: str,
    *,
    timeout: float = 300.0,
    on_progress=None,
) -> dict:
    """Follow the job's ndjson progress stream until it completes.

    Returns the final snapshot.  ``on_progress(snapshot)`` is invoked for
    every streamed line.  Reconnects if the stream drops (server restart,
    proxy timeout) until ``timeout`` expires.
    """
    deadline = time.monotonic() + timeout
    url = f"{base_url.rstrip('/')}/api/jobs/{job_id}/stream"
    last: dict = {}
    while time.monotonic() < deadline:
        try:
            with urlrequest.urlopen(url, timeout=timeout) as resp:
                for raw in resp:
                    line = raw.decode("utf-8").strip()
                    if not line:
                        continue
                    last = json.loads(line)
                    if on_progress is not None:
                        on_progress(last)
                    if last.get("complete"):
                        return last
        except (OSError, urlerror.URLError, ValueError):
            pass
        time.sleep(0.2)
    raise TimeoutError(f"job {job_id} did not complete within {timeout}s")


def fetch_results(base_url: str, job_id: str) -> list[dict]:
    """GET a completed job's per-spec outcome records."""
    url = f"{base_url.rstrip('/')}/api/jobs/{job_id}/results"
    with urlrequest.urlopen(url) as resp:
        payload = json.loads(resp.read().decode("utf-8"))
    return payload["results"]
