"""Resilient HTTP RPC for the distributed sweep service.

The distributed layer treats the *network* as a first-class fault domain,
the same way :mod:`repro.sim.faults` treats workers and
:mod:`repro.sim.queue` treats leases: every failure mode a hostile
network can produce — connection refused, read timeout, torn (truncated)
response, HTTP 500, corrupted body — is survivable, deterministic to
inject, and bounded in the damage it can do.  :class:`ResilientClient`
wraps every HTTP call the sweep clients make (cache reads/writes, shard
claims, lease heartbeats, job submission and polling) with:

* **Per-request timeouts** — no call can block forever; a hung server
  reads as a retryable failure, not a wedged client.
* **Bounded retries with deterministic backoff + seeded jitter** — retry
  *n* sleeps ``min(cap, base * 2**(n-1))`` plus a jitter fraction drawn
  from a SHA-256 coin over ``(seed, key, n)``, so two clients hammering
  a recovering server de-synchronise, yet any schedule is replayable.
* **A circuit breaker** — after ``breaker_threshold`` consecutive
  transport failures the circuit *opens* and calls fail fast
  (:class:`CircuitOpenError`) instead of burning timeouts; after
  ``breaker_reset`` seconds one *half-open* probe is allowed through, and
  its success closes the circuit (firing ``on_close`` hooks — the remote
  cache backend uses this to reconcile its spill cache).
* **End-to-end checksums** — requests and responses may carry an
  ``X-Payload-SHA256`` header over the body; both ends verify it, so a
  torn or bit-flipped body is *detected* (and retried), never consumed.
  A response shorter than its ``Content-Length`` is likewise rejected.

Retry safety is classified per request: idempotent requests (GET/PUT of
content-addressed payloads, heartbeats, polls) retry on any transport
failure; non-idempotent requests (job submission) retry only on
*connection refused* — the one failure that proves the request never
reached the server — so a retried submit cannot double-enqueue.

Fault injection rides the same :class:`~repro.sim.faults.FaultPlan` coin
stream as worker kills and cache corruption: when a plan with network
rates is attached, each attempt draws ``net_fault(key, attempt)`` and the
chosen disaster is simulated client-side (refused / timeout / HTTP 500
raised directly; torn / corrupted bodies mutated after a real exchange so
the verification path is exercised for real).  Faults are budgeted per
key, so every retry loop provably converges.
"""

from __future__ import annotations

import hashlib
import http.client
import socket
import time
from dataclasses import dataclass, field
from typing import Callable, Mapping
from urllib import error as urlerror
from urllib import request as urlrequest

from .faults import FaultPlan

__all__ = [
    "CHECKSUM_MISMATCH_HEADER",
    "CircuitBreaker",
    "CircuitOpenError",
    "PAYLOAD_CHECKSUM_HEADER",
    "ResilientClient",
    "RpcError",
    "RpcHttpError",
    "RpcPolicy",
    "RpcResponse",
    "RpcStats",
    "RpcUnavailableError",
    "TornResponseError",
    "payload_digest",
]

#: Header carrying a SHA-256 hex digest of the request/response body.
PAYLOAD_CHECKSUM_HEADER = "X-Payload-SHA256"

#: Header a server sets on a 4xx that means "your body failed checksum
#: verification" — torn in flight, so the client should retry it.
CHECKSUM_MISMATCH_HEADER = "X-Checksum-Mismatch"


def payload_digest(body: bytes) -> str:
    """The hex SHA-256 digest carried in :data:`PAYLOAD_CHECKSUM_HEADER`."""
    return hashlib.sha256(body).hexdigest()


class RpcError(RuntimeError):
    """Base class of every failure surfaced by :class:`ResilientClient`."""


class CircuitOpenError(RpcError):
    """The circuit breaker is open: the call failed fast, nothing was sent."""


class TornResponseError(RpcError):
    """The response body was shorter than promised or failed its checksum."""


class RpcUnavailableError(RpcError):
    """Every attempt failed; the last transport error is chained as cause."""


class RpcHttpError(RpcError):
    """The server answered with an unexpected HTTP status."""

    def __init__(self, status: int, detail: str = "") -> None:
        super().__init__(f"HTTP {status}" + (f": {detail}" if detail else ""))
        self.status = status
        self.detail = detail


@dataclass(frozen=True)
class RpcResponse:
    """One successful exchange: status, response headers, verified body."""

    status: int
    headers: Mapping[str, str]
    body: bytes

    def header(self, name: str, default: str | None = None) -> str | None:
        for key, value in self.headers.items():
            if key.lower() == name.lower():
                return value
        return default


@dataclass(frozen=True)
class RpcPolicy:
    """Timeouts, retry schedule and circuit-breaker tuning for one client.

    ``max_attempts`` bounds the total tries per request (first attempt
    included).  Backoff before retry *n* is deterministic —
    ``min(backoff_cap, backoff_base * 2**(n-1))`` — plus a jitter
    fraction in ``[0, jitter)`` of the delay, drawn from a SHA-256 coin
    over ``(seed, key, n)`` so concurrent clients spread out replayably.
    """

    timeout: float = 10.0
    max_attempts: int = 4
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    jitter: float = 0.25
    seed: int = 0
    breaker_threshold: int = 5
    breaker_reset: float = 1.0

    def __post_init__(self) -> None:
        if self.timeout <= 0:
            raise ValueError("timeout must be positive")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ValueError("backoff must be non-negative")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        if self.breaker_threshold < 1:
            raise ValueError("breaker_threshold must be at least 1")
        if self.breaker_reset <= 0:
            raise ValueError("breaker_reset must be positive")

    def backoff_delay(self, key: str, attempt: int) -> float:
        """Deterministic delay before retry ``attempt`` (1-based) of ``key``."""
        if attempt <= 0 or self.backoff_base <= 0:
            return 0.0
        delay = min(self.backoff_cap, self.backoff_base * (2 ** (attempt - 1)))
        if self.jitter > 0:
            digest = hashlib.sha256(
                f"{self.seed}:jitter:{key}:{attempt}".encode("utf-8")
            ).digest()
            fraction = int.from_bytes(digest[:8], "big") / 2**64
            delay += delay * self.jitter * fraction
        return delay


@dataclass
class RpcStats:
    """Counters one client accumulates (surfaced on worker/executor stats)."""

    requests: int = 0
    retries: int = 0
    failures: int = 0
    giveups: int = 0
    fast_failures: int = 0
    circuit_opens: int = 0
    circuit_closes: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "requests": self.requests,
            "retries": self.retries,
            "failures": self.failures,
            "giveups": self.giveups,
            "fast_failures": self.fast_failures,
            "circuit_opens": self.circuit_opens,
            "circuit_closes": self.circuit_closes,
        }

    def summary(self) -> str:
        parts = []
        if self.retries:
            parts.append(f"{self.retries} rpc retries")
        if self.circuit_opens:
            parts.append(
                f"{self.circuit_opens} circuit opens"
                + (f"/{self.circuit_closes} closes" if self.circuit_closes else "")
            )
        if self.giveups:
            parts.append(f"{self.giveups} rpc giveups")
        return ", ".join(parts)


class CircuitBreaker:
    """Consecutive-failure circuit breaker with a half-open probe state.

    ``closed`` passes every call.  ``threshold`` consecutive failures
    open the circuit; while open, :meth:`allow` refuses calls until
    ``reset`` seconds have elapsed, then admits exactly one *half-open*
    probe.  A successful probe closes the circuit (and fires every
    ``on_close`` hook — used for spill-cache reconciliation); a failed
    probe re-opens it for another ``reset`` window.
    """

    def __init__(
        self,
        threshold: int = 5,
        reset: float = 1.0,
        *,
        stats: RpcStats | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if threshold < 1:
            raise ValueError("threshold must be at least 1")
        if reset <= 0:
            raise ValueError("reset must be positive")
        self.threshold = threshold
        self.reset = reset
        self.stats = stats if stats is not None else RpcStats()
        self._clock = clock
        self.state = "closed"
        self._consecutive = 0
        self._opened_at = 0.0
        self._probing = False
        self.on_close: list[Callable[[], None]] = []

    def allow(self) -> bool:
        """Whether a call may proceed right now (may admit a probe)."""
        if self.state == "closed":
            return True
        if self.state == "open":
            if self._clock() - self._opened_at >= self.reset:
                self.state = "half-open"
                self._probing = True
                return True
            return False
        # half-open: exactly one probe in flight at a time.
        if self._probing:
            return False
        self._probing = True
        return True

    def record_success(self) -> None:
        self._consecutive = 0
        self._probing = False
        if self.state != "closed":
            self.state = "closed"
            self.stats.circuit_closes += 1
            for hook in list(self.on_close):
                hook()

    def record_failure(self) -> None:
        self._consecutive += 1
        self._probing = False
        if self.state == "half-open" or (
            self.state == "closed" and self._consecutive >= self.threshold
        ):
            if self.state != "open":
                self.stats.circuit_opens += 1
            self.state = "open"
            self._opened_at = self._clock()


def _is_refused(exc: BaseException) -> bool:
    """Did the connection never open?  (Safe to retry even non-idempotently.)"""
    if isinstance(exc, ConnectionRefusedError):
        return True
    if isinstance(exc, urlerror.URLError) and not isinstance(exc, urlerror.HTTPError):
        return _is_refused(exc.reason) if isinstance(exc.reason, BaseException) else False
    return False


def _is_retryable(exc: BaseException) -> bool:
    if isinstance(exc, RpcHttpError):
        return exc.status >= 500
    if isinstance(exc, (TornResponseError, TimeoutError, socket.timeout)):
        return True
    if isinstance(exc, urlerror.HTTPError):  # pragma: no cover - mapped earlier
        return exc.code >= 500
    if isinstance(exc, urlerror.URLError):
        return True
    return isinstance(exc, (OSError, http.client.HTTPException))


class ResilientClient:
    """HTTP client with timeouts, deterministic retries and a breaker.

    One client guards one service (one breaker, one stats block); the
    worker shares a single client between its remote work queue and its
    remote cache backend so a dead server fails *everything* fast and a
    recovered one closes the circuit for everything at once.

    Parameters
    ----------
    policy:
        Timeouts / retry / breaker tuning (:class:`RpcPolicy`).
    fault_plan:
        Optional deterministic fault injector.  Each attempt draws
        ``net_fault(f"cli:{key}", n)``: ``refuse``/``timeout``/
        ``http_error`` are raised without touching the network, while
        ``torn``/``corrupt`` mutate the body of a *real* exchange so the
        length/checksum verification path is exercised end to end.
    sleep / clock:
        Injection points for tests (defaults: ``time.sleep`` /
        ``time.monotonic``).
    """

    def __init__(
        self,
        policy: RpcPolicy | None = None,
        *,
        fault_plan: FaultPlan | None = None,
        stats: RpcStats | None = None,
        sleep: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.policy = policy if policy is not None else RpcPolicy()
        self.fault_plan = fault_plan
        self.stats = stats if stats is not None else RpcStats()
        self.breaker = CircuitBreaker(
            self.policy.breaker_threshold,
            self.policy.breaker_reset,
            stats=self.stats,
            clock=clock,
        )
        self._sleep = sleep
        #: Per-key attempt clocks for the injection coin stream.
        self._fault_attempts: dict[str, int] = {}

    # -- fault injection -------------------------------------------------------
    def _draw_fault(self, key: str) -> str | None:
        plan = self.fault_plan
        if plan is None or not plan.net_active:
            return None
        attempt = self._fault_attempts.get(key, 0)
        self._fault_attempts[key] = attempt + 1
        return plan.net_fault(f"cli:{key}", attempt)

    # -- the resilient request loop -------------------------------------------
    def request(
        self,
        method: str,
        url: str,
        *,
        data: bytes | None = None,
        headers: Mapping[str, str] | None = None,
        key: str | None = None,
        idempotent: bool = True,
        ok: tuple[int, ...] = (200, 201, 204),
        timeout: float | None = None,
        verify: Callable[[RpcResponse], None] | None = None,
    ) -> RpcResponse:
        """Perform one logical request, retrying transport failures.

        ``key`` names the request for backoff jitter and fault coins
        (defaults to ``METHOD path``).  ``ok`` lists the statuses
        returned as-is (e.g. include 404 for existence probes); any
        other 4xx raises :class:`RpcHttpError` without retrying — except
        a checksum-mismatch reject, which means the request body tore in
        flight and is retried.  5xx and transport errors retry with
        backoff while the budget lasts; non-idempotent requests retry
        only *connection refused* (the request provably never arrived).
        ``verify`` may raise to reject an otherwise-successful response
        (counted as a torn response and retried).
        """
        policy = self.policy
        key = key if key is not None else f"{method} {url.split('?', 1)[0]}"
        send_headers = dict(headers or {})
        if data is not None and PAYLOAD_CHECKSUM_HEADER not in send_headers:
            send_headers[PAYLOAD_CHECKSUM_HEADER] = payload_digest(data)
        self.stats.requests += 1

        last_exc: BaseException | None = None
        for attempt in range(policy.max_attempts):
            if not self.breaker.allow():
                self.stats.fast_failures += 1
                raise CircuitOpenError(
                    f"circuit open for {key}; failing fast without a request"
                )
            injected = self._draw_fault(key)
            try:
                response = self._attempt(
                    method, url, data, send_headers, injected,
                    timeout if timeout is not None else policy.timeout,
                )
                if response.status not in ok:
                    raise RpcHttpError(
                        response.status,
                        response.body[:200].decode("utf-8", "replace"),
                    )
                if verify is not None:
                    verify(response)
            except RpcHttpError as exc:
                if exc.status < 500 and not self._is_checksum_reject(exc):
                    # The server answered decisively: it is alive (the
                    # breaker heals) and retrying cannot help.
                    self.breaker.record_success()
                    raise
                last_exc = exc
            except TornResponseError as exc:
                last_exc = exc
                self.breaker.record_failure()
                self.stats.failures += 1
            except Exception as exc:
                if not _is_retryable(exc):
                    raise
                last_exc = exc
            else:
                self.breaker.record_success()
                return response

            if not isinstance(last_exc, (TornResponseError,)):
                self.breaker.record_failure()
                self.stats.failures += 1
            if not idempotent and not _is_refused(last_exc):
                break
            if attempt + 1 >= policy.max_attempts:
                break
            self.stats.retries += 1
            delay = policy.backoff_delay(key, attempt + 1)
            if delay:
                self._sleep(delay)

        self.stats.giveups += 1
        raise RpcUnavailableError(
            f"{key} failed after {policy.max_attempts} attempt(s): "
            f"{type(last_exc).__name__}: {last_exc}"
        ) from last_exc

    @staticmethod
    def _is_checksum_reject(exc: RpcHttpError) -> bool:
        """A 4xx flagged as "your body failed verification" — torn in
        flight, so retrying with the intact body is correct."""
        return "checksum" in exc.detail.lower()

    def _attempt(
        self,
        method: str,
        url: str,
        data: bytes | None,
        headers: Mapping[str, str],
        injected: str | None,
        timeout: float,
    ) -> RpcResponse:
        """One wire attempt, with the injected disaster (if any) applied."""
        if injected == "refuse":
            raise ConnectionRefusedError("injected connection refusal")
        if injected == "timeout":
            raise TimeoutError("injected request timeout")
        if injected == "http_error":
            raise RpcHttpError(500, "injected server error")
        send = data
        if injected == "corrupt" and data is not None:
            # Flip a request-body byte: the server's checksum verification
            # must reject it and this client must retry with clean bytes.
            send = data[:-1] + bytes([data[-1] ^ 0xFF]) if data else data
        req = urlrequest.Request(url, data=send, headers=dict(headers), method=method)
        try:
            with urlrequest.urlopen(req, timeout=timeout) as resp:
                status = resp.status
                resp_headers = dict(resp.headers.items())
                body = resp.read()
        except urlerror.HTTPError as exc:
            status = exc.code
            resp_headers = dict(exc.headers.items()) if exc.headers else {}
            body = exc.read()
            if status == 400 and resp_headers.get(CHECKSUM_MISMATCH_HEADER):
                raise RpcHttpError(status, "request body checksum mismatch") from exc

        if injected == "torn" and body:
            body = body[: max(0, len(body) // 2)]
        elif injected == "corrupt" and data is None and body:
            body = body[:-1] + bytes([body[-1] ^ 0xFF])

        if method != "HEAD":
            # HEAD answers carry the entry's headers with no body, so the
            # length/checksum verification only applies to bodied methods.
            declared = resp_headers.get("Content-Length")
            if declared is not None and len(body) != int(declared):
                raise TornResponseError(
                    f"torn response: got {len(body)} of {declared} bytes"
                )
            digest = resp_headers.get(PAYLOAD_CHECKSUM_HEADER)
            if digest is not None and payload_digest(body) != digest:
                raise TornResponseError("response body failed its checksum")
        return RpcResponse(status=status, headers=resp_headers, body=body)

    # -- convenience wrappers --------------------------------------------------
    def get_json(self, url: str, **kwargs) -> dict:
        import json

        resp = self.request("GET", url, **kwargs)
        return json.loads(resp.body.decode("utf-8"))

    def post_json(self, url: str, payload: dict, **kwargs) -> dict:
        import json

        body = json.dumps(payload).encode("utf-8")
        resp = self.request(
            "POST",
            url,
            data=body,
            headers={"Content-Type": "application/json"},
            **kwargs,
        )
        return json.loads(resp.body.decode("utf-8")) if resp.body else {}
