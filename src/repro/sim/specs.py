"""Declarative run specifications.

A :class:`RunSpec` describes one simulated execution — algorithm, adversary,
horizon and engine knobs — as plain data (registry keys + JSON-serialisable
parameter dicts).  Because a spec is pure data it can

* cross process boundaries (the parallel executor ships specs to worker
  processes, which reconstruct the objects locally),
* be hashed canonically (the on-disk result cache keys entries by
  :meth:`RunSpec.spec_hash`), and
* be written down in experiment manifests and replayed bit-identically.

Algorithms are resolved through :mod:`repro.core.registry`; adversaries
through the registry defined here.  Schedule-aware adversaries (the
Theorem 6/9 lower-bound constructions) are registered with
``needs_schedule=True``: at execution time they receive the spec'd
algorithm's published oblivious schedule, so even those constructions are
expressible as plain data.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from ..adversary import (
    DEFAULT_RNG_VERSION,
    AdaptiveStarvationAdversary,
    Adversary,
    AlternatingPairAdversary,
    BurstThenIdleAdversary,
    GroupLocalAdversary,
    HotspotAdversary,
    LeastOnPairAdversary,
    LeastOnStationAdversary,
    NoInjectionAdversary,
    RandomWalkAdversary,
    RoundRobinAdversary,
    SaturatingAdversary,
    SeededAdversary,
    SingleSourceSprayAdversary,
    SingleTargetAdversary,
    UniformRandomAdversary,
)
from ..core import available_algorithms, make_algorithm
from ..core.algorithm import RoutingAlgorithm
from .runner import ENGINE_KINDS, RunResult, run_simulation

__all__ = [
    "AdversaryEntry",
    "EXECUTION_FIELDS",
    "RunSpec",
    "available_adversaries",
    "execute_spec",
    "execute_spec_batch",
    "make_adversary",
    "materialize_adversary",
    "materialize_algorithm",
    "rate_adversaries",
    "register_adversary",
    "spec_fragment",
]


# ---------------------------------------------------------------------------
# Adversary registry
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class AdversaryEntry:
    """One registered adversary constructor.

    ``needs_schedule`` marks the schedule-aware lower-bound adversaries:
    their ``schedule`` argument cannot be spec'd as data and is instead
    derived from the algorithm under test at execution time.
    ``takes_rate`` marks constructors with the standard ``(rho, beta)``
    leading parameters (everything except :class:`NoInjectionAdversary`);
    the CLI only exposes those.
    """

    cls: type
    needs_schedule: bool = False
    takes_rate: bool = True


_ADVERSARIES: dict[str, AdversaryEntry] = {}


def register_adversary(
    name: str,
    cls: type | None = None,
    *,
    needs_schedule: bool = False,
    takes_rate: bool = True,
) -> Callable[[type], type] | type:
    """Register an :class:`Adversary` subclass under a canonical key.

    Usable directly (``register_adversary("spray", SprayAdversary)``) or as
    a class decorator (``@register_adversary("spray")``).
    """

    def _register(klass: type) -> type:
        key = name.lower()
        if key in _ADVERSARIES:
            raise ValueError(f"adversary name {name!r} already registered")
        _ADVERSARIES[key] = AdversaryEntry(
            cls=klass, needs_schedule=needs_schedule, takes_rate=takes_rate
        )
        return klass

    if cls is not None:
        return _register(cls)
    return _register


register_adversary("single-target", SingleTargetAdversary)
register_adversary("spray", SingleSourceSprayAdversary)
register_adversary("round-robin", RoundRobinAdversary)
register_adversary("alternating-pair", AlternatingPairAdversary)
register_adversary("saturating", SaturatingAdversary)
register_adversary("bursty", BurstThenIdleAdversary)
register_adversary("group-local", GroupLocalAdversary)
register_adversary("no-injection", NoInjectionAdversary, takes_rate=False)
register_adversary("random", UniformRandomAdversary)
register_adversary("hotspot", HotspotAdversary)
register_adversary("random-walk", RandomWalkAdversary)
register_adversary("adaptive-starvation", AdaptiveStarvationAdversary)
register_adversary("least-on-station", LeastOnStationAdversary, needs_schedule=True)
register_adversary("least-on-pair", LeastOnPairAdversary, needs_schedule=True)


def available_adversaries(*, include_schedule_aware: bool = True) -> list[str]:
    """Names of all registered adversaries, sorted."""
    return sorted(
        key
        for key, entry in _ADVERSARIES.items()
        if include_schedule_aware or not entry.needs_schedule
    )


def rate_adversaries() -> list[str]:
    """Registered adversaries with the standard ``(rho, beta)`` constructor."""
    return sorted(
        key
        for key, entry in _ADVERSARIES.items()
        if entry.takes_rate and not entry.needs_schedule
    )


def adversary_entry(name: str) -> AdversaryEntry:
    """Look up a registered adversary, with a helpful error."""
    key = name.lower()
    if key not in _ADVERSARIES:
        raise KeyError(
            f"unknown adversary {name!r}; available: {sorted(_ADVERSARIES)}"
        )
    return _ADVERSARIES[key]


def make_adversary(name: str, *, schedule=None, **params) -> Adversary:
    """Instantiate a registered adversary by name.

    ``schedule`` must be provided (and is only accepted) for adversaries
    registered with ``needs_schedule=True``.
    """
    entry = adversary_entry(name)
    if entry.needs_schedule:
        if schedule is None:
            raise ValueError(
                f"adversary {name!r} is schedule-aware and needs a schedule"
            )
        return entry.cls(schedule=schedule, **params)
    if schedule is not None:
        raise ValueError(f"adversary {name!r} does not take a schedule")
    return entry.cls(**params)


# ---------------------------------------------------------------------------
# Spec fragments
# ---------------------------------------------------------------------------

def spec_fragment(key: str, **params) -> dict:
    """A declarative piece of a :class:`RunSpec`: a registry key plus kwargs.

    Sweep and worst-case factories may return fragments instead of live
    objects; the harness then assembles full :class:`RunSpec` objects and can
    execute them in parallel worker processes.
    """
    return {"key": key, "params": dict(params)}


def _as_fragment(obj: Any) -> tuple[str, dict] | None:
    """Interpret ``obj`` as a (key, params) fragment, else return None."""
    if isinstance(obj, Mapping) and set(obj) <= {"key", "params"} and "key" in obj:
        return str(obj["key"]), dict(obj.get("params") or {})
    return None


def _json_ready(params: Mapping[str, Any], what: str) -> dict:
    """Validate that ``params`` round-trips through JSON; return a plain dict."""
    plain = dict(params)
    try:
        encoded = json.dumps(plain, sort_keys=True)
    except (TypeError, ValueError) as exc:
        raise TypeError(
            f"{what} parameters must be JSON-serialisable scalars; got {plain!r}"
        ) from exc
    return json.loads(encoded)


# ---------------------------------------------------------------------------
# RunSpec
# ---------------------------------------------------------------------------

#: Execution-strategy fields of a :class:`RunSpec`: they choose *how* a run
#: executes (which engine, what batching granularity, whether quiescent
#: spans are elided), not *what* it computes — results are bit-identical
#: for every combination (property-tested).  They round-trip through
#: :meth:`RunSpec.to_dict`/:meth:`RunSpec.from_dict` like every other
#: field but are excluded from :meth:`RunSpec.identity_dict` and with it
#: from :meth:`RunSpec.canonical_json`/:meth:`RunSpec.spec_hash`, so a
#: cached result is valid whichever strategy computed it.
EXECUTION_FIELDS = ("engine", "plan_chunk", "quiescence_skip", "lowering", "fault_plan")


@dataclass(frozen=True, eq=False)
class RunSpec:
    """A declarative, hashable description of one simulation run."""

    algorithm: str
    adversary: str
    rounds: int
    algorithm_params: dict = field(default_factory=dict)
    adversary_params: dict = field(default_factory=dict)
    enforce_energy_cap: bool = True
    energy_cap: int | None = None
    record_trace: bool = False
    label: str | None = None
    #: Engine selector ("auto" / "block" / "kernel" / "reference").  An
    #: execution strategy (see :data:`EXECUTION_FIELDS`), not part of the
    #: run's identity: all engines produce bit-identical results
    #: (property-tested), so ``engine`` round-trips through
    #: :meth:`to_dict` but is excluded from :meth:`identity_dict` and
    #: :meth:`spec_hash` — a cached result is valid whichever engine
    #: computed it.
    engine: str = "auto"
    #: Kernel batching granularity in rounds (``None`` = engine default):
    #: how many rounds one ``plan_injections`` call materialises and how
    #: often the schedule-backed view's history ring is refreshed.  Like
    #: ``engine`` this is an execution strategy — results are
    #: bit-identical for every value (property-tested) — so it
    #: round-trips through :meth:`to_dict` but stays outside the spec's
    #: identity and hash.
    plan_chunk: int | None = None
    #: Kernel quiescent-span fast path (silence-invariant runs elide
    #: injection-free all-queues-empty spans in one step).  Execution
    #: strategy like ``engine``/``plan_chunk`` — results are bit-identical
    #: either way (property-tested) — so it too round-trips through
    #: :meth:`to_dict` while staying outside the spec's identity and
    #: hash; ``False`` recovers the strictly per-round kernel for
    #: comparison benchmarks.
    quiescence_skip: bool = True
    #: Block engine segment-lowering tier (drivers prove closed-form
    #: spans that execute as array kernels).  Execution strategy like the
    #: knobs above — results are bit-identical either way
    #: (property-tested) — so it round-trips through :meth:`to_dict`
    #: while staying outside the spec's identity and hash; ``False``
    #: recovers the strictly per-round block loop for comparison
    #: benchmarks.  Ignored by the kernel and reference engines.
    lowering: bool = True
    #: Deterministic fault-injection stamp (a
    #: :meth:`repro.sim.faults.FaultPlan.stamp` dict, or None): replayed
    #: at the top of :func:`execute_spec` wherever the spec executes.
    #: Execution strategy like the knobs above — injected faults change
    #: how many *attempts* a run takes, never what it computes
    #: (property-tested) — so it round-trips through :meth:`to_dict`
    #: while staying outside the spec's identity and hash.
    fault_plan: dict | None = None

    def __post_init__(self) -> None:
        if self.rounds < 1:
            raise ValueError("rounds must be positive")
        if self.engine not in ENGINE_KINDS:
            raise ValueError(
                f"unknown engine {self.engine!r}; expected one of {ENGINE_KINDS}"
            )
        if self.plan_chunk is not None and self.plan_chunk < 1:
            raise ValueError("plan_chunk must be at least 1 round")
        if self.fault_plan is not None:
            if not isinstance(self.fault_plan, Mapping):
                raise TypeError("fault_plan must be a FaultPlan.stamp() dict or None")
            object.__setattr__(self, "fault_plan", dict(self.fault_plan))
        # Fail fast on unknown keys, at the construction site rather than
        # later inside a worker process.
        adversary_entry(self.adversary)
        if self.algorithm.lower() not in available_algorithms():
            raise KeyError(
                f"unknown algorithm {self.algorithm!r}; "
                f"available: {available_algorithms()}"
            )
        object.__setattr__(
            self, "algorithm_params", _json_ready(self.algorithm_params, "algorithm")
        )
        object.__setattr__(
            self, "adversary_params", _json_ready(self.adversary_params, "adversary")
        )
        # Seeded stochastic adversaries: pin the RNG protocol explicitly.
        # The constructor default flipped from 1 to 2 when the batched
        # protocol became standard; recording the version in every new
        # spec keeps serialised dicts unambiguous, so from_dict can read
        # a *missing* key as a pre-versioned (v1) recording.
        if (
            issubclass(adversary_entry(self.adversary).cls, SeededAdversary)
            and "rng_version" not in self.adversary_params
        ):
            params = dict(self.adversary_params)
            params["rng_version"] = DEFAULT_RNG_VERSION
            object.__setattr__(self, "adversary_params", params)

    # -- serialisation -------------------------------------------------------
    def identity_dict(self) -> dict:
        """The fields that define *what* this run computes.

        This is the dict behind :meth:`canonical_json` and
        :meth:`spec_hash`; the :data:`EXECUTION_FIELDS` are deliberately
        absent, so specs differing only in execution strategy share one
        hash (and one cache entry).
        """
        return {
            "algorithm": self.algorithm,
            "algorithm_params": self.algorithm_params,
            "adversary": self.adversary,
            "adversary_params": self.adversary_params,
            "rounds": self.rounds,
            "enforce_energy_cap": self.enforce_energy_cap,
            "energy_cap": self.energy_cap,
            "record_trace": self.record_trace,
            "label": self.label,
        }

    def to_dict(self) -> dict:
        """Lossless serialisation: identity fields plus execution knobs.

        ``RunSpec.from_dict(spec.to_dict())`` reconstructs every field —
        including the :data:`EXECUTION_FIELDS`, so a spec shipped across a
        process boundary keeps its requested engine, plan chunking and
        quiescence-skip setting.  Identity (hashing, caching, equality)
        comes from :meth:`identity_dict` instead.
        """
        data = self.identity_dict()
        data["engine"] = self.engine
        data["plan_chunk"] = self.plan_chunk
        data["quiescence_skip"] = self.quiescence_skip
        data["lowering"] = self.lowering
        data["fault_plan"] = dict(self.fault_plan) if self.fault_plan else None
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunSpec":
        adversary = data["adversary"]
        adversary_params = dict(data.get("adversary_params") or {})
        # New specs always serialise the RNG protocol of a seeded
        # adversary (__post_init__ pins it), so a dict *without* the key
        # predates the versioning — replay it on protocol 1, the only
        # stream that existed then, rather than the current default.
        if (
            issubclass(adversary_entry(adversary).cls, SeededAdversary)
            and "rng_version" not in adversary_params
        ):
            adversary_params["rng_version"] = 1
        return cls(
            algorithm=data["algorithm"],
            adversary=adversary,
            rounds=int(data["rounds"]),
            algorithm_params=dict(data.get("algorithm_params") or {}),
            adversary_params=adversary_params,
            enforce_energy_cap=bool(data.get("enforce_energy_cap", True)),
            energy_cap=data.get("energy_cap"),
            record_trace=bool(data.get("record_trace", False)),
            label=data.get("label"),
            engine=str(data.get("engine", "auto")),
            plan_chunk=data.get("plan_chunk"),
            quiescence_skip=bool(data.get("quiescence_skip", True)),
            lowering=bool(data.get("lowering", True)),
            fault_plan=data.get("fault_plan"),
        )

    @classmethod
    def from_fragments(
        cls,
        algorithm: Mapping[str, Any],
        adversary: Mapping[str, Any],
        rounds: int,
        **kwargs,
    ) -> "RunSpec":
        """Assemble a spec from two :func:`spec_fragment` dicts."""
        algo = _as_fragment(algorithm)
        adv = _as_fragment(adversary)
        if algo is None or adv is None:
            raise TypeError(
                "expected {'key': ..., 'params': {...}} fragments, got "
                f"{algorithm!r} and {adversary!r}"
            )
        return cls(
            algorithm=algo[0],
            algorithm_params=algo[1],
            adversary=adv[0],
            adversary_params=adv[1],
            rounds=rounds,
            **kwargs,
        )

    def canonical_json(self) -> str:
        """Canonical JSON encoding: the identity of the run."""
        return json.dumps(self.identity_dict(), sort_keys=True, separators=(",", ":"))

    def spec_hash(self) -> str:
        """SHA-256 of the canonical encoding — the cache key of the run."""
        return hashlib.sha256(self.canonical_json().encode("utf-8")).hexdigest()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RunSpec):
            return NotImplemented
        return self.canonical_json() == other.canonical_json()

    def __hash__(self) -> int:
        return hash(self.canonical_json())

    # -- construction of live objects ---------------------------------------
    def build_algorithm(self) -> RoutingAlgorithm:
        return make_algorithm(self.algorithm, **self.algorithm_params)

    def build_adversary(self, algorithm: RoutingAlgorithm) -> Adversary:
        entry = adversary_entry(self.adversary)
        if entry.needs_schedule:
            schedule = algorithm.oblivious_schedule()
            if schedule is None:
                raise ValueError(
                    f"adversary {self.adversary!r} needs an oblivious schedule, "
                    f"but algorithm {self.algorithm!r} does not publish one"
                )
            return make_adversary(
                self.adversary, schedule=schedule, **self.adversary_params
            )
        return make_adversary(self.adversary, **self.adversary_params)


def materialize_algorithm(obj: RoutingAlgorithm | Mapping[str, Any]) -> RoutingAlgorithm:
    """Turn a live algorithm or a :func:`spec_fragment` into a live algorithm."""
    fragment = _as_fragment(obj)
    if fragment is not None:
        return make_algorithm(fragment[0], **fragment[1])
    if isinstance(obj, RoutingAlgorithm):
        return obj
    raise TypeError(f"expected RoutingAlgorithm or fragment, got {type(obj).__name__}")


def materialize_adversary(
    obj: Adversary | Mapping[str, Any],
    algorithm: RoutingAlgorithm | None = None,
) -> Adversary:
    """Turn a live adversary or a :func:`spec_fragment` into a live adversary.

    Schedule-aware fragments read ``algorithm``'s published oblivious
    schedule, mirroring :meth:`RunSpec.build_adversary`.
    """
    fragment = _as_fragment(obj)
    if fragment is not None:
        key, params = fragment
        entry = adversary_entry(key)
        if entry.needs_schedule:
            schedule = algorithm.oblivious_schedule() if algorithm is not None else None
            if schedule is None:
                raise ValueError(
                    f"adversary {key!r} needs an algorithm with an oblivious schedule"
                )
            return make_adversary(key, schedule=schedule, **params)
        return make_adversary(key, **params)
    if isinstance(obj, Adversary):
        return obj
    raise TypeError(f"expected Adversary or fragment, got {type(obj).__name__}")


def execute_spec(spec: RunSpec | Mapping[str, Any]) -> RunResult:
    """Execute one :class:`RunSpec` and return its :class:`RunResult`.

    This is the (picklable, module-level) unit of work shipped to parallel
    worker processes; executing a spec twice — in any process — yields
    bit-identical summaries because every piece of state is constructed
    fresh from the spec.
    """
    if not isinstance(spec, RunSpec):
        spec = RunSpec.from_dict(spec)
    if spec.fault_plan:
        # Replay the supervisor's fault stamp before any work happens:
        # the decision is a pure function of (seed, kind, hash, attempt),
        # so the executing process — worker or in-process — injects
        # exactly the fault the supervisor predicted.
        from .faults import FaultPlan

        FaultPlan.apply_stamp(spec.fault_plan, spec.spec_hash())
    algorithm = spec.build_algorithm()
    adversary = spec.build_adversary(algorithm)
    return run_simulation(
        algorithm,
        adversary,
        spec.rounds,
        enforce_energy_cap=spec.enforce_energy_cap,
        energy_cap=spec.energy_cap,
        record_trace=spec.record_trace,
        label=spec.label,
        engine=spec.engine,
        plan_chunk=spec.plan_chunk,
        quiescence_skip=spec.quiescence_skip,
        lowering=spec.lowering,
    )


def execute_spec_batch(
    specs: "list[RunSpec | Mapping[str, Any]]",
) -> list[RunResult]:
    """Execute a chunk of specs in order (the per-dispatch worker unit).

    Shipping several small specs per process dispatch amortises the
    pickling/IPC overhead that dominates when individual runs are short;
    results come back in input order.
    """
    return [execute_spec(spec) for spec in specs]
