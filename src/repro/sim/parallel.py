"""Parallel experiment orchestration.

The paper's results are worst-case statements over adversary *families*,
so regenerating Table 1 and the figure sweeps means executing many
independent simulations.  :class:`ParallelExecutor` fans declarative
:class:`~repro.sim.specs.RunSpec` batches out to a process pool and
collects their :class:`~repro.sim.runner.RunResult` objects in order.

Design constraints:

* **Determinism** — a worker process reconstructs every algorithm,
  adversary and RNG from the spec alone, so a parallel run is bit-identical
  to its serial counterpart (asserted by
  ``tests/property/test_parallel_determinism.py``).
* **Spawn safety** — workers are started with the ``spawn`` method (no
  inherited state, works identically on Linux/macOS/Windows); the unit of
  work, :func:`repro.sim.specs.execute_spec`, is a module-level function,
  so it pickles cleanly.
* **Serial fallback** — ``workers=1`` executes in-process with no pool at
  all, which keeps single-run debugging (pdb, profilers, exceptions with
  full local state) trivial.
* **Caching** — an optional :class:`~repro.sim.cache.ResultCache` is
  consulted before any work is scheduled and updated as results arrive.
* **Chunking** — small specs are batched per worker dispatch
  (:func:`repro.sim.specs.execute_spec_batch`) so that pickling/IPC
  overhead is amortised over several runs; result ordering and cache
  semantics are unchanged.
* **Progress** — any ``progress(done, total)`` callable (e.g.
  :class:`~repro.sim.progress.ProgressTicker`) is invoked as results
  arrive, cache hits included.
"""

from __future__ import annotations

import math
import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import Callable, Iterable, Mapping, Sequence

from .cache import ResultCache
from .runner import RunResult
from .specs import RunSpec, execute_spec, execute_spec_batch

__all__ = [
    "ParallelExecutor",
    "default_chunk_size",
    "default_worker_count",
    "dispatch_specs",
    "run_specs",
]

#: Progress callback signature: ``progress(done, total)``.
ProgressCallback = Callable[[int, int], None]


def default_worker_count() -> int:
    """A sensible default worker count: the machine's CPU count."""
    return max(1, os.cpu_count() or 1)


def default_chunk_size(pending: int, workers: int) -> int:
    """Specs per worker dispatch: ~4 chunks per worker, at most 32 per chunk.

    Small enough that stragglers do not serialise the tail of a batch,
    large enough that spawn/pickling overhead is amortised when a batch
    holds many short runs.
    """
    return max(1, min(32, math.ceil(pending / (workers * 4))))


def _coerce_specs(specs: Iterable[RunSpec | Mapping]) -> list[RunSpec]:
    out: list[RunSpec] = []
    for spec in specs:
        if isinstance(spec, RunSpec):
            out.append(spec)
        elif isinstance(spec, Mapping):
            out.append(RunSpec.from_dict(spec))
        else:
            raise TypeError(f"expected RunSpec or mapping, got {type(spec).__name__}")
    return out


class ParallelExecutor:
    """Process-pool-backed executor for batches of :class:`RunSpec`.

    Parameters
    ----------
    workers:
        Number of worker processes.  ``1`` (the default) runs everything
        serially in the calling process; ``None`` uses the CPU count.
    cache:
        Optional :class:`ResultCache`; hits skip execution entirely and
        fresh results are written back.
    mp_context:
        Multiprocessing start method; ``"spawn"`` is the safe default.
    chunk_size:
        Specs shipped per worker dispatch; ``None`` (default) picks
        :func:`default_chunk_size` per batch.  ``1`` restores one-spec
        dispatches.
    progress:
        Optional ``progress(done, total)`` callback invoked for every
        batch this executor runs (a per-``run`` callback can override it).

    The executor may be used as a context manager; the worker pool is
    created lazily on the first parallel batch and reused across ``run``
    calls until :meth:`close`.
    """

    def __init__(
        self,
        workers: int | None = 1,
        *,
        cache: ResultCache | None = None,
        mp_context: str = "spawn",
        chunk_size: int | None = None,
        progress: ProgressCallback | None = None,
    ) -> None:
        if workers is None:
            workers = default_worker_count()
        if workers < 1:
            raise ValueError("workers must be at least 1")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be at least 1")
        self.workers = workers
        self.cache = cache
        self.chunk_size = chunk_size
        self.progress = progress
        self._mp_context = mp_context
        self._pool: ProcessPoolExecutor | None = None

    # -- lifecycle ------------------------------------------------------------
    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=multiprocessing.get_context(self._mp_context),
            )
        return self._pool

    def close(self) -> None:
        """Shut down the worker pool (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- execution ------------------------------------------------------------
    def run(
        self,
        specs: Sequence[RunSpec | Mapping],
        *,
        progress: ProgressCallback | None = None,
    ) -> list[RunResult]:
        """Execute every spec and return results in input order."""
        batch = _coerce_specs(specs)
        results: list[RunResult | None] = [None] * len(batch)
        progress = progress if progress is not None else self.progress
        total = len(batch)

        pending: list[int] = []
        for i, spec in enumerate(batch):
            hit = self.cache.get(spec) if self.cache is not None else None
            if hit is not None:
                results[i] = hit
            else:
                pending.append(i)

        done = total - len(pending)
        if progress is not None and (done or not pending):
            progress(done, total)
        if not pending:
            return results  # type: ignore[return-value]

        if self.workers == 1 or len(pending) == 1:
            for i in pending:
                results[i] = self._finish(batch[i], execute_spec(batch[i]))
                done += 1
                if progress is not None:
                    progress(done, total)
        else:
            size = self.chunk_size or default_chunk_size(len(pending), self.workers)
            chunks = [pending[j : j + size] for j in range(0, len(pending), size)]
            pool = self._ensure_pool()
            futures = {
                pool.submit(execute_spec_batch, [batch[i] for i in chunk]): chunk
                for chunk in chunks
            }
            try:
                for future in as_completed(futures):
                    chunk_results = future.result()
                    for i, result in zip(futures[future], chunk_results):
                        results[i] = self._finish(batch[i], result)
                    done += len(futures[future])
                    if progress is not None:
                        progress(done, total)
            except BaseException:
                for future in futures:
                    future.cancel()
                raise

        return results  # type: ignore[return-value]

    def run_one(self, spec: RunSpec | Mapping) -> RunResult:
        """Execute a single spec (always serial, but cache-aware)."""
        return self.run([spec])[0]

    def _finish(self, spec: RunSpec, result: RunResult) -> RunResult:
        if self.cache is not None:
            self.cache.put(spec, result)
        return result


def run_specs(
    specs: Sequence[RunSpec | Mapping],
    *,
    workers: int | None = 1,
    cache: ResultCache | None = None,
    chunk_size: int | None = None,
    progress: ProgressCallback | None = None,
) -> list[RunResult]:
    """One-shot convenience wrapper: execute ``specs`` and tear the pool down."""
    with ParallelExecutor(workers, cache=cache, chunk_size=chunk_size) as executor:
        return executor.run(specs, progress=progress)


def dispatch_specs(
    specs: Sequence[RunSpec | Mapping],
    *,
    workers: int | None = 1,
    executor: ParallelExecutor | None = None,
    cache: ResultCache | None = None,
    progress: ProgressCallback | None = None,
) -> list[RunResult]:
    """Run a spec batch on a caller-provided executor, or a one-shot pool.

    The shared dispatch step behind every fragment-based entry point
    (``sweep``, ``worst_case_over``): an explicit ``executor`` wins (its
    own workers/cache/chunking apply); otherwise a pool is spun up and
    torn down around this one batch.  ``progress`` is forwarded either
    way.
    """
    if executor is not None:
        return executor.run(specs, progress=progress)
    return run_specs(specs, workers=workers, cache=cache, progress=progress)


def require_serial_factories(context: str, workers: int, executor) -> None:
    """Raise the shared error when live-object factories meet parallel options."""
    if workers != 1 or executor is not None:
        raise ValueError(
            f"parallel {context} needs declarative factories: return "
            "spec_fragment(...) dicts instead of live objects"
        )
