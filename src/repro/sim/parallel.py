"""Parallel experiment orchestration.

The paper's results are worst-case statements over adversary *families*,
so regenerating Table 1 and the figure sweeps means executing many
independent simulations.  :class:`ParallelExecutor` fans declarative
:class:`~repro.sim.specs.RunSpec` batches out to a process pool and
collects their :class:`~repro.sim.runner.RunResult` objects in order.

Design constraints:

* **Determinism** — a worker process reconstructs every algorithm,
  adversary and RNG from the spec alone, so a parallel run is bit-identical
  to its serial counterpart (asserted by
  ``tests/property/test_parallel_determinism.py``).
* **Spawn safety** — workers are started with the ``spawn`` method (no
  inherited state, works identically on Linux/macOS/Windows); the unit of
  work, :func:`repro.sim.specs.execute_spec`, is a module-level function,
  so it pickles cleanly.
* **Serial fallback** — ``workers=1`` executes in-process with no pool at
  all, which keeps single-run debugging (pdb, profilers, exceptions with
  full local state) trivial.
* **Caching** — an optional :class:`~repro.sim.cache.ResultCache` is
  consulted before any work is scheduled and updated as results arrive.
* **Chunking** — small specs are batched per worker dispatch
  (:func:`repro.sim.specs.execute_spec_batch`) so that pickling/IPC
  overhead is amortised over several runs; result ordering and cache
  semantics are unchanged.
* **Progress** — any ``progress(done, total)`` callable (e.g.
  :class:`~repro.sim.progress.ProgressTicker`) is invoked as results
  arrive, cache hits included.
* **Supervision** — with an :class:`ExecutionPolicy` (or a
  :class:`~repro.sim.manifest.SweepManifest`) attached, the executor runs
  a supervised loop instead of the bare dispatch: failed attempts retry
  with deterministic exponential backoff, specs exceeding their deadline
  are timed out (the pool is terminated and respawned), dead pools are
  respawned with in-flight work requeued, poison specs are quarantined
  as structured :class:`~repro.sim.faults.FailedResult` entries after the
  retry budget instead of aborting the batch, and a pool that keeps
  dying degrades gracefully to in-process serial execution.  Fault
  injection (:class:`~repro.sim.faults.FaultPlan`) rides the same loop,
  and the per-spec results are bit-identical to an unsupervised run
  (property-tested by ``tests/property/test_fault_tolerance.py``).
"""

from __future__ import annotations

import dataclasses
import math
import multiprocessing
import os
import time
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    ProcessPoolExecutor,
    as_completed,
    wait as futures_wait,
)
from dataclasses import dataclass
from typing import Callable, Iterable, Mapping, Sequence

from .cache import ResultCache
from .faults import FailedResult, FaultPlan, mark_worker_process
from .manifest import SweepManifest
from .runner import RunResult
from .specs import RunSpec, execute_spec, execute_spec_batch

__all__ = [
    "ExecutionPolicy",
    "ExecutorStats",
    "ParallelExecutor",
    "WorkerCrashError",
    "default_chunk_size",
    "default_worker_count",
    "dispatch_specs",
    "run_specs",
]

#: Progress callback signature: ``progress(done, total)``.
ProgressCallback = Callable[[int, int], None]


class WorkerCrashError(RuntimeError):
    """A worker process died (or the whole pool broke) mid-dispatch."""


class SpecTimeoutError(RuntimeError):
    """A dispatch ran past its supervised deadline and was killed."""


def default_worker_count() -> int:
    """A sensible default worker count: the machine's CPU count."""
    return max(1, os.cpu_count() or 1)


def default_chunk_size(pending: int, workers: int) -> int:
    """Specs per worker dispatch: ~4 chunks per worker, at most 32 per chunk.

    Small enough that stragglers do not serialise the tail of a batch,
    large enough that spawn/pickling overhead is amortised when a batch
    holds many short runs.
    """
    return max(1, min(32, math.ceil(pending / (workers * 4))))


@dataclass
class ExecutionPolicy:
    """How the supervised executor treats failures.

    Parameters
    ----------
    max_retries:
        Failed attempts a spec may burn beyond its first before it is
        quarantined as a :class:`FailedResult` (``0`` = quarantine on
        the first failure; the batch itself never aborts).
    spec_timeout:
        Wall-clock seconds a dispatched spec may run before the pool is
        terminated and the spec retried (``None`` = no deadline).
        Enforced at dispatch granularity: a chunk of *k* specs gets
        ``k * spec_timeout``; retries always dispatch singly, so a
        repeat offender gets exactly ``spec_timeout``.
    backoff_base / backoff_cap:
        Deterministic exponential backoff before retry *n*:
        ``min(backoff_cap, backoff_base * 2**(n-1))`` seconds — no
        jitter, so supervised schedules replay exactly.
    fault_plan:
        Optional deterministic :class:`FaultPlan`; each dispatch is
        stamped with the plan and the spec's attempt number, and the
        supervisor uses the same plan to *attribute* pool deaths to the
        spec whose kill coin fired.
    serial_degrade_after:
        After this many pool breakages (crashes or timeouts) in one
        batch, the executor stops respawning pools and finishes the
        batch in-process (kill faults degrade to transients there).
    """

    max_retries: int = 2
    spec_timeout: float | None = None
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    fault_plan: FaultPlan | None = None
    serial_degrade_after: int = 3

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.spec_timeout is not None and self.spec_timeout <= 0:
            raise ValueError("spec_timeout must be positive (or None)")
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ValueError("backoff must be non-negative")
        if self.serial_degrade_after < 1:
            raise ValueError("serial_degrade_after must be at least 1")

    def backoff_delay(self, attempt: int) -> float:
        """Deterministic delay before retry number ``attempt`` (1-based)."""
        if attempt <= 0 or self.backoff_base <= 0:
            return 0.0
        return min(self.backoff_cap, self.backoff_base * (2 ** (attempt - 1)))


@dataclass
class ExecutorStats:
    """Counters accumulated by the supervised loop (read by the ticker)."""

    retries: int = 0
    quarantined: int = 0
    timeouts: int = 0
    pool_respawns: int = 0
    resumed_failures: int = 0
    cache_corruptions: int = 0
    serial_degraded: bool = False
    # RPC health, synced from a remote cache backend when one is attached.
    rpc_retries: int = 0
    circuit_opens: int = 0
    circuit_closes: int = 0
    spilled: int = 0
    reconciled: int = 0

    def summary(self) -> str:
        """Short human summary, empty when nothing noteworthy happened."""
        parts = []
        if self.retries:
            parts.append(f"{self.retries} retries")
        if self.quarantined:
            parts.append(f"{self.quarantined} quarantined")
        if self.cache_corruptions:
            parts.append(f"{self.cache_corruptions} corrupt cache entries")
        if self.resumed_failures:
            parts.append(f"{self.resumed_failures} resumed-failed")
        if self.timeouts:
            parts.append(f"{self.timeouts} timeouts")
        if self.pool_respawns:
            parts.append(f"{self.pool_respawns} respawns")
        if self.serial_degraded:
            parts.append("serial degrade")
        if self.rpc_retries:
            parts.append(f"{self.rpc_retries} rpc retries")
        if self.circuit_opens:
            parts.append(
                f"{self.circuit_opens} circuit opens/{self.circuit_closes} closes"
            )
        if self.spilled:
            parts.append(f"{self.spilled} spilled/{self.reconciled} reconciled")
        return ", ".join(parts)


@dataclass
class _Dispatch:
    """One queued/in-flight unit of supervised work."""

    indices: list[int]
    ready_at: float = 0.0
    deadline: float | None = None


def _coerce_specs(specs: Iterable[RunSpec | Mapping]) -> list[RunSpec]:
    out: list[RunSpec] = []
    for spec in specs:
        if isinstance(spec, RunSpec):
            out.append(spec)
        elif isinstance(spec, Mapping):
            out.append(RunSpec.from_dict(spec))
        else:
            raise TypeError(f"expected RunSpec or mapping, got {type(spec).__name__}")
    return out


class ParallelExecutor:
    """Process-pool-backed executor for batches of :class:`RunSpec`.

    Parameters
    ----------
    workers:
        Number of worker processes.  ``1`` (the default) runs everything
        serially in the calling process; ``None`` uses the CPU count.
    cache:
        Optional :class:`ResultCache`; hits skip execution entirely and
        fresh results are written back.
    mp_context:
        Multiprocessing start method; ``"spawn"`` is the safe default.
    chunk_size:
        Specs shipped per worker dispatch; ``None`` (default) picks
        :func:`default_chunk_size` per batch.  ``1`` restores one-spec
        dispatches.
    progress:
        Optional ``progress(done, total)`` callback invoked for every
        batch this executor runs (a per-``run`` callback can override it).
    policy:
        Optional :class:`ExecutionPolicy`.  When set (or when a manifest
        is attached) batches run through the supervised loop: bounded
        retries with deterministic backoff, per-spec timeouts, pool
        respawn, poison-spec quarantine and serial degradation.  Without
        it the executor keeps the original fail-fast semantics (the
        first worker exception propagates).
    manifest:
        Optional :class:`SweepManifest` checkpoint, updated incrementally
        as specs finish, fail or retry; a *resumed* manifest short-cuts
        specs the previous run quarantined.

    The executor may be used as a context manager; the worker pool is
    created lazily on the first parallel batch and reused across ``run``
    calls until :meth:`close`.  :attr:`stats` accumulates supervised
    counters across those calls.
    """

    def __init__(
        self,
        workers: int | None = 1,
        *,
        cache: ResultCache | None = None,
        mp_context: str = "spawn",
        chunk_size: int | None = None,
        progress: ProgressCallback | None = None,
        policy: ExecutionPolicy | None = None,
        manifest: SweepManifest | None = None,
    ) -> None:
        if workers is None:
            workers = default_worker_count()
        if workers < 1:
            raise ValueError("workers must be at least 1")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be at least 1")
        self.workers = workers
        self.cache = cache
        self.chunk_size = chunk_size
        self.progress = progress
        self.policy = policy
        self.manifest = manifest
        self.stats = ExecutorStats()
        self._mp_context = mp_context
        self._pool: ProcessPoolExecutor | None = None
        self._rpc_seen: dict[str, int] = {}

    def _sync_rpc_stats(self) -> None:
        """Fold the remote cache backend's counter deltas into stats.

        No-op for local caches; cheap enough to call per finished spec
        so the progress ticker reflects spill/reconcile activity live.
        """
        if self.cache is None:
            return
        getter = getattr(self.cache, "rpc_stats", None)
        if not callable(getter):
            return
        totals = getter()
        if not totals:
            return
        seen = self._rpc_seen
        self.stats.rpc_retries += totals.get("retries", 0) - seen.get("retries", 0)
        self.stats.circuit_opens += totals.get("circuit_opens", 0) - seen.get(
            "circuit_opens", 0
        )
        self.stats.circuit_closes += totals.get("circuit_closes", 0) - seen.get(
            "circuit_closes", 0
        )
        self.stats.spilled += totals.get("spilled", 0) - seen.get("spilled", 0)
        self.stats.reconciled += totals.get("reconciled", 0) - seen.get(
            "reconciled", 0
        )
        self._rpc_seen = dict(totals)

    # -- lifecycle ------------------------------------------------------------
    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=multiprocessing.get_context(self._mp_context),
                initializer=mark_worker_process,
            )
        return self._pool

    def close(self) -> None:
        """Shut down the worker pool (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None

    def _teardown_pool(self, *, terminate: bool) -> None:
        """Drop the pool so the next dispatch respawns it.

        ``terminate=True`` hard-kills worker processes first — the only
        way to reclaim a worker stuck past its deadline (there is no
        cooperative cancel for running pool tasks).
        """
        pool = self._pool
        if pool is None:
            return
        if terminate:
            for proc in list(getattr(pool, "_processes", {}).values()):
                try:
                    proc.terminate()
                except Exception:
                    pass
        pool.shutdown(wait=False, cancel_futures=True)
        self._pool = None

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- execution ------------------------------------------------------------
    def run(
        self,
        specs: Sequence[RunSpec | Mapping],
        *,
        progress: ProgressCallback | None = None,
    ) -> list[RunResult | FailedResult]:
        """Execute every spec and return results in input order.

        Unsupervised (no policy/manifest): the first worker exception
        propagates and aborts the batch.  Supervised: exceptions are
        retried and, past the budget, quarantined — every slot of the
        returned list is then either a :class:`RunResult` or a
        :class:`FailedResult`, and the batch always completes.
        """
        batch = _coerce_specs(specs)
        results: list[RunResult | FailedResult | None] = [None] * len(batch)
        progress = progress if progress is not None else self.progress
        total = len(batch)

        pending: list[int] = []
        corruptions_before = self.cache.quarantined if self.cache is not None else 0
        for i, spec in enumerate(batch):
            hit = self.cache.get(spec) if self.cache is not None else None
            if hit is not None:
                results[i] = hit
            else:
                pending.append(i)
        if self.cache is not None:
            # Entries the hit scan quarantined read as misses and are
            # silently recomputed; surface them so corrupted-cache
            # re-runs are visible in the stats/ticker.
            self.stats.cache_corruptions += self.cache.quarantined - corruptions_before
            self._sync_rpc_stats()

        done = total - len(pending)
        if self.policy is not None or self.manifest is not None:
            run = _SupervisedRun(self, batch, results, progress, done, total)
            run.execute(pending)
            if self.manifest is not None:
                # Leave a plain JSON snapshot behind (fold the event log).
                self.manifest.compact()
            return results  # type: ignore[return-value]

        if progress is not None and (done or not pending):
            progress(done, total)
        if not pending:
            return results  # type: ignore[return-value]

        if self.workers == 1 or len(pending) == 1:
            for i in pending:
                results[i] = self._finish(batch[i], execute_spec(batch[i]))
                done += 1
                if progress is not None:
                    progress(done, total)
        else:
            size = self.chunk_size or default_chunk_size(len(pending), self.workers)
            chunks = [pending[j : j + size] for j in range(0, len(pending), size)]
            pool = self._ensure_pool()
            futures = {
                pool.submit(execute_spec_batch, [batch[i] for i in chunk]): chunk
                for chunk in chunks
            }
            try:
                for future in as_completed(futures):
                    chunk_results = future.result()
                    for i, result in zip(futures[future], chunk_results):
                        results[i] = self._finish(batch[i], result)
                    done += len(futures[future])
                    if progress is not None:
                        progress(done, total)
            except BaseException:
                for future in futures:
                    future.cancel()
                raise

        return results  # type: ignore[return-value]

    def run_one(self, spec: RunSpec | Mapping) -> RunResult:
        """Execute a single spec (always serial, but cache-aware)."""
        return self.run([spec])[0]

    def _finish(self, spec: RunSpec, result: RunResult) -> RunResult:
        if self.cache is not None and isinstance(result, RunResult):
            self.cache.put(spec, result)
            self._sync_rpc_stats()
        return result


class _SupervisedRun:
    """State of one supervised batch: attempts, events, requeue logic.

    The contract the fault-tolerance property suite pins: whatever faults
    fire, every result slot ends up holding either the bit-identical
    :class:`RunResult` a fault-free run computes, or — only once the
    retry budget is truly exhausted — a structured :class:`FailedResult`.
    """

    def __init__(
        self,
        executor: ParallelExecutor,
        batch: list[RunSpec],
        results: list,
        progress: ProgressCallback | None,
        done: int,
        total: int,
    ) -> None:
        self.executor = executor
        self.policy = executor.policy or ExecutionPolicy()
        self.manifest = executor.manifest
        self.stats = executor.stats
        self.batch = batch
        self.results = results
        self.progress = progress
        self.done = done
        self.total = total
        self.attempts: dict[int, int] = {}
        self.events: dict[int, list[str]] = {}

    # -- bookkeeping ----------------------------------------------------------
    def _tick(self) -> None:
        if self.progress is not None:
            self.progress(self.done, self.total)

    def _stamped(self, i: int) -> RunSpec:
        plan = self.policy.fault_plan
        if plan is None or not plan.active:
            return self.batch[i]
        return dataclasses.replace(
            self.batch[i], fault_plan=plan.stamp(self.attempts.get(i, 0))
        )

    def _finish(self, i: int, result: RunResult) -> None:
        self.results[i] = result
        if self.executor.cache is not None:
            self.executor.cache.put(self.batch[i], result)
            self.executor._sync_rpc_stats()
        if self.manifest is not None:
            self.manifest.record_done(self.batch[i], attempts=self.attempts.get(i, 0))
        self.done += 1
        self._tick()

    def _quarantine(self, i: int, exc: BaseException) -> None:
        failure = FailedResult(
            spec=self.batch[i],
            error=str(exc),
            error_type=type(exc).__name__,
            attempts=self.attempts.get(i, 0),
            fault_events=list(self.events.get(i, [])),
        )
        self.results[i] = failure
        self.stats.quarantined += 1
        if self.manifest is not None:
            self.manifest.record_failed(self.batch[i], failure)
        self.done += 1
        self._tick()

    def _register_failure(self, i: int, exc: BaseException) -> bool:
        """Count a failed attempt; quarantine past the budget.

        Returns True when the spec should be retried.
        """
        attempt = self.attempts.get(i, 0)
        self.attempts[i] = attempt + 1
        event = f"attempt {attempt}: {type(exc).__name__}: {exc}"
        self.events.setdefault(i, []).append(event)
        if self.manifest is not None:
            self.manifest.record_attempt(self.batch[i], self.attempts[i], event)
        if self.attempts[i] > self.policy.max_retries:
            self._quarantine(i, exc)
            return False
        self.stats.retries += 1
        return True

    # -- entry point ----------------------------------------------------------
    def execute(self, pending: list[int]) -> None:
        manifest = self.manifest
        if manifest is not None:
            # Checkpoint cache hits, short-cut previously quarantined
            # specs (resume), and mark the remainder pending.
            for i, result in enumerate(self.results):
                if isinstance(result, RunResult):
                    manifest.record_done(self.batch[i], attempts=0)
            if manifest.resumed:
                still: list[int] = []
                for i in pending:
                    prior = manifest.prior_failure(self.batch[i])
                    if prior is not None:
                        self.results[i] = prior
                        self.stats.resumed_failures += 1
                        self.done += 1
                    else:
                        still.append(i)
                pending = still
            for i in pending:
                manifest.record_pending(self.batch[i])
        if self.done or not pending:
            self._tick()
        if not pending:
            return
        if self.executor.workers == 1:
            self._execute_serial(pending)
        else:
            self._execute_parallel(pending)

    # -- serial supervised path ------------------------------------------------
    def _execute_serial(self, pending: Sequence[int]) -> None:
        for i in pending:
            self._execute_one_serial(i)

    def _execute_one_serial(self, i: int) -> None:
        while True:
            try:
                result = execute_spec(self._stamped(i))
            except Exception as exc:
                if not self._register_failure(i, exc):
                    return
                delay = self.policy.backoff_delay(self.attempts[i])
                if delay:
                    time.sleep(delay)
                continue
            self._finish(i, result)
            return

    # -- parallel supervised path ----------------------------------------------
    def _execute_parallel(self, pending: list[int]) -> None:
        executor = self.executor
        policy = self.policy
        size = executor.chunk_size or default_chunk_size(len(pending), executor.workers)
        queue: deque[_Dispatch] = deque(
            _Dispatch(indices=pending[j : j + size])
            for j in range(0, len(pending), size)
        )
        window: dict = {}
        breakages = 0

        while queue or window:
            if breakages >= policy.serial_degrade_after:
                # The pool keeps dying: stop paying respawn costs and
                # finish in-process (kill faults degrade to transients).
                self.stats.serial_degraded = True
                executor._teardown_pool(terminate=True)
                leftover = sorted(
                    {i for d in [*window.values(), *queue] for i in d.indices}
                )
                window.clear()
                queue.clear()
                self._execute_serial(leftover)
                return

            now = time.monotonic()
            while queue and len(window) < executor.workers:
                dispatch = self._pop_ready(queue, now)
                if dispatch is None:
                    break
                specs = [self._stamped(i) for i in dispatch.indices]
                future = executor._ensure_pool().submit(execute_spec_batch, specs)
                if policy.spec_timeout is not None:
                    dispatch.deadline = (
                        time.monotonic() + policy.spec_timeout * len(dispatch.indices)
                    )
                window[future] = dispatch

            if not window:
                # Everything runnable is backing off; sleep to the next
                # ready time instead of spinning.
                next_ready = min(d.ready_at for d in queue)
                time.sleep(max(0.0, next_ready - time.monotonic()))
                continue

            done_set, _ = futures_wait(
                set(window),
                timeout=self._wait_timeout(window, queue),
                return_when=FIRST_COMPLETED,
            )

            broken = False
            crashed: list[_Dispatch] = []
            for future in done_set:
                dispatch = window.pop(future)
                try:
                    chunk_results = future.result()
                except BrokenExecutor:
                    broken = True
                    crashed.append(dispatch)
                except Exception as exc:
                    self._dispatch_failed(dispatch, exc, queue)
                else:
                    for i, result in zip(dispatch.indices, chunk_results):
                        self._finish(i, result)

            if broken:
                breakages += 1
                self.stats.pool_respawns += 1
                executor._teardown_pool(terminate=True)
                in_flight = crashed + list(window.values())
                window.clear()
                self._requeue_after_pool_death(in_flight, queue)
                continue

            if policy.spec_timeout is not None:
                now = time.monotonic()
                expired = [
                    future
                    for future, dispatch in window.items()
                    if dispatch.deadline is not None and now > dispatch.deadline
                ]
                if expired:
                    breakages += 1
                    self.stats.pool_respawns += 1
                    executor._teardown_pool(terminate=True)
                    for future in expired:
                        dispatch = window.pop(future)
                        self.stats.timeouts += len(dispatch.indices)
                        for i in dispatch.indices:
                            exc = SpecTimeoutError(
                                f"exceeded the {policy.spec_timeout}s deadline"
                            )
                            if self._register_failure(i, exc):
                                queue.append(
                                    _Dispatch(
                                        [i],
                                        ready_at=time.monotonic()
                                        + policy.backoff_delay(self.attempts[i]),
                                    )
                                )
                    # Collateral: the pool died under the other in-flight
                    # dispatches too; requeue them without burning an
                    # attempt (the fault was not theirs).
                    for dispatch in window.values():
                        queue.append(_Dispatch(list(dispatch.indices)))
                    window.clear()

    def _pop_ready(self, queue: deque, now: float) -> _Dispatch | None:
        for _ in range(len(queue)):
            dispatch = queue.popleft()
            if dispatch.ready_at <= now:
                return dispatch
            queue.append(dispatch)
        return None

    def _wait_timeout(self, window: dict, queue: deque) -> float | None:
        """How long to block in wait(): until the next deadline or backoff
        expiry, or indefinitely when neither is armed."""
        now = time.monotonic()
        candidates = [
            d.deadline - now for d in window.values() if d.deadline is not None
        ]
        if queue and len(window) < self.executor.workers:
            candidates.append(min(d.ready_at for d in queue) - now)
        if not candidates:
            return None
        return max(0.01, min(candidates))

    def _dispatch_failed(
        self, dispatch: _Dispatch, exc: BaseException, queue: deque
    ) -> None:
        """An ordinary exception came back from a dispatch.

        A multi-spec chunk fails as a unit (``execute_spec_batch`` raises
        at the first bad spec), so it is split and re-dispatched singly —
        attempts unchanged — to attribute the failure; a single-spec
        dispatch is the attribution, and burns an attempt.
        """
        if len(dispatch.indices) > 1:
            for i in dispatch.indices:
                queue.append(_Dispatch([i]))
            return
        i = dispatch.indices[0]
        if self._register_failure(i, exc):
            queue.append(
                _Dispatch(
                    [i],
                    ready_at=time.monotonic()
                    + self.policy.backoff_delay(self.attempts[i]),
                )
            )

    def _requeue_after_pool_death(
        self, in_flight: list[_Dispatch], queue: deque
    ) -> None:
        """Requeue everything that was in flight when the pool broke.

        With a fault plan armed, the supervisor replays the same coins
        the workers did and *attributes* the crash: specs whose kill
        coin fired burn an attempt, everything else requeues free.
        Without a plan (a real crash) attribution is impossible, so every
        in-flight spec conservatively burns an attempt.
        """
        plan = self.policy.fault_plan
        for dispatch in in_flight:
            for i in dispatch.indices:
                attributed = True
                if plan is not None and plan.active:
                    kind = plan.worker_fault(
                        self.batch[i].spec_hash(), self.attempts.get(i, 0)
                    )
                    attributed = kind == "kill"
                if attributed:
                    exc = WorkerCrashError("worker process died mid-dispatch")
                    if self._register_failure(i, exc):
                        queue.append(
                            _Dispatch(
                                [i],
                                ready_at=time.monotonic()
                                + self.policy.backoff_delay(self.attempts[i]),
                            )
                        )
                else:
                    queue.append(_Dispatch([i]))


def run_specs(
    specs: Sequence[RunSpec | Mapping],
    *,
    workers: int | None = 1,
    cache: ResultCache | None = None,
    chunk_size: int | None = None,
    progress: ProgressCallback | None = None,
    policy: ExecutionPolicy | None = None,
    manifest: SweepManifest | None = None,
) -> list[RunResult | FailedResult]:
    """One-shot convenience wrapper: execute ``specs`` and tear the pool down."""
    with ParallelExecutor(
        workers, cache=cache, chunk_size=chunk_size, policy=policy, manifest=manifest
    ) as executor:
        return executor.run(specs, progress=progress)


def dispatch_specs(
    specs: Sequence[RunSpec | Mapping],
    *,
    workers: int | None = 1,
    executor: ParallelExecutor | None = None,
    cache: ResultCache | None = None,
    progress: ProgressCallback | None = None,
    policy: ExecutionPolicy | None = None,
    manifest: SweepManifest | None = None,
) -> list[RunResult | FailedResult]:
    """Run a spec batch on a caller-provided executor, or a one-shot pool.

    The shared dispatch step behind every fragment-based entry point
    (``sweep``, ``worst_case_over``): an explicit ``executor`` wins (its
    own workers/cache/chunking/policy apply); otherwise a pool is spun up
    and torn down around this one batch.  ``progress`` is forwarded
    either way.
    """
    if executor is not None:
        return executor.run(specs, progress=progress)
    return run_specs(
        specs,
        workers=workers,
        cache=cache,
        progress=progress,
        policy=policy,
        manifest=manifest,
    )


def require_serial_factories(context: str, workers: int, executor) -> None:
    """Raise the shared error when live-object factories meet parallel options."""
    if workers != 1 or executor is not None:
        raise ValueError(
            f"parallel {context} needs declarative factories: return "
            "spec_fragment(...) dicts instead of live objects"
        )
