"""Plain-text and CSV reporting of runs, sweeps and experiments."""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Iterable

from ..metrics.summary import RunSummary
from .runner import RunResult
from .sweep import SweepSeries

__all__ = [
    "summaries_table",
    "sweep_table",
    "series_to_csv",
    "write_csv",
    "queue_trajectory_sparkline",
]


def summaries_table(results: Iterable[RunResult]) -> str:
    """Render a list of runs as an aligned text table."""
    lines = [RunSummary.header()]
    for result in results:
        lines.append(result.summary.format_row())
    return "\n".join(lines)


def sweep_table(series: SweepSeries) -> str:
    """Render one sweep series as an aligned text table."""
    header = (
        f"{series.parameter:>10s}  {'latency':>10s}  {'max queue':>10s}  "
        f"{'E/round':>8s}  verdict"
    )
    lines = [f"series: {series.name}", header, "-" * len(header)]
    for point in series.points:
        if point.failed:
            lines.append(f"{point.value:>10.4g}  {point.result.describe()}")
            continue
        lines.append(
            f"{point.value:>10.4g}  {point.latency:>10d}  {point.max_queue:>10d}  "
            f"{point.energy_per_round:>8.2f}  {'stable' if point.stable else 'UNSTABLE'}"
        )
    return "\n".join(lines)


def series_to_csv(series_map: dict[str, SweepSeries]) -> str:
    """Serialise a dict of sweep series (one figure) to CSV text."""
    buffer = io.StringIO()
    fieldnames: list[str] = []
    rows: list[dict] = []
    for series in series_map.values():
        for row in series.as_rows():
            rows.append(row)
            for key in row:
                if key not in fieldnames:
                    fieldnames.append(key)
    writer = csv.DictWriter(buffer, fieldnames=fieldnames)
    writer.writeheader()
    for row in rows:
        writer.writerow(row)
    return buffer.getvalue()


def write_csv(series_map: dict[str, SweepSeries], path: str | Path) -> Path:
    """Write a figure's sweep series to a CSV file and return its path."""
    path = Path(path)
    path.write_text(series_to_csv(series_map))
    return path


_SPARK_CHARS = " .:-=+*#%@"


def queue_trajectory_sparkline(result: RunResult, width: int = 72) -> str:
    """A terminal-friendly sparkline of the total queue-size trajectory."""
    series = result.collector.total_queue_series
    if not series:
        return "(empty run)"
    bucket = max(1, len(series) // width)
    buckets = [
        max(series[i : i + bucket]) for i in range(0, len(series), bucket)
    ]
    peak = max(buckets) or 1
    chars = [
        _SPARK_CHARS[min(len(_SPARK_CHARS) - 1, int(v / peak * (len(_SPARK_CHARS) - 1)))]
        for v in buckets
    ]
    return "".join(chars) + f"   (peak {peak})"
