"""Progress reporting for long spec batches.

The parallel layer accepts any ``progress(done, total)`` callable and
invokes it as results arrive (cache hits count immediately).
:class:`ProgressTicker` is the stock implementation behind the CLI's
``--progress`` flag: a carriage-return ticker on interactive terminals,
sparse one-per-line updates when stderr is redirected (CI logs).
"""

from __future__ import annotations

import sys
from typing import IO, Callable

__all__ = ["ProgressTicker"]


class ProgressTicker:
    """Render ``done/total`` progress of spec batches to a stream.

    Parameters
    ----------
    label:
        Short prefix identifying what is being counted (e.g. ``"runs"``).
    stream:
        Output stream; defaults to ``sys.stderr``.
    min_fraction:
        On non-interactive streams, only emit a line every time progress
        advances by at least this fraction of the batch (and always for
        the final result), keeping CI logs readable.
    stats:
        Optional zero-argument callable returning a short status string
        (e.g. ``ExecutorStats.summary`` of a supervised executor); when
        it returns non-empty text — retry/quarantine/timeout counts — it
        is appended to every emitted line in brackets.
    """

    def __init__(
        self,
        label: str = "runs",
        stream: IO[str] | None = None,
        min_fraction: float = 0.1,
        stats: Callable[[], str] | None = None,
    ) -> None:
        self.label = label
        self.stream = stream if stream is not None else sys.stderr
        self.min_fraction = min_fraction
        self.stats = stats
        self._last_emitted = -1

    def _suffix(self) -> str:
        if self.stats is None:
            return ""
        text = self.stats()
        return f"  [{text}]" if text else ""

    def __call__(self, done: int, total: int) -> None:
        interactive = bool(getattr(self.stream, "isatty", lambda: False)())
        if interactive:
            self.stream.write(f"\r{self.label}: {done}/{total}{self._suffix()}")
            if done >= total:
                self.stream.write("\n")
            self.stream.flush()
            return
        # One ticker may serve several consecutive batches (e.g. one per
        # table1 adversary family): a count that went backwards means a
        # new batch started, so re-arm the sparse-emission threshold.
        if done < self._last_emitted:
            self._last_emitted = -1
        step = max(1, int(total * self.min_fraction))
        if done >= total or self._last_emitted < 0 or done - self._last_emitted >= step:
            self.stream.write(f"{self.label}: {done}/{total}{self._suffix()}\n")
            self.stream.flush()
            self._last_emitted = done if done < total else -1
