"""Filesystem work queue with lease-based claims and work stealing.

The distributed sweep layer needs a coordination substrate that any
number of worker processes — on one machine or many sharing a filesystem
— can use without a broker, a database or any new dependency.  This
module provides it with nothing but directories and atomic renames:

* a sweep is **enqueued** as shards (a few :class:`~repro.sim.specs.RunSpec`
  dicts per JSON payload) dropped into ``pending/``;
* a worker **claims** a shard by renaming it into ``leased/`` — rename is
  atomic on POSIX, so of any number of racing claimants exactly one wins
  and the losers see :class:`FileNotFoundError` and move on;
* the lease carries a **TTL** encoded in its filename; the worker
  **heartbeats** by renaming the lease onto a fresh expiry while it
  executes;
* a lease whose TTL lapses (worker crashed, stalled, or was killed) is
  **reclaimed**: any process may rename it back into ``pending/`` with
  the shard's *takeover counter* bumped — this is work stealing, and the
  counter survives crashes because it lives in the filename, not in any
  process's memory;
* a finished shard publishes per-spec status records into ``done/`` and
  drops its lease.

Every transition is a single ``os.rename``/``os.replace``; there are no
lock files and no read-modify-write windows.  The payload *content* never
changes after enqueue — all mutable state (takeovers, owner, expiry) is
encoded in filenames:

.. code-block:: text

    pending/{shard}.t{takeovers}.json
    leased/{shard}.t{takeovers}.{owner}.{expires_ms}.json
    done/{shard}.json

Shard ids and owner names are sanitised to ``[A-Za-z0-9_-]`` so the
dot-separated grammar parses unambiguously.

Delivery is **at least once**: a stolen shard may still be finished by
its original (slow, not dead) owner, so two workers can execute the same
spec.  That is safe because results land in the content-addressed,
checksummed :class:`~repro.sim.cache.ResultCache` — both workers compute
the bit-identical payload and the last atomic rename wins — and because
``done/`` records are whole-file replacements.  The takeover counter
doubles as the shard's global attempt clock for deterministic fault
injection: :meth:`FaultPlan.with_offset(takeovers)
<repro.sim.faults.FaultPlan.with_offset>` lets a stolen shard resume the
fault-coin stream where its dead predecessor left it, so the fault
budget bounds faults per spec across the whole fleet, not per process.
"""

from __future__ import annotations

import json
import os
import re
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Sequence

from .faults import FailedResult
from .netclient import ResilientClient, RpcError, RpcHttpError, RpcPolicy
from .runner import RunResult
from .specs import RunSpec

if TYPE_CHECKING:  # pragma: no cover
    from .cache import ResultCache
    from .faults import FaultPlan

__all__ = [
    "DEFAULT_LEASE_TTL",
    "LeaseLostError",
    "RemoteWorkLease",
    "RemoteWorkQueue",
    "WorkLease",
    "WorkQueue",
    "collect_results",
    "shard_index",
    "status_record",
]

#: Default lease TTL in seconds before a claimed shard may be stolen.
DEFAULT_LEASE_TTL = 15.0

_NAME_RE = re.compile(r"[^A-Za-z0-9_-]+")


def _sanitize(name: str, fallback: str) -> str:
    """Restrict ``name`` to the filename-grammar alphabet."""
    cleaned = _NAME_RE.sub("-", name).strip("-")
    return cleaned or fallback


def _now_ms() -> int:
    """Wall-clock milliseconds — lease expiries must compare across processes."""
    return int(time.time() * 1000)


def shard_index(spec_hash: str, shards: int) -> int:
    """Deterministic shard assignment for a canonical spec hash.

    Folds the first 64 bits of the hex hash modulo ``shards`` — stable
    across processes, machines and Python versions (no ``hash()``
    randomisation), so ``repro sweep --shard i/k`` partitions identically
    everywhere and the union of the *k* shards is exactly the full sweep.
    """
    if shards < 1:
        raise ValueError("shard count must be at least 1")
    return int(spec_hash[:16], 16) % shards


class LeaseLostError(RuntimeError):
    """The lease vanished mid-heartbeat: it expired and was stolen."""


@dataclass
class WorkLease:
    """One claimed shard: the specs to run plus the lease lifecycle.

    All mutating methods are filename renames.  Exactly one of
    :meth:`complete` / :meth:`abandon` / losing the lease ends the
    lifecycle; a lost lease (stolen after expiry) flips :attr:`lost` and
    all later operations become no-ops that report the loss.
    """

    queue: "WorkQueue"
    shard_id: str
    takeovers: int
    owner: str
    specs: list[RunSpec]
    path: Path
    expires_ms: int
    lost: bool = field(default=False)

    def _leased_name(self, expires_ms: int) -> str:
        return f"{self.shard_id}.t{self.takeovers}.{self.owner}.{expires_ms}.json"

    def heartbeat(self, ttl: float | None = None) -> None:
        """Push the lease expiry ``ttl`` seconds into the future.

        Raises :class:`LeaseLostError` if the lease file is gone — the
        TTL lapsed and another process reclaimed the shard.  The caller
        should stop working on it (any results already cached remain
        valid; the thief recomputes idempotently).
        """
        if self.lost:
            raise LeaseLostError(f"lease on {self.shard_id} already lost")
        ttl = self.queue.lease_ttl if ttl is None else ttl
        expires = _now_ms() + int(ttl * 1000)
        target = self.queue.leased_dir / self._leased_name(expires)
        try:
            os.rename(self.path, target)
        except FileNotFoundError:
            self.lost = True
            raise LeaseLostError(
                f"lease on {self.shard_id} expired and was stolen from {self.owner}"
            ) from None
        self.path = target
        self.expires_ms = expires

    def complete(self, statuses: Sequence[dict], extra: dict | None = None) -> bool:
        """Publish per-spec status records and release the lease.

        The ``done/`` record is written (atomically, last-writer-wins —
        racing completions of a stolen-and-finished-twice shard converge
        on one whole file) *before* the lease is dropped, so a crash in
        between leaves a completed shard with a stale lease that any
        claimant will recognise as done.  ``extra`` (e.g. the worker's
        RPC/spill counter deltas for this shard) rides along in the done
        record under ``"rpc"``.  Returns False when the lease had
        already been stolen; the statuses are published either way.
        """
        self.queue._write_done(self.shard_id, list(statuses), extra=extra)
        try:
            os.unlink(self.path)
        except FileNotFoundError:
            self.lost = True
            return False
        return True

    def abandon(self) -> bool:
        """Hand the shard back to ``pending/`` with the takeover bumped.

        Used by a worker shutting down cleanly mid-shard; the bump keeps
        the fault-coin stream advancing exactly as a crash-and-steal
        would.  Returns False if the lease was already stolen.
        """
        target = self.queue.pending_dir / f"{self.shard_id}.t{self.takeovers + 1}.json"
        try:
            os.rename(self.path, target)
        except FileNotFoundError:
            self.lost = True
            return False
        return True


class WorkQueue:
    """A directory tree of shard files coordinating sweep workers.

    Parameters
    ----------
    root:
        Queue directory; created (with its ``queue.json`` config) if
        absent.  Reopening an existing root inherits its recorded
        ``lease_ttl``/``cache_dir`` unless overridden explicitly.
    lease_ttl:
        Seconds before an unrenewed lease may be stolen.
    cache_dir:
        Shared :class:`~repro.sim.cache.ResultCache` directory recorded
        in the config so workers and the server agree on where results
        land without passing the path out of band.
    """

    CONFIG_VERSION = 1

    def __init__(
        self,
        root: str | Path,
        *,
        lease_ttl: float | None = None,
        cache_dir: str | Path | None = None,
    ) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        config = self._load_config()
        if lease_ttl is None:
            lease_ttl = config.get("lease_ttl", DEFAULT_LEASE_TTL)
        if lease_ttl <= 0:
            raise ValueError("lease_ttl must be positive")
        if cache_dir is None:
            recorded = config.get("cache_dir")
            cache_dir = Path(recorded) if recorded else None
        self.lease_ttl = float(lease_ttl)
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        for sub in (self.pending_dir, self.leased_dir, self.done_dir):
            sub.mkdir(parents=True, exist_ok=True)
        self._save_config()

    # -- layout ---------------------------------------------------------------
    @property
    def pending_dir(self) -> Path:
        return self.root / "pending"

    @property
    def leased_dir(self) -> Path:
        return self.root / "leased"

    @property
    def done_dir(self) -> Path:
        return self.root / "done"

    @property
    def config_path(self) -> Path:
        return self.root / "queue.json"

    def _load_config(self) -> dict:
        try:
            data = json.loads(self.config_path.read_text("utf-8"))
        except (OSError, ValueError):
            return {}
        return data if isinstance(data, dict) else {}

    def _save_config(self) -> None:
        self._atomic_json(
            self.config_path,
            {
                "version": self.CONFIG_VERSION,
                "lease_ttl": self.lease_ttl,
                "cache_dir": str(self.cache_dir) if self.cache_dir else None,
            },
        )

    def _atomic_json(self, path: Path, payload: object) -> None:
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(payload, fh, indent=2, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # -- enqueue --------------------------------------------------------------
    def enqueue(
        self,
        specs: Iterable[RunSpec | dict],
        *,
        shard_size: int = 4,
        prefix: str = "shard",
    ) -> list[str]:
        """Shard ``specs`` into pending work items; return the shard ids.

        Order is preserved within and across shards, so shard contents
        are deterministic for a given spec sequence.  Payloads are
        written to a temp name and renamed in, so a claimant never sees
        a half-written shard.
        """
        if shard_size < 1:
            raise ValueError("shard_size must be at least 1")
        prefix = _sanitize(prefix, "shard")
        batch = [s if isinstance(s, RunSpec) else RunSpec.from_dict(s) for s in specs]
        shard_ids: list[str] = []
        for n, start in enumerate(range(0, len(batch), shard_size)):
            shard_id = f"{prefix}-{n:04d}"
            payload = {
                "shard": shard_id,
                "specs": [spec.to_dict() for spec in batch[start : start + shard_size]],
            }
            self._atomic_json(self.pending_dir / f"{shard_id}.t0.json", payload)
            shard_ids.append(shard_id)
        return shard_ids

    # -- claim / steal --------------------------------------------------------
    @staticmethod
    def _parse_pending(name: str) -> tuple[str, int] | None:
        parts = name.split(".")
        if len(parts) != 3 or parts[2] != "json" or not parts[1].startswith("t"):
            return None
        try:
            return parts[0], int(parts[1][1:])
        except ValueError:
            return None

    @staticmethod
    def _parse_leased(name: str) -> tuple[str, int, str, int] | None:
        parts = name.split(".")
        if len(parts) != 5 or parts[4] != "json" or not parts[1].startswith("t"):
            return None
        try:
            return parts[0], int(parts[1][1:]), parts[2], int(parts[3])
        except ValueError:
            return None

    def claim(self, owner: str) -> WorkLease | None:
        """Atomically claim one pending shard for ``owner``, or None.

        Expired leases are reclaimed first (so a lone worker can steal
        back its own abandoned shard), and pending shards that already
        have a ``done/`` record — a steal the original owner finished
        anyway — are retired instead of re-executed.
        """
        owner = _sanitize(owner, "worker")
        self.reclaim_expired()
        for entry in sorted(os.listdir(self.pending_dir)):
            parsed = self._parse_pending(entry)
            if parsed is None:
                continue
            shard_id, takeovers = parsed
            source = self.pending_dir / entry
            if (self.done_dir / f"{shard_id}.json").exists():
                try:
                    os.unlink(source)
                except FileNotFoundError:
                    pass
                continue
            expires = _now_ms() + int(self.lease_ttl * 1000)
            target = (
                self.leased_dir / f"{shard_id}.t{takeovers}.{owner}.{expires}.json"
            )
            try:
                os.rename(source, target)
            except FileNotFoundError:
                continue  # lost the race to another claimant
            try:
                payload = json.loads(target.read_text("utf-8"))
                specs = [RunSpec.from_dict(d) for d in payload["specs"]]
            except (OSError, ValueError, KeyError, TypeError):
                # Unreadable shard payload: retire it rather than letting
                # every claimant trip over it forever.
                target.unlink(missing_ok=True)
                continue
            return WorkLease(
                queue=self,
                shard_id=shard_id,
                takeovers=takeovers,
                owner=owner,
                specs=specs,
                path=target,
                expires_ms=expires,
            )
        return None

    def reclaim_expired(self) -> int:
        """Steal every lease whose TTL lapsed back into ``pending/``.

        Any process may call this; racing reclaims of the same lease are
        resolved by the rename (one winner).  Returns the number of
        shards reclaimed.  A lease whose shard is already done is
        retired instead of requeued.
        """
        now = _now_ms()
        reclaimed = 0
        for entry in os.listdir(self.leased_dir):
            parsed = self._parse_leased(entry)
            if parsed is None:
                continue
            shard_id, takeovers, _owner, expires = parsed
            if expires > now:
                continue
            source = self.leased_dir / entry
            if (self.done_dir / f"{shard_id}.json").exists():
                try:
                    os.unlink(source)
                except FileNotFoundError:
                    pass
                continue
            target = self.pending_dir / f"{shard_id}.t{takeovers + 1}.json"
            try:
                os.rename(source, target)
            except FileNotFoundError:
                continue
            reclaimed += 1
        return reclaimed

    # -- completion / inspection ----------------------------------------------
    def _write_done(
        self, shard_id: str, statuses: list[dict], *, extra: dict | None = None
    ) -> None:
        payload: dict = {"shard": shard_id, "statuses": statuses}
        if extra:
            payload["rpc"] = extra
        self._atomic_json(self.done_dir / f"{shard_id}.json", payload)

    def done_statuses(self) -> dict[str, dict]:
        """Merge every ``done/`` record into one ``spec_hash → status`` map."""
        merged: dict[str, dict] = {}
        for path in sorted(self.done_dir.glob("*.json")):
            try:
                payload = json.loads(path.read_text("utf-8"))
            except (OSError, ValueError):
                continue
            for record in payload.get("statuses", []):
                if isinstance(record, dict) and "spec_hash" in record:
                    merged[record["spec_hash"]] = record
        return merged

    def counts(self) -> dict[str, int]:
        """``{"pending": n, "leased": n, "done": n}`` shard counts."""
        return {
            "pending": sum(
                1 for e in os.listdir(self.pending_dir) if self._parse_pending(e)
            ),
            "leased": sum(
                1 for e in os.listdir(self.leased_dir) if self._parse_leased(e)
            ),
            "done": sum(1 for _ in self.done_dir.glob("*.json")),
        }

    def drained(self) -> bool:
        """True when no shard is pending or leased (not even an expired one)."""
        counts = self.counts()
        return counts["pending"] == 0 and counts["leased"] == 0

    def rpc_totals(self, *, prefix: str | None = None) -> dict[str, int]:
        """Sum the per-shard ``"rpc"`` extras across done records.

        ``prefix`` restricts the sum to one job's shards (shard ids are
        ``{job_id}-{n:04d}``), so concurrent jobs on one queue report
        their own worker RPC/spill totals.
        """
        totals: dict[str, int] = {}
        for path in sorted(self.done_dir.glob("*.json")):
            if prefix is not None and not path.name.startswith(f"{prefix}-"):
                continue
            try:
                payload = json.loads(path.read_text("utf-8"))
            except (OSError, ValueError):
                continue
            extra = payload.get("rpc")
            if not isinstance(extra, dict):
                continue
            for name, value in extra.items():
                if isinstance(value, (int, float)):
                    totals[name] = totals.get(name, 0) + int(value)
        return totals


@dataclass
class RemoteWorkLease:
    """One shard claimed over HTTP from a ``repro serve`` queue.

    The lifecycle mirrors :class:`WorkLease` (``process_lease`` duck-types
    over either), but every transition is an RPC through the worker's
    :class:`~repro.sim.netclient.ResilientClient`: the lease is addressed
    by the opaque ``token`` the server minted at claim time.  A heartbeat
    that cannot reach the server — retries exhausted or circuit open — is
    reported as a *lost* lease: the server will reclaim the shard when
    the TTL lapses anyway, and at-least-once delivery plus cache
    idempotence make the duplicate execution safe.
    """

    queue: "RemoteWorkQueue"
    shard_id: str
    takeovers: int
    owner: str
    specs: list[RunSpec]
    token: str
    lost: bool = field(default=False)

    def heartbeat(self, ttl: float | None = None) -> None:
        if self.lost:
            raise LeaseLostError(f"lease on {self.shard_id} already lost")
        try:
            self.queue._post(
                "heartbeat", {"token": self.token, "ttl": ttl}, key=self.token
            )
        except RpcHttpError as exc:
            if exc.status in (404, 410):
                self.lost = True
                raise LeaseLostError(
                    f"lease on {self.shard_id} expired and was stolen "
                    f"from {self.owner}"
                ) from None
            raise LeaseLostError(
                f"heartbeat on {self.shard_id} rejected: {exc}"
            ) from exc
        except RpcError as exc:
            # Unreachable server: the lease will expire and be stolen, so
            # stop working the shard now rather than racing the thief.
            self.lost = True
            raise LeaseLostError(
                f"heartbeat on {self.shard_id} unreachable: {exc}"
            ) from exc

    def complete(self, statuses: Sequence[dict], extra: dict | None = None) -> bool:
        body = {"token": self.token, "statuses": list(statuses)}
        if extra:
            body["rpc"] = extra
        try:
            self.queue._post("complete", body, key=self.token)
        except RpcHttpError as exc:
            if exc.status in (404, 410):
                self.lost = True
                return False
            raise
        except RpcError:
            # Statuses never reached the server; the shard will be stolen
            # and re-completed (idempotently) by another claimant.
            self.lost = True
            return False
        return True

    def abandon(self) -> bool:
        try:
            self.queue._post("abandon", {"token": self.token}, key=self.token)
        except RpcError:
            self.lost = True
            return False
        return True


class RemoteWorkQueue:
    """HTTP client for the queue endpoints of a ``repro serve`` process.

    Speaks ``POST /api/queue/{claim,heartbeat,complete,abandon}`` and
    ``GET /api/queue`` through a :class:`ResilientClient` — the same
    instance the worker's :class:`~repro.sim.cache.RemoteCacheBackend`
    uses, so cache and queue RPCs share one circuit breaker per server.
    All operations degrade gracefully: an unreachable server makes
    :meth:`claim` return None (the worker idles and retries) and
    :meth:`drained` return False (never a false "all done").
    """

    def __init__(
        self,
        base_url: str,
        *,
        client: ResilientClient | None = None,
        policy: RpcPolicy | None = None,
        fault_plan: "FaultPlan | None" = None,
    ) -> None:
        base = base_url.rstrip("/")
        if not base.endswith("/api/queue"):
            base = f"{base}/api/queue"
        self.base_url = base
        self.client = (
            client
            if client is not None
            else ResilientClient(policy, fault_plan=fault_plan)
        )
        self._lease_ttl: float | None = None

    def _post(self, action: str, body: dict, *, key: str) -> dict:
        return self.client.post_json(
            f"{self.base_url}/{action}", body, key=f"queue/{action}/{key}"
        )

    @property
    def lease_ttl(self) -> float:
        """The server queue's TTL (fetched lazily, cached; default on error)."""
        if self._lease_ttl is None:
            try:
                info = self.client.get_json(self.base_url, key="queue/info")
            except RpcError:
                return DEFAULT_LEASE_TTL
            self._lease_ttl = float(info.get("lease_ttl", DEFAULT_LEASE_TTL))
        return self._lease_ttl

    def claim(self, owner: str) -> RemoteWorkLease | None:
        owner = _sanitize(owner, "worker")
        try:
            payload = self._post("claim", {"owner": owner}, key=owner)
        except RpcError:
            return None
        lease = payload.get("lease") if isinstance(payload, dict) else None
        if not isinstance(lease, dict):
            return None
        try:
            specs = [RunSpec.from_dict(d) for d in lease["specs"]]
            return RemoteWorkLease(
                queue=self,
                shard_id=str(lease["shard"]),
                takeovers=int(lease["takeovers"]),
                owner=owner,
                specs=specs,
                token=str(lease["token"]),
            )
        except (KeyError, TypeError, ValueError):
            return None

    def counts(self) -> dict[str, int]:
        info = self.client.get_json(self.base_url, key="queue/info")
        counts = info.get("counts", {}) if isinstance(info, dict) else {}
        return {
            "pending": int(counts.get("pending", 0)),
            "leased": int(counts.get("leased", 0)),
            "done": int(counts.get("done", 0)),
        }

    def drained(self) -> bool:
        """True only when the server *positively reports* a drained queue."""
        try:
            info = self.client.get_json(self.base_url, key="queue/info")
        except RpcError:
            return False
        return bool(info.get("drained")) if isinstance(info, dict) else False

    def ready(self) -> bool:
        """Whether the server is reachable and has ever held any shards."""
        try:
            info = self.client.get_json(self.base_url, key="queue/info")
        except RpcError:
            return False
        if not isinstance(info, dict):
            return False
        counts = info.get("counts", {})
        total = sum(int(counts.get(k, 0)) for k in ("pending", "leased", "done"))
        return total > 0


def status_record(
    spec: RunSpec, result: RunResult | FailedResult, *, attempts: int = 0
) -> dict:
    """The per-spec record a completed shard publishes into ``done/``."""
    if isinstance(result, FailedResult):
        return {
            "spec_hash": spec.spec_hash(),
            "status": "failed",
            "error": result.error,
            "error_type": result.error_type,
            "attempts": result.attempts,
            "fault_events": list(result.fault_events),
        }
    return {"spec_hash": spec.spec_hash(), "status": "done", "attempts": attempts}


def collect_results(
    specs: Sequence[RunSpec],
    cache: "ResultCache",
    queue: WorkQueue | None = None,
) -> list[RunResult | FailedResult | None]:
    """Assemble final results for ``specs`` from the shared cache.

    ``done`` specs come back as cache hits; ``failed`` specs are
    reconstructed as :class:`FailedResult` from the queue's published
    status records (when a queue is given); anything else — still
    running, or a done record whose cache entry was corrupted away — is
    ``None`` and the caller decides whether to wait or recompute.
    """
    statuses = queue.done_statuses() if queue is not None else {}
    out: list[RunResult | FailedResult | None] = []
    for spec in specs:
        hit = cache.get(spec)
        if hit is not None:
            out.append(hit)
            continue
        record = statuses.get(spec.spec_hash())
        if record is not None and record.get("status") == "failed":
            out.append(
                FailedResult(
                    spec=spec,
                    error=str(record.get("error", "unknown failure")),
                    error_type=str(record.get("error_type", "Exception")),
                    attempts=int(record.get("attempts", 0)),
                    fault_events=list(record.get("fault_events") or []),
                )
            )
        else:
            out.append(None)
    return out
