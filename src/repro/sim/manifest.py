"""Sweep-level checkpointing: a spec-hash → status manifest on disk.

A long sweep should be resumable after a crash and inspectable while it
runs.  :class:`SweepManifest` records one entry per spec — status
(``pending``/``done``/``failed``), attempt count, fault events and the
human label — using a two-file layout built for sweeps with very many
specs:

* a **JSON snapshot** at ``path`` (atomic write-then-rename, always a
  consistent picture of every entry at some point in time), and
* an **append-only event log** at ``path + ".events"`` — one JSON line
  per status change, flushed as it is written.

Every status change appends one line (O(1), not a full rewrite — the
original rewrite-on-every-record design made an *n*-spec sweep cost
O(n²) manifest bytes) and every ``compact_every`` events the snapshot is
atomically rewritten and the log truncated.  Loading replays the log on
top of the snapshot; events carry the entry's *absolute* state, so a
crash between the snapshot write and the log truncation replays
harmlessly.  :meth:`compact` forces a clean snapshot — the supervised
executor calls it when a batch finishes, so a completed sweep always
leaves a plain JSON file behind.

The manifest records *statuses*, not results: finished ``RunResult``
payloads live in the content-addressed :class:`~repro.sim.cache.ResultCache`
under the same spec hashes.  Resuming therefore composes the two —
``done`` specs come back as cache hits, ``failed`` specs are skipped
(their recorded :class:`~repro.sim.faults.FailedResult` is reconstructed
without burning new attempts), and ``pending`` specs execute as usual.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import TYPE_CHECKING

from .faults import FailedResult

if TYPE_CHECKING:  # pragma: no cover
    from .specs import RunSpec

__all__ = ["MANIFEST_VERSION", "SweepManifest"]

MANIFEST_VERSION = 1

STATUSES = ("pending", "done", "failed")


class SweepManifest:
    """Incrementally-written spec-hash → status checkpoint of one sweep.

    Parameters
    ----------
    path:
        JSON snapshot file backing the manifest; created on the first
        compaction.  The event log lives beside it at ``path + ".events"``.
    resume:
        When True and the snapshot and/or event log exist, prior entries
        are loaded and :attr:`resumed` is set — the supervised executor
        then skips specs the previous run quarantined instead of
        re-burning their retry budget.  When False any existing snapshot
        and log are discarded.
    compact_every:
        Appended events between automatic snapshot compactions.  ``1``
        recovers the legacy rewrite-per-record behaviour.
    """

    def __init__(
        self, path: str | Path, *, resume: bool = False, compact_every: int = 64
    ) -> None:
        if compact_every < 1:
            raise ValueError("compact_every must be at least 1")
        self.path = Path(path)
        self.compact_every = compact_every
        self.entries: dict[str, dict] = {}
        self.resumed = False
        self._pending_events = 0
        if resume and (self.path.exists() or self.events_path.exists()):
            self._load()
            self.resumed = True
        elif not resume:
            # A fresh manifest must not inherit stale state: a leftover
            # event log would otherwise replay on top of the next
            # snapshot, and a leftover snapshot would shadow a crashed
            # run that never compacted.
            self.path.unlink(missing_ok=True)
            self.events_path.unlink(missing_ok=True)

    @property
    def events_path(self) -> Path:
        """The append-only event log beside the snapshot file."""
        return self.path.with_name(self.path.name + ".events")

    # -- persistence ----------------------------------------------------------
    def _load(self) -> None:
        if self.path.exists():
            try:
                data = json.loads(self.path.read_text("utf-8"))
            except (OSError, ValueError) as exc:
                raise ValueError(
                    f"unreadable sweep manifest {self.path}: {exc}"
                ) from exc
            if not isinstance(data, dict) or data.get("version") != MANIFEST_VERSION:
                raise ValueError(
                    f"sweep manifest {self.path} has unsupported version "
                    f"{data.get('version') if isinstance(data, dict) else data!r}"
                )
            entries = data.get("entries")
            self.entries = dict(entries) if isinstance(entries, dict) else {}
        self._replay_events()

    def _replay_events(self) -> None:
        """Apply the event log on top of the loaded snapshot.

        Events carry absolute entry state, so replay is idempotent — a
        log that was already folded into the snapshot (crash between
        snapshot write and log truncation) re-applies harmlessly.  Only
        a *final* partial line (crash mid-append) is tolerated; garbage
        earlier in the log is an error.
        """
        if not self.events_path.exists():
            return
        try:
            lines = self.events_path.read_text("utf-8").splitlines()
        except OSError as exc:
            raise ValueError(
                f"unreadable sweep manifest log {self.events_path}: {exc}"
            ) from exc
        for lineno, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                event = json.loads(line)
            except ValueError as exc:
                if lineno == len(lines) - 1:
                    break  # torn final append from a crash: drop it
                raise ValueError(
                    f"corrupt sweep manifest log {self.events_path} "
                    f"(line {lineno + 1}): {exc}"
                ) from exc
            key = event.get("key")
            entry = event.get("entry")
            if isinstance(key, str) and isinstance(entry, dict):
                self.entries[key] = entry

    def _append_event(self, key: str) -> None:
        """Record one entry's new absolute state in the event log."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        line = json.dumps(
            {"key": key, "entry": self.entries[key]}, sort_keys=True
        )
        with self.events_path.open("a", encoding="utf-8") as fh:
            fh.write(line + "\n")
            fh.flush()
        self._pending_events += 1
        if self._pending_events >= self.compact_every:
            self.compact()

    def save(self) -> None:
        """Atomically rewrite the snapshot file (write-then-rename)."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(
            {"version": MANIFEST_VERSION, "entries": self.entries},
            indent=2,
            sort_keys=True,
        )
        fd, tmp = tempfile.mkstemp(dir=self.path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(payload)
            os.replace(tmp, self.path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def compact(self) -> None:
        """Fold the event log into a fresh snapshot and truncate the log.

        Snapshot first, truncate second: a crash in between leaves a log
        whose events are already in the snapshot, and replay is
        idempotent.
        """
        self.save()
        self.events_path.unlink(missing_ok=True)
        self._pending_events = 0

    # -- recording ------------------------------------------------------------
    def _entry(self, spec: "RunSpec") -> dict:
        key = spec.spec_hash()
        entry = self.entries.setdefault(
            key, {"status": "pending", "attempts": 0, "fault_events": []}
        )
        entry["label"] = spec.label or f"{spec.algorithm} vs {spec.adversary}"
        return entry

    def record_pending(self, spec: "RunSpec") -> None:
        """Mark a spec as queued; never downgrades a done/failed entry."""
        entry = self._entry(spec)
        if entry["status"] == "pending":
            self._append_event(spec.spec_hash())

    def record_attempt(self, spec: "RunSpec", attempts: int, event: str) -> None:
        """Record a failed attempt (retry or fault) without changing status."""
        entry = self._entry(spec)
        entry["attempts"] = attempts
        entry["fault_events"].append(event)
        self._append_event(spec.spec_hash())

    def record_done(self, spec: "RunSpec", attempts: int = 0) -> None:
        entry = self._entry(spec)
        entry["status"] = "done"
        entry["attempts"] = max(attempts, entry.get("attempts", 0))
        entry.pop("error", None)
        self._append_event(spec.spec_hash())

    def record_failed(self, spec: "RunSpec", failure: FailedResult) -> None:
        entry = self._entry(spec)
        entry["status"] = "failed"
        entry["attempts"] = failure.attempts
        entry["error"] = f"{failure.error_type}: {failure.error}"
        entry["fault_events"] = list(failure.fault_events)
        self._append_event(spec.spec_hash())

    # -- queries --------------------------------------------------------------
    def prior(self, spec: "RunSpec") -> dict | None:
        """The loaded entry for ``spec``, or None if never recorded."""
        return self.entries.get(spec.spec_hash())

    def prior_failure(self, spec: "RunSpec") -> FailedResult | None:
        """Reconstruct the recorded quarantine of ``spec``, if any.

        Only meaningful on a resumed manifest: the supervised executor
        turns it straight into a :class:`FailedResult` instead of
        re-executing a spec the previous run already gave up on.
        """
        entry = self.entries.get(spec.spec_hash())
        if entry is None or entry.get("status") != "failed":
            return None
        error = str(entry.get("error") or "unknown failure")
        error_type, _, message = error.partition(": ")
        return FailedResult(
            spec=spec,
            error=message or error,
            error_type=error_type if message else "Exception",
            attempts=int(entry.get("attempts", 0)),
            fault_events=list(entry.get("fault_events") or []),
        )

    def counts(self) -> dict[str, int]:
        """``{status: count}`` over every recorded entry (all keys present)."""
        out = {status: 0 for status in STATUSES}
        for entry in self.entries.values():
            status = entry.get("status", "pending")
            out[status if status in out else "pending"] += 1
        return out

    def __len__(self) -> int:
        return len(self.entries)
