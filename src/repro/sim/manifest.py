"""Sweep-level checkpointing: a spec-hash → status manifest on disk.

A long sweep should be resumable after a crash and inspectable while it
runs.  :class:`SweepManifest` records one entry per spec — status
(``pending``/``done``/``failed``), attempt count, fault events and the
human label — and rewrites its JSON file atomically after every status
change, so the file on disk is always a consistent snapshot.

The manifest records *statuses*, not results: finished ``RunResult``
payloads live in the content-addressed :class:`~repro.sim.cache.ResultCache`
under the same spec hashes.  Resuming therefore composes the two —
``done`` specs come back as cache hits, ``failed`` specs are skipped
(their recorded :class:`~repro.sim.faults.FailedResult` is reconstructed
without burning new attempts), and ``pending`` specs execute as usual.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import TYPE_CHECKING

from .faults import FailedResult

if TYPE_CHECKING:  # pragma: no cover
    from .specs import RunSpec

__all__ = ["MANIFEST_VERSION", "SweepManifest"]

MANIFEST_VERSION = 1

STATUSES = ("pending", "done", "failed")


class SweepManifest:
    """Incrementally-written spec-hash → status checkpoint of one sweep.

    Parameters
    ----------
    path:
        JSON file backing the manifest; created on first write.
    resume:
        When True and ``path`` exists, prior entries are loaded and
        :attr:`resumed` is set — the supervised executor then skips specs
        the previous run quarantined instead of re-burning their retry
        budget.  When False an existing file is replaced.
    """

    def __init__(self, path: str | Path, *, resume: bool = False) -> None:
        self.path = Path(path)
        self.entries: dict[str, dict] = {}
        self.resumed = False
        if resume and self.path.exists():
            self._load()
            self.resumed = True

    # -- persistence ----------------------------------------------------------
    def _load(self) -> None:
        try:
            data = json.loads(self.path.read_text("utf-8"))
        except (OSError, ValueError) as exc:
            raise ValueError(f"unreadable sweep manifest {self.path}: {exc}") from exc
        if not isinstance(data, dict) or data.get("version") != MANIFEST_VERSION:
            raise ValueError(
                f"sweep manifest {self.path} has unsupported version "
                f"{data.get('version') if isinstance(data, dict) else data!r}"
            )
        entries = data.get("entries")
        self.entries = dict(entries) if isinstance(entries, dict) else {}

    def save(self) -> None:
        """Atomically rewrite the manifest file (write-then-rename)."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(
            {"version": MANIFEST_VERSION, "entries": self.entries},
            indent=2,
            sort_keys=True,
        )
        fd, tmp = tempfile.mkstemp(dir=self.path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(payload)
            os.replace(tmp, self.path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # -- recording ------------------------------------------------------------
    def _entry(self, spec: "RunSpec") -> dict:
        key = spec.spec_hash()
        entry = self.entries.setdefault(
            key, {"status": "pending", "attempts": 0, "fault_events": []}
        )
        entry["label"] = spec.label or f"{spec.algorithm} vs {spec.adversary}"
        return entry

    def record_pending(self, spec: "RunSpec") -> None:
        """Mark a spec as queued; never downgrades a done/failed entry."""
        entry = self._entry(spec)
        if entry["status"] == "pending":
            self.save()

    def record_attempt(self, spec: "RunSpec", attempts: int, event: str) -> None:
        """Record a failed attempt (retry or fault) without changing status."""
        entry = self._entry(spec)
        entry["attempts"] = attempts
        entry["fault_events"].append(event)
        self.save()

    def record_done(self, spec: "RunSpec", attempts: int = 0) -> None:
        entry = self._entry(spec)
        entry["status"] = "done"
        entry["attempts"] = max(attempts, entry.get("attempts", 0))
        entry.pop("error", None)
        self.save()

    def record_failed(self, spec: "RunSpec", failure: FailedResult) -> None:
        entry = self._entry(spec)
        entry["status"] = "failed"
        entry["attempts"] = failure.attempts
        entry["error"] = f"{failure.error_type}: {failure.error}"
        entry["fault_events"] = list(failure.fault_events)
        self.save()

    # -- queries --------------------------------------------------------------
    def prior(self, spec: "RunSpec") -> dict | None:
        """The loaded entry for ``spec``, or None if never recorded."""
        return self.entries.get(spec.spec_hash())

    def prior_failure(self, spec: "RunSpec") -> FailedResult | None:
        """Reconstruct the recorded quarantine of ``spec``, if any.

        Only meaningful on a resumed manifest: the supervised executor
        turns it straight into a :class:`FailedResult` instead of
        re-executing a spec the previous run already gave up on.
        """
        entry = self.entries.get(spec.spec_hash())
        if entry is None or entry.get("status") != "failed":
            return None
        error = str(entry.get("error") or "unknown failure")
        error_type, _, message = error.partition(": ")
        return FailedResult(
            spec=spec,
            error=message or error,
            error_type=error_type if message else "Exception",
            attempts=int(entry.get("attempts", 0)),
            fault_events=list(entry.get("fault_events") or []),
        )

    def counts(self) -> dict[str, int]:
        """``{status: count}`` over every recorded entry (all keys present)."""
        out = {status: 0 for status in STATUSES}
        for entry in self.entries.values():
            status = entry.get("status", "pending")
            out[status if status in out else "pending"] += 1
        return out

    def __len__(self) -> int:
        return len(self.entries)
