"""Experiment entry points: one per Table 1 row, impossibility and figure.

Each ``experiment_*`` function reproduces one artefact of the paper's
evaluation (see the experiment index in DESIGN.md) and returns an
:class:`ExperimentResult` holding the paper's bound, the measured value
and a boolean *shape check* — the qualitative property that must hold for
the reproduction to count (stability where the paper proves stability,
divergence where it proves impossibility, measured latency within the
paper's bound where a closed-form bound exists).

The ``figure_*`` functions produce the sweep series behind the
simulation-style figures (latency vs rate, vs n, vs k, energy usage,
queue trajectories).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..adversary import (
    Adversary,
    AlternatingPairAdversary,
    BurstThenIdleAdversary,
    RoundRobinAdversary,
    SingleSourceSprayAdversary,
    SingleTargetAdversary,
    UniformRandomAdversary,
)
from ..algorithms import AdjustWindow, KClique, KCycle, KSubsets
from ..analysis import bounds
from .runner import RunResult, worst_case_over
from .specs import RunSpec, spec_fragment
from .sweep import SweepSeries, sweep

__all__ = [
    "ExperimentResult",
    "default_adversary_family",
    "experiment_orchestra_queue",
    "experiment_cap2_impossibility",
    "experiment_count_hop_latency",
    "experiment_adjust_window_latency",
    "experiment_k_cycle_latency",
    "experiment_oblivious_impossibility",
    "experiment_k_clique_latency",
    "experiment_k_subsets_stability",
    "experiment_oblivious_direct_impossibility",
    "figure_latency_vs_rate",
    "figure_scaling_n",
    "figure_energy_tradeoff",
    "figure_energy_usage",
    "figure_queue_trajectories",
    "regenerate_table1",
]


@dataclass(slots=True)
class ExperimentResult:
    """Outcome of one reproduced experiment."""

    experiment_id: str
    label: str
    params: dict
    paper: dict
    measured: dict
    shape_ok: bool
    runs: list[RunResult] = field(default_factory=list)

    def comparison_row(self) -> dict:
        """Row for :func:`repro.analysis.table1.render_comparison`."""
        paper_text = ", ".join(f"{k}={_fmt(v)}" for k, v in self.paper.items())
        measured_text = ", ".join(f"{k}={_fmt(v)}" for k, v in self.measured.items())
        params_text = ", ".join(f"{k}={_fmt(v)}" for k, v in self.params.items())
        return {
            "label": f"{self.experiment_id} {self.label}",
            "params": params_text,
            "paper": paper_text,
            "measured": measured_text + ("  [ok]" if self.shape_ok else "  [MISMATCH]"),
        }


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def default_adversary_family(
    rho: float,
    beta: float,
    *,
    include_stochastic: bool = True,
    seed: int = 7,
    as_specs: bool = False,
) -> list[Callable[[], Adversary | dict]]:
    """The adversary family over which worst-case metrics are maximised.

    With ``as_specs=True`` the factories return declarative
    :func:`~repro.sim.specs.spec_fragment` dicts instead of live objects,
    which lets :func:`~repro.sim.runner.worst_case_over` fan the family out
    over parallel worker processes (and cache results on disk).
    """
    if as_specs:
        family: list[Callable[[], Adversary | dict]] = [
            lambda: spec_fragment("single-target", rho=rho, beta=beta),
            lambda: spec_fragment("spray", rho=rho, beta=beta),
            lambda: spec_fragment("round-robin", rho=rho, beta=beta),
            lambda: spec_fragment("alternating-pair", rho=rho, beta=beta),
            lambda: spec_fragment("bursty", rho=rho, beta=beta),
        ]
        if include_stochastic:
            family.append(lambda: spec_fragment("random", rho=rho, beta=beta, seed=seed))
        return family
    family = [
        lambda: SingleTargetAdversary(rho, beta),
        lambda: SingleSourceSprayAdversary(rho, beta),
        lambda: RoundRobinAdversary(rho, beta),
        lambda: AlternatingPairAdversary(rho, beta),
        lambda: BurstThenIdleAdversary(rho, beta),
    ]
    if include_stochastic:
        family.append(lambda: UniformRandomAdversary(rho, beta, seed=seed))
    return family


# ---------------------------------------------------------------------------
# Table 1 rows
# ---------------------------------------------------------------------------

def experiment_orchestra_queue(
    n: int = 6, beta: float = 2.0, rounds: int = 6000,
    *, workers: int = 1, executor=None, cache=None,
) -> ExperimentResult:
    """T1.1 — Orchestra keeps queues below ``2 n^3 + beta`` at injection rate 1."""
    family = default_adversary_family(1.0, beta, as_specs=True)
    family.append(lambda: spec_fragment("saturating", rho=1.0, beta=beta))
    worst, runs = worst_case_over(
        lambda: spec_fragment("orchestra", n=n), family, rounds,
        workers=workers, executor=executor, cache=cache,
    )
    queue_bound = bounds.orchestra_queue_bound(n, beta)
    max_queue = max(r.max_queue for r in runs)
    all_stable = all(r.stable for r in runs)
    return ExperimentResult(
        experiment_id="T1.1",
        label="Orchestra, rho=1",
        params={"n": n, "rho": 1.0, "beta": beta, "rounds": rounds},
        paper={"queue_bound": queue_bound, "cap": 3, "stable": True},
        measured={
            "max_queue": max_queue,
            "energy_per_round": worst.summary.energy_per_round,
            "stable": all_stable,
        },
        shape_ok=all_stable and max_queue <= queue_bound,
        runs=runs,
    )


def experiment_cap2_impossibility(
    n: int = 6, beta: float = 1.0, rounds: int = 6000,
    *, workers: int = 1, executor=None, cache=None,
) -> ExperimentResult:
    """T1.2 / Theorem 2 — cap-2 algorithms cannot sustain injection rate 1."""
    def families() -> list[tuple[str, Callable[[], dict]]]:
        return [("Count-Hop", lambda: spec_fragment("count-hop", n=n))]

    adversaries: list[Callable[[], dict]] = [
        lambda: spec_fragment("adaptive-starvation", rho=1.0, beta=beta),
        lambda: spec_fragment("single-target", rho=1.0, beta=beta),
        lambda: spec_fragment("saturating", rho=1.0, beta=beta),
    ]
    runs: list[RunResult] = []
    any_unstable = False
    for _, algo_factory in families():
        worst, results = worst_case_over(
            algo_factory, adversaries, rounds,
            workers=workers, executor=executor, cache=cache,
        )
        runs.extend(results)
        if any(not r.stable for r in results):
            any_unstable = True
    max_queue = max(r.max_queue for r in runs)
    return ExperimentResult(
        experiment_id="T1.2",
        label="Impossibility: cap 2 at rho=1",
        params={"n": n, "rho": 1.0, "beta": beta, "rounds": rounds},
        paper={"stable": False, "cap": 2},
        measured={"stable": not any_unstable, "max_queue": max_queue},
        shape_ok=any_unstable,
        runs=runs,
    )


def experiment_count_hop_latency(
    n: int = 6, rho: float = 0.5, beta: float = 2.0, rounds: int = 8000,
    *, workers: int = 1, executor=None, cache=None,
) -> ExperimentResult:
    """T1.3 — Count-Hop latency scales like ``2 (n^2 + beta)/(1 - rho)``.

    Our implementation spends ``2n`` bookkeeping rounds per stage (an
    explicit Report and an explicit Assign slot for every station) where
    the paper's accounting charges only ``n - 1``; the measured latency is
    therefore compared against twice the paper's bound, and the 1/(1-rho)
    and n^2 scaling is exercised by the F1/F2 sweeps.  See EXPERIMENTS.md.
    """
    family = default_adversary_family(rho, beta, as_specs=True)
    worst, runs = worst_case_over(
        lambda: spec_fragment("count-hop", n=n), family, rounds,
        workers=workers, executor=executor, cache=cache,
    )
    latency_bound = bounds.count_hop_latency_bound(n, rho, beta)
    max_latency = max(r.latency for r in runs)
    all_stable = all(r.stable for r in runs)
    return ExperimentResult(
        experiment_id="T1.3",
        label="Count-Hop latency",
        params={"n": n, "rho": rho, "beta": beta, "rounds": rounds},
        paper={"latency_bound": latency_bound, "cap": 2, "stable": True},
        measured={
            "max_latency": max_latency,
            "implementation_bound": 2 * latency_bound,
            "energy_per_round": worst.summary.energy_per_round,
            "stable": all_stable,
        },
        shape_ok=all_stable and max_latency <= 2 * latency_bound,
        runs=runs,
    )


def experiment_adjust_window_latency(
    n: int = 4, rho: float = 0.4, beta: float = 2.0, rounds: int | None = None,
    *, workers: int = 1, executor=None, cache=None,
) -> ExperimentResult:
    """T1.4 — Adjust-Window is universal (stable for rho < 1) at energy cap 2.

    At small ``n`` the additive ``n^3 log L`` stage lengths dominate, so we
    compare the measured latency against twice the realised window length
    (the structural bound of Theorem 4's proof) and against the asymptotic
    formula, reporting both.
    """
    algorithm = AdjustWindow(n)
    if rounds is None:
        rounds = 4 * algorithm.initial_window
    family = default_adversary_family(rho, beta, include_stochastic=False, as_specs=True)
    worst, runs = worst_case_over(
        lambda: spec_fragment("adjust-window", n=n), family, rounds,
        workers=workers, executor=executor, cache=cache,
    )
    asymptotic = bounds.adjust_window_latency_bound(n, rho, beta)
    max_latency = max(r.latency for r in runs)
    all_stable = all(r.stable for r in runs)
    structural_bound = 4 * algorithm.initial_window / (1 - rho)
    return ExperimentResult(
        experiment_id="T1.4",
        label="Adjust-Window latency",
        params={"n": n, "rho": rho, "beta": beta, "rounds": rounds},
        paper={
            "latency_bound_asymptotic": asymptotic,
            "cap": 2,
            "stable": True,
        },
        measured={
            "max_latency": max_latency,
            "structural_bound": structural_bound,
            "energy_per_round": worst.summary.energy_per_round,
            "stable": all_stable,
        },
        shape_ok=all_stable and max_latency <= structural_bound,
        runs=runs,
    )


def experiment_k_cycle_latency(
    n: int = 9, k: int = 4, beta: float = 2.0, rounds: int = 12000,
    rate_fraction: float = 0.6,
    *, workers: int = 1, executor=None, cache=None,
) -> ExperimentResult:
    """T1.5 — k-Cycle is stable below ``(k-1)/(n-1)`` with latency O(n)."""
    rho = rate_fraction * bounds.k_cycle_rate_threshold(n, k)
    family = default_adversary_family(rho, beta, as_specs=True)
    worst, runs = worst_case_over(
        lambda: spec_fragment("k-cycle", n=n, k=k), family, rounds,
        workers=workers, executor=executor, cache=cache,
    )
    latency_bound = bounds.k_cycle_latency_bound(n, beta)
    max_latency = max(r.latency for r in runs)
    all_stable = all(r.stable for r in runs)
    return ExperimentResult(
        experiment_id="T1.5",
        label="k-Cycle latency",
        params={"n": n, "k": k, "rho": rho, "beta": beta, "rounds": rounds},
        paper={
            "latency_bound": latency_bound,
            "rate_threshold": bounds.k_cycle_rate_threshold(n, k),
            "stable": True,
        },
        measured={
            "max_latency": max_latency,
            "energy_per_round": worst.summary.energy_per_round,
            "stable": all_stable,
        },
        shape_ok=all_stable and max_latency <= latency_bound,
        runs=runs,
    )


def experiment_oblivious_impossibility(
    n: int = 9, k: int = 3, beta: float = 1.0, rounds: int = 15000,
    rate_margin: float = 1.5,
    *, workers: int = 1, executor=None, cache=None,
) -> ExperimentResult:
    """T1.6 / Theorem 6 — k-oblivious algorithms diverge above rate ``k/n``.

    The schedule-aware lower-bound adversary is spec'd through its
    ``least-on-station`` registry key (the published schedule is derived
    from the algorithm at execution time), so the single run dispatches
    through the shared :class:`~repro.sim.parallel.ParallelExecutor` —
    cache-aware and batched with the other rows' runs.
    """
    from .parallel import dispatch_specs

    rho = min(1.0, rate_margin * bounds.oblivious_rate_upper_bound(n, k))
    spec = RunSpec.from_fragments(
        spec_fragment("k-cycle", n=n, k=k),
        spec_fragment("least-on-station", rho=rho, beta=beta, horizon=rounds),
        rounds,
    )
    [result] = dispatch_specs(
        [spec], workers=workers, executor=executor, cache=cache
    )
    return ExperimentResult(
        experiment_id="T1.6",
        label="Impossibility: oblivious above k/n",
        params={"n": n, "k": k, "rho": rho, "beta": beta, "rounds": rounds},
        paper={"stable": False, "threshold": bounds.oblivious_rate_upper_bound(n, k)},
        measured={
            "stable": result.stable,
            "max_queue": result.max_queue,
            "queue_growth": result.summary.queue_growth_rate,
        },
        shape_ok=not result.stable,
        runs=[result],
    )


def experiment_k_clique_latency(
    n: int = 8, k: int = 4, beta: float = 2.0, rounds: int = 20000,
    rate_fraction: float = 0.8,
    *, workers: int = 1, executor=None, cache=None,
) -> ExperimentResult:
    """T1.7 — k-Clique latency within ``8 (n^2/k)(1 + beta/2k)`` below its threshold."""
    rho = rate_fraction * bounds.k_clique_latency_rate_threshold(n, k)
    family = default_adversary_family(rho, beta, as_specs=True)
    family.append(
        lambda: spec_fragment("group-local", rho=rho, beta=beta, group_size=max(2, k // 2))
    )
    worst, runs = worst_case_over(
        lambda: spec_fragment("k-clique", n=n, k=k), family, rounds,
        workers=workers, executor=executor, cache=cache,
    )
    latency_bound = bounds.k_clique_latency_bound(n, k, beta)
    max_latency = max(r.latency for r in runs)
    all_stable = all(r.stable for r in runs)
    return ExperimentResult(
        experiment_id="T1.7",
        label="k-Clique latency",
        params={"n": n, "k": k, "rho": rho, "beta": beta, "rounds": rounds},
        paper={
            "latency_bound": latency_bound,
            "rate_threshold": bounds.k_clique_latency_rate_threshold(n, k),
            "stable": True,
        },
        measured={
            "max_latency": max_latency,
            "energy_per_round": worst.summary.energy_per_round,
            "stable": all_stable,
        },
        shape_ok=all_stable and max_latency <= 2 * latency_bound,
        runs=runs,
    )


def experiment_k_subsets_stability(
    n: int = 6, k: int = 3, beta: float = 1.0, rounds: int = 20000,
    *, workers: int = 1, executor=None, cache=None,
) -> ExperimentResult:
    """T1.8 — k-Subsets is stable at rate ``k(k-1)/(n(n-1))`` with bounded queues."""
    rho = bounds.k_subsets_rate_threshold(n, k)
    family = default_adversary_family(rho, beta, as_specs=True)
    worst, runs = worst_case_over(
        lambda: spec_fragment("k-subsets", n=n, k=k), family, rounds,
        workers=workers, executor=executor, cache=cache,
    )
    queue_bound = bounds.k_subsets_queue_bound(n, k, beta)
    max_queue = max(r.max_queue for r in runs)
    all_stable = all(r.stable for r in runs)
    return ExperimentResult(
        experiment_id="T1.8",
        label="k-Subsets stability",
        params={"n": n, "k": k, "rho": rho, "beta": beta, "rounds": rounds},
        paper={"queue_bound": queue_bound, "rate": rho, "stable": True},
        measured={
            "max_queue": max_queue,
            "energy_per_round": worst.summary.energy_per_round,
            "stable": all_stable,
        },
        shape_ok=all_stable and max_queue <= queue_bound,
        runs=runs,
    )


def experiment_oblivious_direct_impossibility(
    n: int = 6, k: int = 3, beta: float = 1.0, rounds: int = 20000,
    rate_margin: float = 2.0,
    *, workers: int = 1, executor=None, cache=None,
) -> ExperimentResult:
    """T1.9 / Theorem 9 — oblivious direct algorithms diverge above ``k(k-1)/(n(n-1))``.

    Both stressed algorithms (k-Subsets and k-Clique) are spec'd with the
    ``least-on-pair`` registry key and dispatched as one batch through the
    shared :class:`~repro.sim.parallel.ParallelExecutor`.
    """
    from .parallel import dispatch_specs

    rho = min(1.0, rate_margin * bounds.oblivious_direct_rate_upper_bound(n, k))
    subsets_horizon = KSubsets(n, k).oblivious_schedule().period_length
    clique_horizon = KClique(n, k).num_pairs
    specs = [
        RunSpec.from_fragments(
            spec_fragment("k-subsets", n=n, k=k),
            spec_fragment("least-on-pair", rho=rho, beta=beta, horizon=subsets_horizon),
            rounds,
        ),
        RunSpec.from_fragments(
            spec_fragment("k-clique", n=n, k=k),
            spec_fragment("least-on-pair", rho=rho, beta=beta, horizon=clique_horizon),
            rounds,
        ),
    ]
    result, clique_result = dispatch_specs(
        specs, workers=workers, executor=executor, cache=cache
    )
    unstable = (not result.stable) or (not clique_result.stable)
    return ExperimentResult(
        experiment_id="T1.9",
        label="Impossibility: oblivious direct",
        params={"n": n, "k": k, "rho": rho, "beta": beta, "rounds": rounds},
        paper={
            "stable": False,
            "threshold": bounds.oblivious_direct_rate_upper_bound(n, k),
        },
        measured={
            "k_subsets_stable": result.stable,
            "k_clique_stable": clique_result.stable,
            "max_queue": max(result.max_queue, clique_result.max_queue),
        },
        shape_ok=unstable,
        runs=[result, clique_result],
    )


# ---------------------------------------------------------------------------
# Figure-style sweeps
# ---------------------------------------------------------------------------

def figure_latency_vs_rate(
    n: int = 8,
    k: int = 4,
    beta: float = 1.0,
    rates: tuple[float, ...] = (0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9),
    rounds: int = 6000,
    workers: int = 1,
    cache=None,
) -> dict[str, SweepSeries]:
    """F1 — latency as a function of the injection rate, one curve per algorithm."""
    def adversary(rho: float) -> dict:
        return spec_fragment("spray", rho=rho, beta=beta)

    curves = {
        "Count-Hop": lambda rho: spec_fragment("count-hop", n=n),
        "Orchestra": lambda rho: spec_fragment("orchestra", n=n),
        "k-Cycle": lambda rho: spec_fragment("k-cycle", n=n, k=k),
        "k-Clique": lambda rho: spec_fragment("k-clique", n=n, k=k),
    }
    return {
        name: sweep(
            name, "rho", rates, algorithm, adversary, rounds,
            workers=workers, cache=cache,
        )
        for name, algorithm in curves.items()
    }


def figure_scaling_n(
    sizes: tuple[int, ...] = (4, 6, 8, 10),
    rho: float = 0.4,
    beta: float = 1.0,
    rounds_per_station: int = 1200,
    workers: int = 1,
    cache=None,
) -> dict[str, SweepSeries]:
    """F2 — latency and queue size as the system grows (fixed rate)."""
    def adversary(_: float) -> dict:
        return spec_fragment("round-robin", rho=rho, beta=beta)

    rounds = lambda n: int(rounds_per_station * n)
    curves = {
        "Count-Hop": lambda n: spec_fragment("count-hop", n=int(n)),
        "Orchestra": lambda n: spec_fragment("orchestra", n=int(n)),
        "k-Cycle (k=n/2)": lambda n: spec_fragment(
            "k-cycle", n=int(n), k=max(2, int(n) // 2)
        ),
    }
    return {
        name: sweep(
            name, "n", sizes, algorithm, adversary, rounds,
            workers=workers, cache=cache,
        )
        for name, algorithm in curves.items()
    }


def figure_energy_tradeoff(
    n: int = 12,
    caps: tuple[int, ...] = (2, 3, 4, 6),
    beta: float = 1.0,
    rate_fraction: float = 0.5,
    rounds: int = 15000,
    workers: int = 1,
    cache=None,
) -> dict[str, SweepSeries]:
    """F3 — latency of the oblivious algorithms as the energy cap grows."""
    def cycle_adversary(k: float) -> dict:
        rho = rate_fraction * bounds.k_cycle_rate_threshold(n, max(2, int(k)))
        return spec_fragment("spray", rho=rho, beta=beta)

    def clique_adversary(k: float) -> dict:
        rho = max(
            0.01, rate_fraction * bounds.k_clique_latency_rate_threshold(n, max(2, int(k)))
        )
        return spec_fragment("spray", rho=rho, beta=beta)

    series = {}
    series["k-Cycle"] = sweep(
        "k-Cycle",
        "k",
        [c for c in caps if c >= 2],
        lambda k: spec_fragment("k-cycle", n=n, k=int(k)),
        cycle_adversary,
        rounds,
        workers=workers,
        cache=cache,
    )
    series["k-Clique"] = sweep(
        "k-Clique",
        "k",
        [c for c in caps if c >= 2],
        lambda k: spec_fragment("k-clique", n=n, k=int(k)),
        clique_adversary,
        rounds,
        workers=workers,
        cache=cache,
    )
    return series


def figure_energy_usage(
    n: int = 8, k: int = 4, rho: float = 0.3, beta: float = 1.0, rounds: int = 6000,
    workers: int = 1, cache=None,
) -> dict[str, RunResult]:
    """F4 — energy per round / per delivered packet for every algorithm."""
    from .parallel import run_specs
    from .specs import RunSpec

    adversary = spec_fragment("round-robin", rho=rho, beta=beta)
    configs: dict[str, dict] = {
        "Orchestra": spec_fragment("orchestra", n=n),
        "Count-Hop": spec_fragment("count-hop", n=n),
        "k-Cycle": spec_fragment("k-cycle", n=n, k=k),
        "k-Clique": spec_fragment("k-clique", n=n, k=k),
        "k-Subsets": spec_fragment("k-subsets", n=n, k=2),
        "RRW (uncapped)": spec_fragment("rrw", n=n),
        "MBTF (uncapped)": spec_fragment("mbtf", n=n),
    }
    specs = [
        RunSpec.from_fragments(algorithm, adversary, rounds)
        for algorithm in configs.values()
    ]
    results = run_specs(specs, workers=workers, cache=cache)
    return dict(zip(configs, results))


def figure_queue_trajectories(
    n: int = 9, k: int = 3, beta: float = 1.0, rounds: int = 12000,
    workers: int = 1, cache=None,
) -> dict[str, RunResult]:
    """F5 — queue-size trajectories below, at and above the oblivious threshold."""
    from .parallel import run_specs
    from .specs import RunSpec

    threshold = bounds.k_cycle_rate_threshold(n, k)
    impossibility = bounds.oblivious_rate_upper_bound(n, k)
    rates = {
        "below threshold": 0.6 * threshold,
        "at threshold": threshold,
        "above impossibility": min(1.0, 1.4 * impossibility),
    }
    specs = [
        RunSpec.from_fragments(
            spec_fragment("k-cycle", n=n, k=k),
            spec_fragment("single-target", rho=rho, beta=beta),
            rounds,
        )
        for rho in rates.values()
    ]
    results = run_specs(specs, workers=workers, cache=cache)
    return dict(zip(rates, results))


# ---------------------------------------------------------------------------
# Table 1 regeneration
# ---------------------------------------------------------------------------

def regenerate_table1(
    quick: bool = True, *, workers: int = 1, cache=None, progress=None
) -> tuple[str, list[ExperimentResult]]:
    """Run every Table 1 experiment and render a paper-vs-measured table.

    With ``quick=True`` (the default) small systems and shorter runs are
    used so that the whole table regenerates in a couple of minutes; the
    benchmark harness runs the full-size versions row by row.  With
    ``workers > 1`` each row's adversary family fans out over a shared
    process pool; the summaries are bit-identical to a serial run.
    ``progress`` is a ``progress(done, total)`` callback (e.g.
    :class:`~repro.sim.progress.ProgressTicker`) invoked per adversary
    family as its runs finish.
    """
    from ..analysis.table1 import render_comparison
    from .parallel import ParallelExecutor

    with ParallelExecutor(workers, cache=cache, progress=progress) as executor:
        fan = {"executor": executor}
        if quick:
            results = [
                experiment_orchestra_queue(n=5, rounds=3000, **fan),
                experiment_cap2_impossibility(n=5, rounds=4000, **fan),
                experiment_count_hop_latency(n=5, rho=0.5, rounds=4000, **fan),
                experiment_adjust_window_latency(n=3, rho=0.4, **fan),
                experiment_k_cycle_latency(n=7, k=3, rounds=8000, **fan),
                experiment_oblivious_impossibility(n=6, k=2, rounds=8000, **fan),
                experiment_k_clique_latency(n=6, k=2, rounds=10000, **fan),
                experiment_k_subsets_stability(n=5, k=2, rounds=10000, **fan),
                experiment_oblivious_direct_impossibility(n=5, k=2, rounds=10000, **fan),
            ]
        else:
            results = [
                experiment_orchestra_queue(**fan),
                experiment_cap2_impossibility(**fan),
                experiment_count_hop_latency(**fan),
                experiment_adjust_window_latency(**fan),
                experiment_k_cycle_latency(**fan),
                experiment_oblivious_impossibility(**fan),
                experiment_k_clique_latency(**fan),
                experiment_k_subsets_stability(**fan),
                experiment_oblivious_direct_impossibility(**fan),
            ]
    table = render_comparison([r.comparison_row() for r in results])
    return table, results
