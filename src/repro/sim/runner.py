"""Simulation runner: wire an algorithm, an adversary and the engine together."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Mapping, Sequence

from ..adversary.base import Adversary
from ..channel.block import BlockEngine
from ..channel.energy import EnergyReport
from ..channel.engine import EngineConfig, RoundEngine
from ..channel.events import ExecutionTrace
from ..channel.kernel import KernelEngine
from ..channel.packet import PacketFactory
from ..core.algorithm import RoutingAlgorithm
from ..metrics.collector import MetricsCollector
from ..metrics.summary import RunSummary

__all__ = ["ENGINE_KINDS", "RunResult", "resolve_engine", "run_simulation", "worst_case_over"]

#: Valid values of the ``engine`` selector: ``"auto"`` picks the block
#: engine unless the run needs a trace, ``"block"`` forces the compiled
#: round-block loop (which itself degrades per block to kernel semantics
#: whenever a capability is missing), ``"kernel"`` forces the
#: capability-negotiated per-round loop, ``"reference"`` forces the
#: checked oracle loop.  All four produce bit-identical results.
ENGINE_KINDS = ("auto", "block", "kernel", "reference")


def resolve_engine(engine: str, record_trace: bool) -> str:
    """Resolve the ``engine`` selector to a concrete engine kind.

    ``"auto"`` prefers ``"block"``: runs whose components negotiate the
    block capabilities get compiled blocks, and everything else falls
    back — per block, inside the engine — to the kernel loop at
    negligible cost, so the preference is always safe.  A requested
    trace forces ``"reference"``, the only engine that records one.
    """
    if engine not in ENGINE_KINDS:
        raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINE_KINDS}")
    if engine == "auto":
        return "reference" if record_trace else "block"
    return engine


@dataclass(slots=True)
class RunResult:
    """Everything produced by one simulated execution."""

    algorithm: str
    adversary: str
    n: int
    rounds: int
    summary: RunSummary
    collector: MetricsCollector
    energy: EnergyReport
    trace: ExecutionTrace | None = None
    #: Concrete engine kind that executed the run ("block" / "kernel" /
    #: "reference"), after ``auto`` resolution.
    engine_used: str | None = None
    #: The engine's negotiated-capability report (``None`` for the
    #: reference loop, which negotiates nothing).
    negotiation: dict | None = None

    @property
    def failed(self) -> bool:
        """Discriminator mirrored by :class:`~repro.sim.faults.FailedResult`
        (True there): supervised batches may mix both types."""
        return False

    @property
    def max_queue(self) -> int:
        return self.summary.max_queue

    @property
    def latency(self) -> int:
        return self.summary.observed_latency

    @property
    def stable(self) -> bool:
        return self.summary.stable


def run_simulation(
    algorithm: RoutingAlgorithm,
    adversary: Adversary,
    rounds: int,
    *,
    enforce_energy_cap: bool = True,
    energy_cap: int | None = None,
    record_trace: bool = False,
    label: str | None = None,
    engine: str = "auto",
    full_history: bool = False,
    plan_chunk: int | None = None,
    quiescence_skip: bool = True,
    lowering: bool = True,
) -> RunResult:
    """Simulate ``rounds`` rounds of ``algorithm`` against ``adversary``.

    Parameters
    ----------
    algorithm:
        A concrete :class:`RoutingAlgorithm` instance (defines ``n``).
    adversary:
        The packet-injection adversary; it is bound to the algorithm's
        system size if not bound already.
    rounds:
        Number of rounds to simulate.
    enforce_energy_cap:
        When True (default) the engine raises if the algorithm ever wakes
        more stations than its declared energy cap — a correctness check.
        Set to False for experiments that merely *measure* energy.
    energy_cap:
        Override of the cap to enforce/record; defaults to the
        algorithm's own declared cap.
    record_trace:
        Keep the full round-by-round execution trace (memory heavy).
    label:
        Label stored in the resulting summary; defaults to a description
        of the configuration.
    engine:
        ``"auto"`` (default) runs the compiled round-block loop unless a
        trace is requested; ``"block"`` forces that loop explicitly
        (ineligible runs degrade per block to kernel semantics inside the
        engine); ``"kernel"`` forces the capability-negotiated per-round
        loop; ``"reference"`` is the escape hatch forcing the original
        checked loop.  All engines produce bit-identical summaries
        (property-tested).
    full_history:
        Keep the unbounded adversary view regardless of the adversary's
        declared observation profile.
    plan_chunk:
        Batching granularity (in rounds) of the kernel loop's injection
        plans and windowed-view ring refreshes; ``None`` keeps the
        engine default.  An execution-strategy knob — results are
        bit-identical for every value.
    quiescence_skip:
        Enable the kernel loop's quiescent-span fast path (default).
        Another execution-strategy knob — results are bit-identical
        either way; ``False`` recovers the strictly per-round kernel for
        comparison benchmarks.
    lowering:
        Enable the block engine's segment-lowering tier (default):
        drivers prove closed-form spans inside compiled blocks, which
        then execute as array kernels.  Execution-strategy knob like the
        others — results are bit-identical either way; ``False``
        recovers the strictly per-round block loop for comparison
        benchmarks.  Ignored by the kernel and reference engines.
    """
    if rounds < 1:
        raise ValueError("rounds must be positive")
    controllers = algorithm.build_controllers()
    if adversary.n is None:
        adversary.bind(algorithm.n, PacketFactory())
    elif adversary.n != algorithm.n:
        raise ValueError(
            f"adversary bound to n={adversary.n} but algorithm has n={algorithm.n}"
        )
    collector = MetricsCollector()
    cap = energy_cap if energy_cap is not None else algorithm.energy_cap
    config_kwargs = {} if plan_chunk is None else {"plan_chunk": plan_chunk}
    config = EngineConfig(
        energy_cap=cap,
        enforce_energy_cap=enforce_energy_cap,
        record_trace=record_trace,
        full_history=full_history,
        quiescence_skip=quiescence_skip,
        **config_kwargs,
    )
    kind = resolve_engine(engine, record_trace)
    if kind in ("block", "kernel"):
        engine_cls = BlockEngine if kind == "block" else KernelEngine
        eng = engine_cls(
            controllers,
            adversary,
            collector=collector,
            config=config,
            schedule=algorithm.oblivious_schedule(),
        )
        if kind == "block":
            eng.lowering_enabled = lowering
    else:
        eng = RoundEngine(controllers, adversary, collector=collector, config=config)
    eng.run(rounds)
    run_label = label or f"{algorithm.describe()} vs {adversary.describe()}"
    return RunResult(
        algorithm=algorithm.describe(),
        adversary=adversary.describe(),
        n=algorithm.n,
        rounds=rounds,
        summary=collector.summary(run_label),
        collector=collector,
        energy=eng.energy.report(),
        trace=eng.trace,
        engine_used=kind,
        negotiation=eng.negotiation() if kind != "reference" else None,
    )


def worst_case_over(
    algorithm_factory: Callable[[], RoutingAlgorithm],
    adversary_factories: Sequence[Callable[[], Adversary]],
    rounds: int,
    *,
    enforce_energy_cap: bool = True,
    workers: int = 1,
    executor=None,
    cache=None,
    engine: str = "auto",
    policy=None,
) -> tuple[RunResult, list[RunResult]]:
    """Run one fresh algorithm instance against each adversary in a family.

    Returns the worst run (by observed latency, then max queue, with the
    adversary description as a final deterministic tie-break) and the full
    list of per-adversary results.  The paper's bounds are worst-case
    statements, so measured values reported in EXPERIMENTS.md are maxima
    over an adversary family.

    Factories may return live objects or declarative
    :func:`~repro.sim.specs.spec_fragment` dicts; with fragments the family
    fans out over the parallel executor (``workers`` processes, optional
    on-disk ``cache``), and ``workers=1`` is the serial fallback.  An
    :class:`~repro.sim.parallel.ExecutionPolicy` (or a supervised
    ``executor``) makes the family fault-tolerant; quarantined
    :class:`~repro.sim.faults.FailedResult` entries stay in the returned
    list but are deterministically skipped — with a warning — when
    picking the worst run (a quarantined spec must never silently *be*
    the worst case).
    """
    from .specs import RunSpec, materialize_adversary, materialize_algorithm

    jobs = [(algorithm_factory(), factory()) for factory in adversary_factories]
    all_fragments = all(
        isinstance(algo, Mapping) and isinstance(adv, Mapping) for algo, adv in jobs
    )
    results: list[RunResult] = []
    if all_fragments:
        specs = [
            RunSpec.from_fragments(
                algo, adv, rounds, enforce_energy_cap=enforce_energy_cap, engine=engine
            )
            for algo, adv in jobs
        ]
        from .parallel import dispatch_specs

        results = dispatch_specs(
            specs, workers=workers, executor=executor, cache=cache, policy=policy
        )
    else:
        from .parallel import require_serial_factories

        require_serial_factories("worst_case_over", workers, executor)
        for algo, adv in jobs:
            algorithm = materialize_algorithm(algo)
            results.append(
                run_simulation(
                    algorithm,
                    materialize_adversary(adv, algorithm),
                    rounds,
                    enforce_energy_cap=enforce_energy_cap,
                    engine=engine,
                )
            )
    completed = [r for r in results if not r.failed]
    skipped = [r for r in results if r.failed]
    if skipped:
        import warnings

        # Sorted hashes make the warning text deterministic regardless of
        # completion order; the skip itself is deterministic because the
        # max() below only ever sees successfully completed runs.
        detail = ", ".join(
            sorted(f"{r.label} ({r.error_type})" for r in skipped)
        )
        warnings.warn(
            f"worst_case_over: skipping {len(skipped)} quarantined run(s): {detail}",
            RuntimeWarning,
            stacklevel=2,
        )
    if not completed:
        raise RuntimeError(
            "worst_case_over: every run in the family was quarantined; "
            "no worst case can be reported"
        )
    worst = max(completed, key=lambda r: (r.latency, r.max_queue, r.adversary))
    return worst, results
