"""Parameter sweeps producing figure-style series.

The arXiv version of the paper reports its results as worst-case bounds
(Table 1); the simulation sections of such papers typically plot latency
and queue size against injection rate, system size or energy cap.  The
sweep helpers here produce exactly those series so the benchmark harness
can regenerate them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from ..adversary.base import Adversary
from ..core.algorithm import RoutingAlgorithm
from .runner import RunResult, run_simulation
from .specs import RunSpec, materialize_adversary, materialize_algorithm

__all__ = ["SweepPoint", "SweepSeries", "sweep"]


@dataclass(slots=True)
class SweepPoint:
    """One point of a sweep: the swept value and the run it produced.

    Under a fault-tolerant sweep ``result`` may be a quarantined
    :class:`~repro.sim.faults.FailedResult`; check :attr:`failed` before
    reading the run metrics.
    """

    value: float
    result: RunResult

    @property
    def failed(self) -> bool:
        return self.result.failed

    @property
    def latency(self) -> int:
        return self.result.latency

    @property
    def max_queue(self) -> int:
        return self.result.max_queue

    @property
    def stable(self) -> bool:
        return self.result.stable

    @property
    def energy_per_round(self) -> float:
        return self.result.summary.energy_per_round


@dataclass(slots=True)
class SweepSeries:
    """A named series of sweep points (one curve of a figure)."""

    name: str
    parameter: str
    points: list[SweepPoint] = field(default_factory=list)

    def values(self) -> list[float]:
        return [p.value for p in self.points]

    def latencies(self) -> list[int]:
        return [p.latency for p in self.points]

    def max_queues(self) -> list[int]:
        return [p.max_queue for p in self.points]

    def stabilities(self) -> list[bool]:
        return [p.stable for p in self.points]

    def energies(self) -> list[float]:
        return [p.energy_per_round for p in self.points]

    def failed_points(self) -> list[SweepPoint]:
        """Quarantined points (empty for a fault-free sweep)."""
        return [p for p in self.points if p.failed]

    def as_rows(self) -> list[dict]:
        """Rows suitable for CSV export / text rendering.

        Quarantined points render as structured failure rows (metrics
        None, ``failed`` message filled in) rather than crashing or being
        silently dropped.
        """
        rows = []
        for p in self.points:
            if p.failed:
                rows.append(
                    {
                        "series": self.name,
                        self.parameter: p.value,
                        "latency": None,
                        "max_queue": None,
                        "energy_per_round": None,
                        "stable": False,
                        "failed": p.result.describe(),
                    }
                )
            else:
                rows.append(
                    {
                        "series": self.name,
                        self.parameter: p.value,
                        "latency": p.latency,
                        "max_queue": p.max_queue,
                        "energy_per_round": round(p.energy_per_round, 3),
                        "stable": p.stable,
                        "failed": None,
                    }
                )
        return rows


def sweep(
    name: str,
    parameter: str,
    values: Sequence[float],
    algorithm_factory: Callable[[float], RoutingAlgorithm | Mapping],
    adversary_factory: Callable[[float], Adversary | Mapping],
    rounds: int | Callable[[float], int],
    *,
    enforce_energy_cap: bool = True,
    energy_cap: int | None = None,
    record_trace: bool = False,
    workers: int = 1,
    executor=None,
    cache=None,
    engine: str = "auto",
    progress=None,
    policy=None,
    manifest=None,
    shard: tuple[int, int] | None = None,
) -> SweepSeries:
    """Run one simulation per swept value and collect the results.

    ``algorithm_factory`` and ``adversary_factory`` receive the swept
    value and return either live objects or declarative
    :func:`~repro.sim.specs.spec_fragment` dicts; ``rounds`` may be a
    constant or a function of the value (larger systems typically need
    longer runs).

    With fragments, the sweep runs through the parallel executor
    (``workers`` processes, optional on-disk ``cache``); ``workers=1`` is
    the serial fallback and produces bit-identical results.  Live objects
    cannot cross process boundaries, so they require ``workers=1``.

    An :class:`~repro.sim.parallel.ExecutionPolicy` (``policy``) makes
    the sweep fault-tolerant — worker crashes, transient exceptions and
    timeouts retry with deterministic backoff, and poison specs land as
    quarantined points instead of aborting the series — and a
    :class:`~repro.sim.manifest.SweepManifest` (``manifest``) checkpoints
    per-spec status incrementally so an interrupted sweep resumes.

    ``shard=(i, k)`` keeps only the points whose canonical spec hash
    falls in shard ``i`` of ``k`` (:func:`~repro.sim.queue.shard_index`):
    a deterministic partition, so running the same sweep with shards
    ``0/k .. k-1/k`` on different machines against a shared cache covers
    exactly the full sweep with no overlap.  Requires declarative
    fragment factories (live objects have no canonical hash).
    """
    if shard is not None:
        index, total_shards = shard
        if not 0 <= index < total_shards:
            raise ValueError(f"shard index {index} out of range for {total_shards}")
    series = SweepSeries(name=name, parameter=parameter)
    jobs = []
    for value in values:
        run_rounds = rounds(value) if callable(rounds) else rounds
        jobs.append(
            (value, algorithm_factory(value), adversary_factory(value), run_rounds)
        )

    all_fragments = all(
        isinstance(algo, Mapping) and isinstance(adv, Mapping)
        for _, algo, adv, _ in jobs
    )
    if all_fragments:
        specs = [
            RunSpec.from_fragments(
                algo,
                adv,
                run_rounds,
                enforce_energy_cap=enforce_energy_cap,
                energy_cap=energy_cap,
                record_trace=record_trace,
                label=f"{name}[{parameter}={value}]",
                engine=engine,
            )
            for value, algo, adv, run_rounds in jobs
        ]
        if shard is not None:
            from .queue import shard_index

            index, total_shards = shard
            kept = [
                (job, spec)
                for job, spec in zip(jobs, specs)
                if shard_index(spec.spec_hash(), total_shards) == index
            ]
            jobs = [job for job, _ in kept]
            specs = [spec for _, spec in kept]
        from .parallel import dispatch_specs

        results = dispatch_specs(
            specs,
            workers=workers,
            executor=executor,
            cache=cache,
            progress=progress,
            policy=policy,
            manifest=manifest,
        )
        for (value, _, _, _), result in zip(jobs, results):
            series.points.append(SweepPoint(value=value, result=result))
        return series

    from .parallel import require_serial_factories

    require_serial_factories("sweep", workers, executor)
    if shard is not None:
        raise ValueError(
            "sharded sweep needs declarative factories: return "
            "spec_fragment(...) dicts instead of live objects"
        )
    if policy is not None or manifest is not None:
        raise ValueError(
            "fault-tolerant sweep needs declarative factories: return "
            "spec_fragment(...) dicts instead of live objects"
        )
    for value, algorithm, adversary, run_rounds in jobs:
        algorithm = materialize_algorithm(algorithm)
        result = run_simulation(
            algorithm,
            materialize_adversary(adversary, algorithm),
            run_rounds,
            enforce_energy_cap=enforce_energy_cap,
            energy_cap=energy_cap,
            record_trace=record_trace,
            label=f"{name}[{parameter}={value}]",
            engine=engine,
        )
        series.points.append(SweepPoint(value=value, result=result))
    return series
