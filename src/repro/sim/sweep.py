"""Parameter sweeps producing figure-style series.

The arXiv version of the paper reports its results as worst-case bounds
(Table 1); the simulation sections of such papers typically plot latency
and queue size against injection rate, system size or energy cap.  The
sweep helpers here produce exactly those series so the benchmark harness
can regenerate them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..adversary.base import Adversary
from ..core.algorithm import RoutingAlgorithm
from .runner import RunResult, run_simulation

__all__ = ["SweepPoint", "SweepSeries", "sweep"]


@dataclass(slots=True)
class SweepPoint:
    """One point of a sweep: the swept value and the run it produced."""

    value: float
    result: RunResult

    @property
    def latency(self) -> int:
        return self.result.latency

    @property
    def max_queue(self) -> int:
        return self.result.max_queue

    @property
    def stable(self) -> bool:
        return self.result.stable

    @property
    def energy_per_round(self) -> float:
        return self.result.summary.energy_per_round


@dataclass(slots=True)
class SweepSeries:
    """A named series of sweep points (one curve of a figure)."""

    name: str
    parameter: str
    points: list[SweepPoint] = field(default_factory=list)

    def values(self) -> list[float]:
        return [p.value for p in self.points]

    def latencies(self) -> list[int]:
        return [p.latency for p in self.points]

    def max_queues(self) -> list[int]:
        return [p.max_queue for p in self.points]

    def stabilities(self) -> list[bool]:
        return [p.stable for p in self.points]

    def energies(self) -> list[float]:
        return [p.energy_per_round for p in self.points]

    def as_rows(self) -> list[dict]:
        """Rows suitable for CSV export / text rendering."""
        return [
            {
                "series": self.name,
                self.parameter: p.value,
                "latency": p.latency,
                "max_queue": p.max_queue,
                "energy_per_round": round(p.energy_per_round, 3),
                "stable": p.stable,
            }
            for p in self.points
        ]


def sweep(
    name: str,
    parameter: str,
    values: Sequence[float],
    algorithm_factory: Callable[[float], RoutingAlgorithm],
    adversary_factory: Callable[[float], Adversary],
    rounds: int | Callable[[float], int],
    *,
    enforce_energy_cap: bool = True,
) -> SweepSeries:
    """Run one simulation per swept value and collect the results.

    ``algorithm_factory`` and ``adversary_factory`` receive the swept
    value; ``rounds`` may be a constant or a function of the value (larger
    systems typically need longer runs).
    """
    series = SweepSeries(name=name, parameter=parameter)
    for value in values:
        algorithm = algorithm_factory(value)
        adversary = adversary_factory(value)
        run_rounds = rounds(value) if callable(rounds) else rounds
        result = run_simulation(
            algorithm,
            adversary,
            run_rounds,
            enforce_energy_cap=enforce_energy_cap,
            label=f"{name}[{parameter}={value}]",
        )
        series.points.append(SweepPoint(value=value, result=result))
    return series
