"""The distributed sweep worker: claim shards, execute, heartbeat, publish.

``repro worker`` runs this loop.  Each iteration claims one shard from a
:class:`~repro.sim.queue.WorkQueue`, executes its specs through the
supervised :class:`~repro.sim.parallel.ParallelExecutor` (serial
in-process — the worker *is* the parallelism unit; retries, backoff and
poison-spec quarantine all behave exactly as in a local sweep), renews
the lease after every finished spec, publishes results into the shared
:class:`~repro.sim.cache.ResultCache`, and posts per-spec status records
into the queue's ``done/`` directory.

Crash semantics are the point:

* The CLI marks the process with
  :func:`~repro.sim.faults.mark_worker_process`, so an injected ``kill``
  coin hard-exits the *whole worker* (``os._exit``) mid-shard — a real
  crash, leaving a lease that expires and is stolen.
* An injected ``lease`` coin makes the worker execute only half the
  shard and then silently stop heartbeating — the "wedged but alive"
  failure mode — again forcing expiry and a steal.
* A stolen shard re-executes under
  :meth:`FaultPlan.with_offset(takeovers)
  <repro.sim.faults.FaultPlan.with_offset>`: the fault-coin stream
  resumes where the dead worker left off, so the fault budget bounds
  faults per spec across the fleet and every steal chain terminates.
* Specs the dead worker already finished are cache hits for the thief —
  reclaimed shards complete without re-burning retry budgets.
"""

from __future__ import annotations

import dataclasses
import os
import time
from dataclasses import dataclass, field

from .cache import ResultCache, default_cache_dir
from .faults import FaultPlan
from .parallel import ExecutionPolicy, ParallelExecutor
from .queue import LeaseLostError, WorkLease, WorkQueue, status_record

__all__ = ["WorkerStats", "process_lease", "run_worker"]


@dataclass
class WorkerStats:
    """Counters accumulated over one worker's lifetime."""

    claims: int = 0
    shards_completed: int = 0
    specs_done: int = 0
    specs_failed: int = 0
    lease_deaths: int = 0
    leases_lost: int = 0
    outcomes: list[str] = field(default_factory=list)

    def summary(self) -> str:
        return (
            f"{self.shards_completed}/{self.claims} shards "
            f"({self.specs_done} specs done, {self.specs_failed} failed, "
            f"{self.lease_deaths} lease deaths, {self.leases_lost} leases lost)"
        )


def process_lease(
    lease: WorkLease,
    cache: ResultCache,
    policy: ExecutionPolicy | None = None,
    *,
    fault_plan: FaultPlan | None = None,
    stats: WorkerStats | None = None,
) -> str:
    """Execute one claimed shard; returns ``completed``/``died``/``lost``.

    ``died`` means the lease-death coin fired: half the shard was
    executed (its results are cached and stay valid) and the lease was
    deliberately left to expire.  ``lost`` means a heartbeat discovered
    the lease had already been stolen mid-execution; whatever was
    computed is cached, the thief finishes the rest idempotently.
    """
    stats = stats if stats is not None else WorkerStats()
    policy = policy if policy is not None else ExecutionPolicy()
    specs = lease.specs
    dying = fault_plan is not None and fault_plan.lease_death(
        lease.shard_id, lease.takeovers
    )
    if dying:
        stats.lease_deaths += 1
        specs = specs[: len(specs) // 2]

    if fault_plan is not None:
        # Resume the global per-spec coin stream past the attempts any
        # previous holder of this shard already burned.
        policy = dataclasses.replace(
            policy, fault_plan=fault_plan.with_offset(lease.takeovers)
        )

    def renew(done: int, total: int) -> None:
        lease.heartbeat()

    executor = ParallelExecutor(workers=1, cache=cache, policy=policy)
    try:
        results = executor.run(specs, progress=renew)
    except LeaseLostError:
        stats.leases_lost += 1
        return "lost"
    finally:
        executor.close()

    if dying:
        return "died"

    statuses = [
        status_record(spec, result) for spec, result in zip(lease.specs, results)
    ]
    for record in statuses:
        if record["status"] == "done":
            stats.specs_done += 1
        else:
            stats.specs_failed += 1
    if not lease.complete(statuses):
        stats.leases_lost += 1
    stats.shards_completed += 1
    return "completed"


def run_worker(
    queue_root: str | os.PathLike,
    *,
    cache_dir: str | os.PathLike | None = None,
    owner: str | None = None,
    policy: ExecutionPolicy | None = None,
    fault_plan: FaultPlan | None = None,
    poll: float = 0.2,
    max_idle: float | None = None,
    max_shards: int | None = None,
    exit_when_drained: bool = False,
    wait_for_queue: float = 0.0,
) -> WorkerStats:
    """Pull and execute shards from ``queue_root`` until there is no work.

    Parameters
    ----------
    cache_dir:
        Shared result cache; defaults to the directory recorded in the
        queue's config, then to the process default.
    owner:
        Lease owner name (defaults to ``worker-<pid>``); shows up in
        lease filenames for debugging.
    poll:
        Seconds between claim attempts while the queue is empty.
    max_idle:
        Exit after this many consecutive seconds without claiming
        anything (``None`` = wait forever, for daemon workers).
    max_shards:
        Exit after claiming this many shards (tests).
    exit_when_drained:
        Exit as soon as no shard is pending *or* leased — i.e. the sweep
        is finished, not merely contended.
    wait_for_queue:
        Seconds to wait for the queue config to appear before opening it
        (lets workers boot before the server has enqueued anything).
    """
    root = os.fspath(queue_root)
    if wait_for_queue > 0:
        deadline = time.monotonic() + wait_for_queue
        while not os.path.exists(os.path.join(root, "queue.json")):
            if time.monotonic() >= deadline:
                break
            time.sleep(min(poll, 0.05))

    queue = WorkQueue(root)
    if cache_dir is None:
        cache_dir = queue.cache_dir or default_cache_dir()
    cache = ResultCache(cache_dir)
    owner = owner or f"worker-{os.getpid()}"
    stats = WorkerStats()
    idle_since: float | None = None

    while True:
        lease = queue.claim(owner)
        if lease is None:
            if exit_when_drained and queue.drained():
                break
            now = time.monotonic()
            if idle_since is None:
                idle_since = now
            if max_idle is not None and now - idle_since >= max_idle:
                break
            time.sleep(poll)
            continue
        idle_since = None
        stats.claims += 1
        outcome = process_lease(
            lease, cache, policy, fault_plan=fault_plan, stats=stats
        )
        stats.outcomes.append(f"{lease.shard_id}:t{lease.takeovers}:{outcome}")
        if max_shards is not None and stats.claims >= max_shards:
            break
    return stats
