"""The distributed sweep worker: claim shards, execute, heartbeat, publish.

``repro worker`` runs this loop.  Each iteration claims one shard from a
:class:`~repro.sim.queue.WorkQueue` (shared filesystem) or a
:class:`~repro.sim.queue.RemoteWorkQueue` (HTTP, no shared mount),
executes its specs through the supervised
:class:`~repro.sim.parallel.ParallelExecutor` (serial in-process — the
worker *is* the parallelism unit; retries, backoff and poison-spec
quarantine all behave exactly as in a local sweep), renews the lease
after every finished spec, publishes results into the shared
:class:`~repro.sim.cache.ResultCache`, and posts per-spec status records
into the queue's ``done/`` records.

In the remote topology every coordination step is an RPC through one
:class:`~repro.sim.netclient.ResilientClient` shared by the queue client
and the :class:`~repro.sim.cache.RemoteCacheBackend` — one circuit
breaker per server, so a dead server fails everything fast and a
recovered one reopens everything at once.  Results spilled locally while
the circuit was open are **reconciled** (re-published) before the shard's
done record is posted: a "done" status must never point at a result the
server does not hold.

Crash semantics are the point:

* The CLI marks the process with
  :func:`~repro.sim.faults.mark_worker_process`, so an injected ``kill``
  coin hard-exits the *whole worker* (``os._exit``) mid-shard — a real
  crash, leaving a lease that expires and is stolen.
* An injected ``lease`` coin makes the worker execute only half the
  shard and then silently stop heartbeating — the "wedged but alive"
  failure mode — again forcing expiry and a steal.
* A stolen shard re-executes under
  :meth:`FaultPlan.with_offset(takeovers)
  <repro.sim.faults.FaultPlan.with_offset>`: the fault-coin stream
  resumes where the dead worker left off, so the fault budget bounds
  faults per spec across the fleet and every steal chain terminates.
* Specs the dead worker already finished are cache hits for the thief —
  reclaimed shards complete without re-burning retry budgets.
"""

from __future__ import annotations

import dataclasses
import os
import time
from dataclasses import dataclass, field

from .cache import RemoteCacheBackend, ResultCache, default_cache_dir
from .faults import FaultPlan
from .netclient import ResilientClient, RpcPolicy
from .parallel import ExecutionPolicy, ParallelExecutor
from .queue import (
    LeaseLostError,
    RemoteWorkQueue,
    WorkLease,
    WorkQueue,
    status_record,
)

__all__ = ["WorkerStats", "process_lease", "run_worker"]


@dataclass
class WorkerStats:
    """Counters accumulated over one worker's lifetime."""

    claims: int = 0
    shards_completed: int = 0
    specs_done: int = 0
    specs_failed: int = 0
    lease_deaths: int = 0
    leases_lost: int = 0
    # RPC health (remote topology only; zero for shared-filesystem runs).
    rpc_retries: int = 0
    rpc_giveups: int = 0
    circuit_opens: int = 0
    circuit_closes: int = 0
    spilled: int = 0
    reconciled: int = 0
    outcomes: list[str] = field(default_factory=list)
    #: RPC deltas from shards whose done record never posted (lease lost
    #: or deliberately abandoned); carried onto the next complete so the
    #: job's aggregated health is at-least-once, not sometimes-lost.
    rpc_unreported: dict = field(default_factory=dict)
    #: Backend-stats watermark of the last reported/carried delta.  The
    #: delta windows tile the worker's whole lifetime — claims, breaker
    #: probes and circuit-close reconciliations that happen *between*
    #: shards land in the next shard's delta instead of a gap.
    rpc_watermark: dict = field(default_factory=dict)

    def apply_rpc(self, totals: dict[str, int]) -> None:
        """Adopt a client/backend stats dict as this worker's RPC totals."""
        self.rpc_retries = int(totals.get("retries", 0))
        self.rpc_giveups = int(totals.get("giveups", 0))
        self.circuit_opens = int(totals.get("circuit_opens", 0))
        self.circuit_closes = int(totals.get("circuit_closes", 0))
        self.spilled = int(totals.get("spilled", 0))
        self.reconciled = int(totals.get("reconciled", 0))

    def summary(self) -> str:
        text = (
            f"{self.shards_completed}/{self.claims} shards "
            f"({self.specs_done} specs done, {self.specs_failed} failed, "
            f"{self.lease_deaths} lease deaths, {self.leases_lost} leases lost)"
        )
        rpc_parts = []
        if self.rpc_retries:
            rpc_parts.append(f"{self.rpc_retries} rpc retries")
        if self.circuit_opens:
            rpc_parts.append(
                f"{self.circuit_opens} circuit opens/{self.circuit_closes} closes"
            )
        if self.spilled:
            rpc_parts.append(f"{self.spilled} spilled/{self.reconciled} reconciled")
        if rpc_parts:
            text += f" [{', '.join(rpc_parts)}]"
        return text


def _backend_stats(cache: ResultCache) -> dict[str, int]:
    getter = getattr(cache, "rpc_stats", None)
    return dict(getter()) if callable(getter) else {}


def _stats_delta(before: dict[str, int], after: dict[str, int]) -> dict[str, int]:
    """Counter deltas between two backend snapshots (gauges pass through)."""
    delta: dict[str, int] = {}
    for key in set(before) | set(after):
        if key == "spill_pending":
            if after.get(key, 0):
                delta[key] = after.get(key, 0)
            continue
        diff = after.get(key, 0) - before.get(key, 0)
        if diff:
            delta[key] = diff
    return delta


def _merge_rpc(carry: dict, delta: dict[str, int]) -> dict[str, int]:
    """Fold a carried-forward delta into a fresh one (counters sum; the
    ``spill_pending`` gauge keeps only the newer reading)."""
    merged = dict(delta)
    for key, value in carry.items():
        if key == "spill_pending":
            continue
        merged[key] = merged.get(key, 0) + int(value)
    return merged


def _take_rpc_delta(stats: WorkerStats, cache: ResultCache) -> dict[str, int]:
    """This worker's RPC activity since the last taken delta."""
    current = _backend_stats(cache)
    delta = _stats_delta(stats.rpc_watermark, current)
    stats.rpc_watermark = current
    return delta


def _carry_rpc(stats: WorkerStats, cache: ResultCache) -> None:
    """Bank the current RPC delta for the next done record that posts."""
    stats.rpc_unreported = _merge_rpc(
        stats.rpc_unreported, _take_rpc_delta(stats, cache)
    )


def _flush_spill_before_complete(
    lease: WorkLease, cache: ResultCache, stats: WorkerStats, timeout: float = 10.0
) -> bool:
    """Reconcile spilled results to the server before posting ``done``.

    A shard's done record must never reference a result only this
    worker's spill directory holds — the server would report the spec
    "missing".  Keeps heartbeating while it waits for the circuit to
    half-open; gives up (False) when the lease is lost or ``timeout``
    elapses with the server still unreachable.
    """
    pending = getattr(cache, "pending_spill", None)
    flush = getattr(cache, "flush_spill", None)
    if not callable(pending) or not callable(flush):
        return True
    deadline = time.monotonic() + timeout
    while pending():
        flush()
        if not pending():
            break
        if time.monotonic() >= deadline:
            return False
        try:
            lease.heartbeat()
        except LeaseLostError:
            stats.leases_lost += 1
            return False
        time.sleep(0.1)
    return True


def process_lease(
    lease: WorkLease,
    cache: ResultCache,
    policy: ExecutionPolicy | None = None,
    *,
    fault_plan: FaultPlan | None = None,
    stats: WorkerStats | None = None,
) -> str:
    """Execute one claimed shard; returns ``completed``/``died``/``lost``.

    ``died`` means the lease-death coin fired: half the shard was
    executed (its results are cached and stay valid) and the lease was
    deliberately left to expire.  ``lost`` means a heartbeat discovered
    the lease had already been stolen mid-execution — or, on a remote
    cache, that spilled results could not be reconciled before
    completion; whatever was computed is cached (or spilled for later
    reconciliation), and the thief finishes the rest idempotently.
    """
    stats = stats if stats is not None else WorkerStats()
    policy = policy if policy is not None else ExecutionPolicy()
    specs = lease.specs
    dying = fault_plan is not None and fault_plan.lease_death(
        lease.shard_id, lease.takeovers
    )
    if dying:
        stats.lease_deaths += 1
        specs = specs[: len(specs) // 2]

    if fault_plan is not None:
        # Resume the global per-spec coin stream past the attempts any
        # previous holder of this shard already burned.
        policy = dataclasses.replace(
            policy, fault_plan=fault_plan.with_offset(lease.takeovers)
        )

    def renew(done: int, total: int) -> None:
        lease.heartbeat()

    executor = ParallelExecutor(workers=1, cache=cache, policy=policy)
    try:
        results = executor.run(specs, progress=renew)
    except LeaseLostError:
        stats.leases_lost += 1
        _carry_rpc(stats, cache)
        return "lost"
    finally:
        executor.close()

    if dying:
        _carry_rpc(stats, cache)
        return "died"

    if not _flush_spill_before_complete(lease, cache, stats):
        # Results are safe in the spill cache; hand the shard back (the
        # abandon itself may fail on a dead server — then the TTL lapses
        # and the steal happens anyway).
        lease.abandon()
        _carry_rpc(stats, cache)
        return "lost"

    statuses = [
        status_record(spec, result) for spec, result in zip(lease.specs, results)
    ]
    for record in statuses:
        if record["status"] == "done":
            stats.specs_done += 1
        else:
            stats.specs_failed += 1
    rpc_delta = _merge_rpc(stats.rpc_unreported, _take_rpc_delta(stats, cache))
    stats.rpc_unreported = {}
    if not lease.complete(statuses, extra=rpc_delta or None):
        # The record may not have been written (remote 410 / unreachable):
        # re-bank the delta so a later complete still reports it.  A rare
        # double count (torn response after the server applied it) only
        # inflates diagnostics, never results.
        stats.leases_lost += 1
        stats.rpc_unreported = _merge_rpc(stats.rpc_unreported, rpc_delta)
    stats.shards_completed += 1
    return "completed"


def run_worker(
    queue_root: str | os.PathLike | None = None,
    *,
    server_url: str | None = None,
    cache_url: str | None = None,
    spill_dir: str | os.PathLike | None = None,
    rpc_policy: RpcPolicy | None = None,
    cache_dir: str | os.PathLike | None = None,
    owner: str | None = None,
    policy: ExecutionPolicy | None = None,
    fault_plan: FaultPlan | None = None,
    poll: float = 0.2,
    max_idle: float | None = None,
    max_shards: int | None = None,
    exit_when_drained: bool = False,
    wait_for_queue: float = 0.0,
) -> WorkerStats:
    """Pull and execute shards until there is no work.

    Exactly one of ``queue_root`` (shared-filesystem queue) or
    ``server_url`` (HTTP queue — no shared mount) must be given.

    Parameters
    ----------
    server_url:
        ``repro serve`` base URL; shard claims, heartbeats and done
        records go over HTTP through the resilient client.
    cache_url:
        Remote cache base URL (defaults to ``server_url`` when serving
        over HTTP).  When set, results are published with ``PUT
        /api/cache`` instead of a shared cache directory, spilling
        locally while the server is unreachable.
    spill_dir:
        Local spill directory for the remote cache backend (a private
        temp directory when omitted).
    rpc_policy:
        Timeout/retry/circuit-breaker tuning for all RPCs
        (:class:`~repro.sim.netclient.RpcPolicy`).
    cache_dir:
        Shared result cache for the filesystem topology; defaults to the
        directory recorded in the queue's config, then to the process
        default.
    owner:
        Lease owner name (defaults to ``worker-<pid>``); shows up in
        lease filenames for debugging.
    poll:
        Seconds between claim attempts while the queue is empty.
    max_idle:
        Exit after this many consecutive seconds without claiming
        anything (``None`` = wait forever, for daemon workers).
    max_shards:
        Exit after claiming this many shards (tests).
    exit_when_drained:
        Exit as soon as no shard is pending *or* leased — i.e. the sweep
        is finished, not merely contended.  A remote queue only reports
        drained on a positive server answer, so a partition cannot make
        a worker exit early.
    wait_for_queue:
        Seconds to wait for the queue to exist (filesystem: the
        ``queue.json`` config; remote: the server reachable with at
        least one shard ever enqueued) before entering the claim loop.
    """
    if (queue_root is None) == (server_url is None):
        raise ValueError("exactly one of queue_root or server_url is required")

    client: ResilientClient | None = None
    if server_url is not None or cache_url is not None:
        client = ResilientClient(rpc_policy, fault_plan=fault_plan)

    queue: WorkQueue | RemoteWorkQueue
    if server_url is not None:
        queue = RemoteWorkQueue(server_url, client=client)
        if wait_for_queue > 0:
            deadline = time.monotonic() + wait_for_queue
            while not queue.ready():
                if time.monotonic() >= deadline:
                    break
                time.sleep(min(poll, 0.05))
    else:
        root = os.fspath(queue_root)
        if wait_for_queue > 0:
            deadline = time.monotonic() + wait_for_queue
            while not os.path.exists(os.path.join(root, "queue.json")):
                if time.monotonic() >= deadline:
                    break
                time.sleep(min(poll, 0.05))
        queue = WorkQueue(root)

    if cache_url is not None or server_url is not None:
        backend = RemoteCacheBackend(
            cache_url if cache_url is not None else server_url,
            client=client,
            spill_dir=spill_dir,
        )
        cache = ResultCache(backend=backend)
    else:
        if cache_dir is None:
            cache_dir = queue.cache_dir or default_cache_dir()
        cache = ResultCache(cache_dir)

    owner = owner or f"worker-{os.getpid()}"
    stats = WorkerStats()
    idle_since: float | None = None

    while True:
        lease = queue.claim(owner)
        if lease is None:
            if exit_when_drained and queue.drained():
                break
            now = time.monotonic()
            if idle_since is None:
                idle_since = now
            if max_idle is not None and now - idle_since >= max_idle:
                break
            time.sleep(poll)
            continue
        idle_since = None
        stats.claims += 1
        outcome = process_lease(
            lease, cache, policy, fault_plan=fault_plan, stats=stats
        )
        stats.outcomes.append(f"{lease.shard_id}:t{lease.takeovers}:{outcome}")
        if max_shards is not None and stats.claims >= max_shards:
            break

    # Last-chance reconciliation: don't exit with results stranded in
    # the spill directory if the server is reachable again.
    cache.flush_spill()
    stats.apply_rpc(_backend_stats(cache))
    return stats
