"""k-Clique: energy-oblivious direct plain-packet routing (Section 6).

The stations are partitioned into ``2n/k`` disjoint *half-groups* of size
``k/2`` each; every (unordered) pair of half-groups is a *pair* of ``k``
stations.  The pairs are arranged in a fixed cycle and take turns being
active for **one round at a time**, round-robin — an on/off pattern that
depends only on ``(n, k, t)``, so the algorithm is k-energy-oblivious.

While a pair is active its ``k`` stations run a round-robin-withholding
token: the holder transmits a queued packet whose destination lies inside
the active pair (both endpoints of such a packet are awake, so a heard
packet is immediately delivered — the algorithm routes directly); a silent
round advances the token.

Paper bounds (Table 1 / Theorem 7): bounded latency for injection rates
``rho < k^2 / (n (2n - k))`` and latency at most ``8 (n^2/k)(1 + beta/2k)``
for ``rho <= k^2 / (2 n (2n - k))``.  By Theorem 9 no k-energy-oblivious
direct algorithm is stable for ``rho > k(k-1)/(n(n-1))``.
"""

from __future__ import annotations

import itertools
import math
from bisect import bisect_left

import numpy as np

from ..channel.feedback import ChannelOutcome, Feedback
from ..channel.message import Message
from ..core.algorithm import AlgorithmProperties, RoutingAlgorithm
from ..core.blocks import LoweredSegment, RoundBlockDriver
from ..core.controller import QueueingController
from ..core.registry import register_algorithm
from ..core.schedule import PeriodicSchedule, rounds_in_congruence_class
from ..protocols.token_ring import TokenRingReplica

__all__ = ["KClique", "half_groups", "clique_pairs"]


def effective_half_group_size(n: int, k: int) -> int:
    """Half-group size actually used; the paper keeps ``k <= 2n/3``."""
    half = max(1, k // 2)
    # Ensure there are at least two half-groups (otherwise no pair exists)
    # and at least three pairs when possible, mirroring the paper's
    # adjustment "if k/2 > n/3 then decrease k".
    while half > 1 and math.ceil(n / half) < 2:
        half -= 1
    return half


def half_groups(n: int, k: int) -> list[list[int]]:
    """Partition ``[0, n)`` into consecutive blocks of size ``k/2`` (last may be short)."""
    half = effective_half_group_size(n, k)
    blocks: list[list[int]] = []
    start = 0
    while start < n:
        blocks.append(list(range(start, min(start + half, n))))
        start += half
    return blocks


def clique_pairs(n: int, k: int) -> list[list[int]]:
    """All unordered pairs of half-groups, each merged into one station set."""
    blocks = half_groups(n, k)
    pairs: list[list[int]] = []
    for a, b in itertools.combinations(range(len(blocks)), 2):
        pairs.append(sorted(blocks[a] + blocks[b]))
    if not pairs:  # degenerate: a single block; the 'pair' is that block
        pairs = [sorted(blocks[0])]
    return pairs


class _KCliqueController(QueueingController):
    """Per-station controller of k-Clique."""

    # wakes() is a pure lookup of the pair rotation (published as the
    # algorithm's PeriodicSchedule), so the kernel may batch awake sets.
    static_wake_schedule = True

    # Holding no packets the token holder withholds, and a silent round
    # only advances the active pair's token: quiescent spans fast-forward
    # with one congruence count per pair membership.
    silence_invariant = True

    def __init__(self, station_id: int, n: int, pairs: list[list[int]]) -> None:
        super().__init__(station_id, n)
        self.pairs = pairs
        self.num_pairs = len(pairs)
        self.my_pairs = [p for p, members in enumerate(pairs) if station_id in members]
        self.replicas = {p: TokenRingReplica(pairs[p]) for p in self.my_pairs}
        self._pair_members = {p: set(pairs[p]) for p in self.my_pairs}

    def active_pair(self, round_no: int) -> int:
        """The pair that is switched on in ``round_no``."""
        return round_no % self.num_pairs

    def wakes(self, round_no: int) -> bool:
        return self.active_pair(round_no) in self.my_pairs

    def act(self, round_no: int) -> Message | None:
        pair = self.active_pair(round_no)
        if pair not in self.my_pairs:
            return None
        replica = self.replicas[pair]
        if replica.holder != self.station_id:
            return None
        members = self._pair_members[pair]
        packet = self.queue.peek_any_matching(lambda p: p.destination in members)
        if packet is None:
            return None
        return self.transmit(packet)

    def after_feedback(self, round_no: int, feedback: Feedback) -> None:
        pair = self.active_pair(round_no)
        replica = self.replicas.get(pair)
        if replica is not None:
            replica.observe(feedback.outcome)

    def advance_silent_span(self, start: int, stop: int) -> None:
        # This station observes exactly the silent rounds in which one of
        # its pairs is active (pair ``p`` is active when t % num_pairs ==
        # p); each such round advances that pair's token.
        for p in self.my_pairs:
            rounds = rounds_in_congruence_class(start, stop, self.num_pairs, p)
            if rounds:
                self.replicas[p].advance_silence(rounds)


class _KCliqueBlockDriver(RoundBlockDriver):
    """Compiled-round driver for k-Clique (one shared instance per run).

    Pair ``t % num_pairs`` is active in round ``t``; only its token
    holder may transmit.  Silence advances every pair member's replica;
    a heard round only removes the sender's confirmed packet (k-Clique
    routes directly inside the pair, so nothing is adopted, and a heard
    outcome leaves the token in place).
    """

    def __init__(self, controllers: list[_KCliqueController], half: int) -> None:
        super().__init__(len(controllers))
        self._controllers = controllers
        pairs = controllers[0].pairs
        self._pairs = pairs
        self._num_pairs = len(pairs)
        self._half = half
        self._pair_replicas = [
            [controllers[i].replicas[p] for i in members]
            for p, members in enumerate(pairs)
        ]
        # Pair index -> the two half-group ids it joins, in the same
        # combinations order clique_pairs uses; a packet is transmittable
        # inside pair (a, b) exactly when its destination's half-group
        # (``destination // half``) is a or b.
        num_blocks = math.ceil(len(controllers) / half)
        if num_blocks < 2:
            self._pair_blocks = [(0, 0)]
        else:
            self._pair_blocks = list(itertools.combinations(range(num_blocks), 2))

    def transmitter(self, t: int) -> int:
        return self._pair_replicas[t % self._num_pairs][0].holder

    def silent_round(self, t: int) -> None:
        for replica in self._pair_replicas[t % self._num_pairs]:
            replica.observe(ChannelOutcome.SILENCE)

    def heard_round(self, t: int, sender: int, message: Message) -> tuple[int, ...]:
        sender_ctrl = self._controllers[sender]
        if sender_ctrl._in_flight is not None:
            sender_ctrl.queue.remove(sender_ctrl._in_flight)
            sender_ctrl._in_flight = None
        return (sender,)

    def lower_segment(self, start: int, stop: int, plan) -> LoweredSegment | None:
        """Silent-span lowering: absorb arrivals while no holder may act.

        k-Clique has no aging and routes directly, so the only in-span
        queue mutations are the planned arrivals themselves, and a round
        is heard exactly when the active pair's holder has a packet whose
        destination half-group belongs to the pair — including a packet
        injected that same round.  The driver keeps a per-station count
        of queued destination half-groups, walks the pair rotation and
        tokens, and cuts immediately before the first heard round.
        """
        controllers = self._controllers
        pairs = self._pairs
        num_pairs = self._num_pairs
        half = self._half
        pair_blocks = self._pair_blocks
        pair_replicas = self._pair_replicas

        offsets = plan.offsets
        plan_base = plan.start
        sources = plan.sources
        plan_dests = plan.destinations
        ai = offsets[start - plan_base]
        inj_rounds = plan.injection_rounds()
        ip = bisect_left(inj_rounds, start)
        n_inj = len(inj_rounds)
        next_arrival = inj_rounds[ip] if ip < n_inj and inj_rounds[ip] < stop else stop

        # Lazily snapshotted per-station destination-half counts (the
        # queue only grows in a silent span, so counts never decrease).
        halves: dict[int, dict[int, int]] = {}

        def half_counts(s: int) -> dict[int, int]:
            counts = halves.get(s)
            if counts is None:
                counts = {}
                for packet in controllers[s].queue:
                    hb = packet.destination // half
                    counts[hb] = counts.get(hb, 0) + 1
                halves[s] = counts
            return counts

        # Absolute token state per touched pair: [pos, advancements,
        # phase_no]; all member replicas agree, so one state suffices.
        pstate: dict[int, list[int]] = {}
        arrivals: dict[int, list[int]] = {}  # station -> plan indices
        delta_stations: list[int] = []
        delta_values: list[int] = []
        delta_offsets: list[int] = [0]
        t = start
        cut = stop
        while t < stop:
            p = t % num_pairs
            members = pairs[p]
            state = pstate.get(p)
            if state is None:
                source = pair_replicas[p][0]
                state = [source.token_pos, source.advancements, source.phase_no]
                pstate[p] = state
            holder = members[state[0]]
            a, b = pair_blocks[p]
            counts = half_counts(holder)
            if counts.get(a) or counts.get(b):
                cut = t
                break
            if t == next_arrival:
                hi = offsets[t - plan_base + 1]
                # An arrival landing at the holder with an in-pair
                # destination makes this very round heard (eligibility
                # spans old and new packets): cut without absorbing.
                induced = False
                for j in range(ai, hi):
                    if sources[j] == holder:
                        hb = plan_dests[j] // half
                        if hb == a or hb == b:
                            induced = True
                            break
                if induced:
                    cut = t
                    break
                row_start = len(delta_stations)
                while ai < hi:
                    s = sources[ai]
                    counts = half_counts(s)
                    hb = plan_dests[ai] // half
                    counts[hb] = counts.get(hb, 0) + 1
                    arrivals.setdefault(s, []).append(ai)
                    for k in range(row_start, len(delta_stations)):
                        if delta_stations[k] == s:
                            delta_values[k] += 1
                            break
                    else:
                        delta_stations.append(s)
                        delta_values.append(1)
                    ai += 1
                ip += 1
                next_arrival = (
                    inj_rounds[ip] if ip < n_inj and inj_rounds[ip] < stop else stop
                )
            # Silent round: the active pair's token advances.
            pos = state[0] + 1
            if pos == len(members):
                pos = 0
            state[0] = pos
            adv = state[1] + 1
            if adv >= len(members):
                state[1] = 0
                state[2] += 1
            else:
                state[1] = adv
            delta_offsets.append(len(delta_stations))
            t += 1
        if cut == start:
            return None
        span = cut - start
        j0 = offsets[start - plan_base]

        def commit(packets: list) -> None:
            for s, entries in arrivals.items():
                push = controllers[s].queue.push
                for e in entries:
                    push(packets[e - j0])
            for p, state in pstate.items():
                members = pairs[p]
                pos = state[0]
                holder = members[pos]
                for replica in pair_replicas[p]:
                    replica.token_pos = pos
                    replica.advancements = state[1]
                    replica.phase_no = state[2]
                    replica.holder = holder

        return LoweredSegment(
            start=start,
            stop=cut,
            transmitters=np.full(span, -1, dtype=np.int64),
            delta_stations=np.asarray(delta_stations, dtype=np.int64),
            delta_values=np.asarray(delta_values, dtype=np.int64),
            delta_offsets=np.asarray(delta_offsets, dtype=np.int64),
            deliveries=[],
            commit=commit,
        )


@register_algorithm("k-clique")
class KClique(RoutingAlgorithm):
    """The k-Clique algorithm of Section 6.

    Parameters
    ----------
    n:
        Number of stations.
    k:
        Energy cap; the number of stations awake per round is at most
        twice the half-group size, which never exceeds ``k``.
    """

    name = "k-Clique"

    def __init__(self, n: int, k: int) -> None:
        super().__init__(n)
        if not 2 <= k < n:
            raise ValueError(f"energy cap k must satisfy 2 <= k < n, got k={k}, n={n}")
        self.k = k
        self.half = effective_half_group_size(n, k)
        self.pairs = clique_pairs(n, k)

    @property
    def num_pairs(self) -> int:
        """Number of half-group pairs (the schedule period)."""
        return len(self.pairs)

    def build_controllers(self) -> list[_KCliqueController]:
        controllers = [_KCliqueController(i, self.n, self.pairs) for i in range(self.n)]
        driver = _KCliqueBlockDriver(controllers, self.half)
        for ctrl in controllers:
            ctrl.block_driver = driver
        return controllers

    def properties(self) -> AlgorithmProperties:
        cap = max(len(pair) for pair in self.pairs)
        return AlgorithmProperties(
            name=self.name,
            energy_cap=cap,
            oblivious=True,
            direct=True,
            plain_packet=True,
        )

    def oblivious_schedule(self) -> PeriodicSchedule:
        return PeriodicSchedule(self.n, [list(pair) for pair in self.pairs])

    # -- analytical quantities used by tests and the analysis module ----------
    def stability_threshold(self) -> float:
        """``1/m`` where ``m`` is the number of pairs (Theorem 7)."""
        return 1.0 / self.num_pairs

    def latency_rate_threshold(self) -> float:
        """Rate below which the closed-form latency bound of Theorem 7 applies."""
        return 1.0 / (2 * self.num_pairs)

    def latency_bound(self, beta: float) -> float:
        """The latency bound ``8 (n^2/k)(1 + beta/(2k))`` of Theorem 7."""
        k = 2 * self.half
        return 8 * (self.n**2 / k) * (1 + beta / (2 * k))
