"""k-Subsets: energy-oblivious direct routing with maximum throughput (Section 6).

Fix an enumeration ``A_0, ..., A_{gamma-1}`` of all ``gamma = C(n, k)``
k-element subsets of the stations.  Round ``t`` belongs to *thread*
``t mod gamma``; during thread ``i`` exactly the stations of ``A_i`` are
switched on — a schedule that depends only on ``(n, k, t)``, so the
algorithm is k-energy-oblivious.  Each thread runs its own instance of the
Move-Big-To-Front protocol (MBTF, [17]) over the stations of ``A_i`` with
thread-local queues.

Time is grouped into *phases* of ``gamma`` rounds.  At the beginning of a
phase every station assigns the packets it received during earlier phases
to threads: a packet held at station ``v`` with destination ``w`` may only
go to a thread whose subset contains both ``v`` and ``w``, and the
assignment is kept as balanced as possible across those threads.  Because
the receiver ``w`` is awake in every round of every thread its packet is
assigned to, a heard packet is immediately delivered — the algorithm
routes directly.

The phase machine is globally identical across stations (phase boundaries
depend only on ``(gamma, t)``), so it lives in a shared
:class:`_KSubsetsClock` (a :class:`~repro.core.schedule.WakeOracle`): an
explicit idempotent ``tick(t)`` drives every station's phase-boundary
packet reassignment once per phase, after which ``wakes(t)`` is a pure
subset-membership query and the clock answers the whole awake set as
``subsets[t % gamma]`` — the *ticked* tier of the kernel engine's
capability negotiation, leaving no algorithm on the per-station
``wakes()`` fallback.

Paper bounds (Table 1 / Theorem 8): stable at injection rate exactly
``k(k-1)/(n(n-1))`` with at most ``2 C(n,k) (n^2 + beta)`` queued packets;
by Theorem 9 no k-energy-oblivious direct algorithm is stable above that
rate.
"""

from __future__ import annotations

import itertools
import math
from bisect import bisect_left
from collections import deque

import numpy as np

from ..channel.feedback import ChannelOutcome, Feedback
from ..channel.message import Message
from ..channel.packet import Packet
from ..channel.station import StationController
from ..core.algorithm import AlgorithmProperties, RoutingAlgorithm
from ..core.blocks import LoweredSegment, RoundBlockDriver
from ..core.registry import register_algorithm
from ..core.schedule import PeriodicSchedule, WakeOracle, rounds_in_congruence_class
from ..protocols.token_ring import MoveBigToFrontReplica

__all__ = ["KSubsets"]

#: Refuse to enumerate more subsets than this; the algorithm is meant for
#: small systems (its latency is at least C(n, k) by design).
MAX_THREADS = 20000


class _KSubsetsClock(WakeOracle):
    """Shared phase clock of one k-Subsets execution.

    The only per-round state transition of k-Subsets is the
    phase-boundary packet reassignment, triggered by the globally known
    quantity ``t // gamma``; :meth:`tick` drives each station's (private)
    reassignment exactly when its stateful ``wakes`` used to.  Awake sets
    are the enumerated subsets themselves — ``itertools.combinations``
    over a sorted range yields ascending tuples, so
    :meth:`awake_stations` is a single list lookup.
    """

    def __init__(self, n: int, subsets: list[tuple[int, ...]]) -> None:
        super().__init__(n)
        self.subsets = subsets
        self.gamma = len(subsets)
        self._last_phase = -1

    def tick(self, round_no: int) -> None:
        phase = round_no // self.gamma
        if phase <= self._last_phase:
            return
        self._last_phase = phase
        for ctrl in self.controllers:
            ctrl._process_phase_boundary(round_no)

    def awake_stations(self, round_no: int) -> tuple[int, ...]:
        return self.subsets[round_no % self.gamma]

    # -- quiescent-span protocol -----------------------------------------
    def advance_span(self, start: int, stop: int) -> None:
        # With every queue (and every ``_unassigned`` buffer) empty, the
        # phase-boundary reassignments inside the span are no-ops, so the
        # clock jumps straight to the last ticked phase.  Controllers'
        # private ``_last_phase_processed`` may lag; the guard in
        # ``_process_phase_boundary`` makes that harmless (the skipped
        # boundaries had nothing to reassign).
        if stop > start:
            phase = (stop - 1) // self.gamma
            if phase > self._last_phase:
                self._last_phase = phase

    def quiescent_awake_counts(self, start: int, stop: int) -> np.ndarray:
        # Every round wakes exactly one k-subset.
        return np.full(stop - start, len(self.subsets[0]), dtype=np.int64)


class _KSubsetsController(StationController):
    """Per-station controller of k-Subsets.

    The phase clock is shared (:class:`_KSubsetsClock`); each station
    keeps only its private thread queues and MBTF replicas.
    """

    # Thread queues shrink only when an own transmission is confirmed
    # heard; phase-boundary reassignment moves packets between internal
    # queues without changing the total, so heard-only polling is safe.
    queue_changes_on_heard_only = True

    ticked_wakes = True

    # Holding no packets the thread's MBTF holder withholds, a silent
    # round only advances that thread's token, and phase-boundary
    # reassignment of an empty queue is a no-op: quiescent spans
    # fast-forward with one congruence count per thread membership.
    silence_invariant = True

    def __init__(
        self,
        station_id: int,
        n: int,
        k: int,
        subsets: list[tuple[int, ...]],
        clock: _KSubsetsClock,
    ) -> None:
        super().__init__(station_id, n)
        self.k = k
        self.subsets = subsets
        self.gamma = len(subsets)
        self.wake_oracle = clock
        self.my_threads = [
            i for i, members in enumerate(subsets) if station_id in members
        ]
        self._my_thread_set = set(self.my_threads)
        self.replicas = {
            i: MoveBigToFrontReplica(list(subsets[i])) for i in self.my_threads
        }
        self.thread_queues: dict[int, deque[Packet]] = {
            i: deque() for i in self.my_threads
        }
        self._unassigned: deque[Packet] = deque()
        self._assign_counts: dict[tuple[int, int], int] = {}
        self._threads_for_dest: dict[int, list[int]] = {}
        self._last_phase_processed = -1
        self._in_flight: tuple[int, Packet] | None = None

    # -- phase handling -------------------------------------------------------
    def _threads_containing(self, destination: int) -> list[int]:
        cached = self._threads_for_dest.get(destination)
        if cached is None:
            cached = [
                i for i in self.my_threads if destination in self.subsets[i]
            ]
            self._threads_for_dest[destination] = cached
        return cached

    def _process_phase_boundary(self, round_no: int) -> None:
        phase = round_no // self.gamma
        if phase <= self._last_phase_processed:
            return
        self._last_phase_processed = phase
        phase_start = phase * self.gamma
        # Assign every packet injected before this phase to a thread,
        # keeping the per-(destination, thread) allocation balanced.
        still_waiting: deque[Packet] = deque()
        while self._unassigned:
            packet = self._unassigned.popleft()
            if packet.injected_at >= phase_start:
                still_waiting.append(packet)
                continue
            threads = self._threads_containing(packet.destination)
            best = min(
                threads,
                key=lambda i: (self._assign_counts.get((packet.destination, i), 0), i),
            )
            self._assign_counts[(packet.destination, best)] = (
                self._assign_counts.get((packet.destination, best), 0) + 1
            )
            self.thread_queues[best].append(packet)
        self._unassigned = still_waiting

    # -- StationController interface -------------------------------------------
    def tick(self, round_no: int) -> None:
        self.wake_oracle.tick(round_no)

    def wakes(self, round_no: int) -> bool:
        # Self-tick so the reference engine's per-station loop drives the
        # same phase transitions; after the tick this is a pure query.
        self.wake_oracle.tick(round_no)
        return (round_no % self.gamma) in self._my_thread_set

    def act(self, round_no: int) -> Message | None:
        thread = round_no % self.gamma
        if thread not in self._my_thread_set:
            return None
        replica = self.replicas[thread]
        if replica.holder != self.station_id:
            return None
        queue = self.thread_queues[thread]
        if not queue:
            return None
        packet = queue[0]
        control = {}
        if len(queue) >= self.k:
            control[MoveBigToFrontReplica.BIG_FLAG] = True
        self._in_flight = (thread, packet)
        return Message(sender=self.station_id, packet=packet, control=control)

    def on_feedback(self, round_no: int, feedback: Feedback) -> None:
        thread = round_no % self.gamma
        if feedback.heard and feedback.message is not None:
            if (
                feedback.message.sender == self.station_id
                and self._in_flight is not None
            ):
                in_thread, packet = self._in_flight
                queue = self.thread_queues.get(in_thread)
                if queue and queue[0] is packet:
                    queue.popleft()
        self._in_flight = None
        replica = self.replicas.get(thread)
        if replica is not None:
            replica.observe(feedback.outcome, feedback.message)

    def advance_silent_span(self, start: int, stop: int) -> None:
        # This station observes exactly the silent rounds of its own
        # threads (thread ``i`` runs in rounds t % gamma == i); each such
        # round advances that thread's MBTF token.
        for thread in self.my_threads:
            rounds = rounds_in_congruence_class(start, stop, self.gamma, thread)
            if rounds:
                self.replicas[thread].advance_silence(rounds)

    def on_inject(self, round_no: int, packet: Packet) -> None:
        self._unassigned.append(packet)

    def queued_packets(self) -> int:
        return len(self._unassigned) + sum(
            len(q) for q in self.thread_queues.values()
        )


class _KSubsetsBlockDriver(RoundBlockDriver):
    """Compiled-round driver for k-Subsets (one shared instance per run).

    Thread ``t % gamma`` runs in round ``t``; only its MBTF holder may
    transmit.  Every awake member observes the round's outcome on its
    replica of that thread (silence advances the token, a heard big-bit
    reorders the list); a heard own transmission pops the sender's thread
    queue head.  Phase-boundary reassignment stays with the shared clock
    (the engine ticks it before asking for the transmitter), so the
    driver reads post-reassignment state.
    """

    def __init__(self, controllers: list[_KSubsetsController]) -> None:
        super().__init__(len(controllers))
        self._controllers = controllers
        self._subsets = controllers[0].subsets
        self._gamma = controllers[0].gamma
        # Per-thread member replica lists, resolved lazily: gamma can be
        # thousands of threads while a short run touches only a few.
        self._thread_replicas: list[list[MoveBigToFrontReplica] | None] = (
            [None] * self._gamma
        )

    def _replicas_for(self, thread: int) -> list[MoveBigToFrontReplica]:
        replicas = self._thread_replicas[thread]
        if replicas is None:
            replicas = [
                self._controllers[i].replicas[thread]
                for i in self._subsets[thread]
            ]
            self._thread_replicas[thread] = replicas
        return replicas

    def transmitter(self, t: int) -> int:
        return self._replicas_for(t % self._gamma)[0].holder

    def silent_round(self, t: int) -> None:
        for replica in self._replicas_for(t % self._gamma):
            replica.observe(ChannelOutcome.SILENCE, None)

    def heard_round(self, t: int, sender: int, message: Message) -> tuple[int, ...]:
        sender_ctrl = self._controllers[sender]
        if sender_ctrl._in_flight is not None:
            in_thread, packet = sender_ctrl._in_flight
            queue = sender_ctrl.thread_queues.get(in_thread)
            if queue and queue[0] is packet:
                queue.popleft()
            sender_ctrl._in_flight = None
        for replica in self._replicas_for(t % self._gamma):
            replica.observe(ChannelOutcome.HEARD, message)
        return (sender,)

    def lower_segment(self, start: int, stop: int, plan) -> LoweredSegment | None:
        """Silent-span lowering within one phase of the thread rotation.

        Mid-phase, arrivals only accumulate in ``_unassigned`` (they
        join thread queues at the next phase boundary's reassignment),
        so a span is silent exactly while each visited thread's MBTF
        holder has an empty thread queue — a pure lookup per round.  The
        driver absorbs arrivals as ``+1`` deltas and cuts at the first
        round whose holder could transmit, or at the phase boundary
        (where reassignment, run by the shared clock tick on the
        per-round path, changes the thread queues).
        """
        controllers = self._controllers
        gamma = self._gamma
        # The engine probes before its per-round tick: bring the phase
        # clock (idempotently) up to date so thread queues reflect any
        # reassignment due exactly at ``start``.
        controllers[0].wake_oracle.tick(start)
        hard_stop = (start // gamma + 1) * gamma
        if hard_stop < stop:
            stop = hard_stop

        offsets = plan.offsets
        plan_base = plan.start
        sources = plan.sources
        ai = offsets[start - plan_base]
        inj_rounds = plan.injection_rounds()
        ip = bisect_left(inj_rounds, start)
        n_inj = len(inj_rounds)
        next_arrival = inj_rounds[ip] if ip < n_inj and inj_rounds[ip] < stop else stop

        replicas_for = self._replicas_for
        advanced: list[int] = []  # threads whose token moved (once each)
        arrivals: dict[int, list[int]] = {}  # station -> plan indices
        delta_stations: list[int] = []
        delta_values: list[int] = []
        delta_offsets: list[int] = [0]
        t = start
        cut = stop
        while t < stop:
            thread = t % gamma
            holder = replicas_for(thread)[0].holder
            queue = controllers[holder].thread_queues.get(thread)
            if queue:
                cut = t
                break
            if t == next_arrival:
                row_start = len(delta_stations)
                hi = offsets[t - plan_base + 1]
                while ai < hi:
                    s = sources[ai]
                    arrivals.setdefault(s, []).append(ai)
                    for k in range(row_start, len(delta_stations)):
                        if delta_stations[k] == s:
                            delta_values[k] += 1
                            break
                    else:
                        delta_stations.append(s)
                        delta_values.append(1)
                    ai += 1
                ip += 1
                next_arrival = (
                    inj_rounds[ip] if ip < n_inj and inj_rounds[ip] < stop else stop
                )
            # Silent round: the visited thread's MBTF token advances
            # (each thread runs at most once per phase, so once in-span).
            advanced.append(thread)
            delta_offsets.append(len(delta_stations))
            t += 1
        if cut == start:
            return None
        span = cut - start
        j0 = offsets[start - plan_base]
        subset_size = len(self._subsets[0])

        def commit(packets: list) -> None:
            for s, entries in arrivals.items():
                unassigned = controllers[s]._unassigned
                for e in entries:
                    unassigned.append(packets[e - j0])
            for thread in advanced:
                for replica in replicas_for(thread):
                    replica.advance_silence(1)

        return LoweredSegment(
            start=start,
            stop=cut,
            transmitters=np.full(span, -1, dtype=np.int64),
            delta_stations=np.asarray(delta_stations, dtype=np.int64),
            delta_values=np.asarray(delta_values, dtype=np.int64),
            delta_offsets=np.asarray(delta_offsets, dtype=np.int64),
            deliveries=[],
            commit=commit,
            awake_counts=np.full(span, subset_size, dtype=np.int64),
        )


@register_algorithm("k-subsets")
class KSubsets(RoutingAlgorithm):
    """The k-Subsets algorithm of Section 6.

    Parameters
    ----------
    n:
        Number of stations.
    k:
        Energy cap / subset size, ``2 <= k < n``.
    """

    name = "k-Subsets"

    def __init__(self, n: int, k: int) -> None:
        super().__init__(n)
        if not 2 <= k < n:
            raise ValueError(f"subset size k must satisfy 2 <= k < n, got k={k}, n={n}")
        gamma = math.comb(n, k)
        if gamma > MAX_THREADS:
            raise ValueError(
                f"C({n}, {k}) = {gamma} threads is too many to simulate; "
                f"k-Subsets targets small systems (limit {MAX_THREADS})"
            )
        self.k = k
        self.subsets = list(itertools.combinations(range(n), k))

    @property
    def gamma(self) -> int:
        """Number of threads, ``C(n, k)``."""
        return len(self.subsets)

    def build_controllers(self) -> list[_KSubsetsController]:
        clock = _KSubsetsClock(self.n, self.subsets)
        controllers = [
            _KSubsetsController(i, self.n, self.k, self.subsets, clock)
            for i in range(self.n)
        ]
        clock.attach(controllers)
        driver = _KSubsetsBlockDriver(controllers)
        for ctrl in controllers:
            ctrl.block_driver = driver
        return controllers

    def properties(self) -> AlgorithmProperties:
        return AlgorithmProperties(
            name=self.name,
            energy_cap=self.k,
            oblivious=True,
            direct=True,
            plain_packet=False,
        )

    def oblivious_schedule(self) -> PeriodicSchedule:
        return PeriodicSchedule(self.n, [list(s) for s in self.subsets])

    # -- analytical quantities used by tests and the analysis module -----------
    def stability_threshold(self) -> float:
        """The throughput ``k(k-1)/(n(n-1))`` of Theorem 8."""
        return (self.k * (self.k - 1)) / (self.n * (self.n - 1))

    def queue_bound(self, beta: float) -> float:
        """The queue bound ``2 C(n,k) (n^2 + beta)`` of Theorem 8."""
        return 2 * self.gamma * (self.n**2 + beta)
