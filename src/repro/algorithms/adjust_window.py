"""Adjust-Window: universal plain-packet routing with energy cap 2 (Section 4.2).

The execution is organised into *time windows* whose size ``L`` doubles
whenever a window fails to deliver all packets that were pending at its
start.  Every window is split into three stages:

* **Gossip** (``n^2`` phases of ``2 + 3*lg L`` rounds): for every ordered
  pair ``(i, j)`` station ``j`` listens for one phase while station ``i``
  — if it is *large*, i.e. holds at least ``4 n lg L`` packets — conveys,
  by *coded transfer* (a packet transmission encodes a 1-bit, a silent
  round a 0-bit), whether its queue exceeds ``L`` plus three numbers: its
  queue size, the number of its packets destined to ``j`` and the number
  destined to stations smaller than ``j``.  Packets transmitted this way
  that are not addressed to ``j`` are adopted by ``j`` (relaying).
* **Main** (the remaining rounds): from the gossiped numbers every
  station locally computes the same global transmission schedule — large
  senders in name order, each sender's packets ordered by destination —
  and wakes exactly in the rounds in which it transmits or receives.  If
  some station reported a queue larger than ``L`` the whole stage is
  dedicated to the smallest-named such station.
* **Auxiliary** (``8 n^3 lg L`` rounds): a round-robin sweep over ordered
  pairs ``(i, j)`` in which ``i`` sends ``j`` one of the packets it holds
  for ``j``; this delivers the packets of *small* stations and the
  packets relayed during Gossip.

Messages never carry control bits (plain-packet discipline); at most one
transmitter and one listener are awake per round, so the energy cap is 2.

The window state machine (start round, current ``L``, derived
:class:`WindowLayout`) is identical at every station — the doubling
decision is computed from gossiped numbers every station learns
identically — so it lives in one shared :class:`_AdjustWindowClock` (a
:class:`~repro.core.schedule.WakeOracle`): ``tick(t)`` advances windows,
``wakes(t)`` is a pure query afterwards, and the clock answers whole
awake sets batch-wise from the stations' Gossip flags, Main-stage slot
plans and Auxiliary pair sweep.

Paper bound (Theorem 4): universal — for every injection rate ``rho < 1``
the latency is O((n^3 log^2 n + beta) / (1 - rho)) for sufficiently large
``n``.  At small ``n`` the additive ``n^3 log L`` stage lengths dominate
the constant in front of the bound; see EXPERIMENTS.md.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..channel.feedback import Feedback
from ..channel.message import Message
from ..channel.packet import Packet
from ..core.algorithm import AlgorithmProperties, RoutingAlgorithm
from ..core.controller import TickedQueueingController
from ..core.registry import register_algorithm
from ..core.schedule import WakeOracle

__all__ = ["AdjustWindow", "WindowLayout", "initial_window_size", "lg"]


def lg(x: int) -> int:
    """The paper's ``lg x = ceil(log2(x + 1))``."""
    if x < 0:
        raise ValueError("lg is defined for non-negative integers")
    return math.ceil(math.log2(x + 1)) if x > 0 else 1


@dataclass(frozen=True, slots=True)
class WindowLayout:
    """Derived stage boundaries of a window of size ``L`` for ``n`` stations."""

    n: int
    L: int
    lgL: int
    phase_len: int
    gossip_len: int
    aux_len: int
    main_len: int
    small_threshold: int

    @classmethod
    def for_window(cls, n: int, L: int) -> "WindowLayout":
        lgL = lg(L)
        phase_len = 2 + 3 * lgL
        gossip_len = n * n * phase_len
        aux_len = 8 * n**3 * lgL
        main_len = max(0, L - gossip_len - aux_len)
        return cls(
            n=n,
            L=L,
            lgL=lgL,
            phase_len=phase_len,
            gossip_len=gossip_len,
            aux_len=aux_len,
            main_len=main_len,
            small_threshold=4 * n * lgL,
        )

    # Stage boundaries relative to the window start.
    @property
    def main_start(self) -> int:
        return self.gossip_len

    @property
    def aux_start(self) -> int:
        return self.gossip_len + self.main_len

    def stage_of(self, rel: int) -> str:
        """Which stage the window-relative round ``rel`` belongs to."""
        if rel < self.gossip_len:
            return "gossip"
        if rel < self.aux_start:
            return "main"
        return "aux"


def initial_window_size(n: int) -> int:
    """Smallest power of two ``L`` whose Main stage covers at least half the window."""
    L = 2
    while True:
        layout = WindowLayout.for_window(n, L)
        if layout.main_len >= L // 2:
            return L
        L *= 2


@dataclass(slots=True)
class _GossipRecord:
    """What station ``j`` learned about station ``i`` in the (i, j) gossip phase."""

    large: bool = False
    over_l: bool = False
    bits: list[int] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.bits is None:
            self.bits = []

    def numbers(self, lgL: int) -> tuple[int, int, int]:
        """Decode the three coded-transfer numbers (size, to-me, below-me)."""
        padded = list(self.bits) + [0] * (3 * lgL - len(self.bits))
        values = []
        for block in range(3):
            value = 0
            for bit in padded[block * lgL : (block + 1) * lgL]:
                value = (value << 1) | bit
            values.append(value)
        return values[0], values[1], values[2]


class _AdjustWindowClock(WakeOracle):
    """Shared window state machine of one Adjust-Window execution."""

    def __init__(self, n: int, initial_l: int) -> None:
        super().__init__(n)
        self.window_start = 0
        self.L = initial_l
        self.layout = WindowLayout.for_window(n, initial_l)
        self._last_ticked = -1
        # Main-stage slot plan: [(start, end, station), ...] collected from
        # the controllers' locally-computed (identical) global schedule.
        self._main_intervals: list[tuple[int, int, int]] | None = None

    def tick(self, round_no: int) -> None:
        if round_no <= self._last_ticked:
            return
        self._last_ticked = round_no
        while round_no - self.window_start >= self.L:
            # Every station derived the same doubling decision from the
            # gossiped numbers; force the (idempotent) plan computation in
            # case this run never queried a Main-stage round.
            for ctrl in self.controllers:
                ctrl._build_main_plan()
            double = self.controllers[0]._double_next
            self.window_start += self.L
            if double:
                self.L *= 2
            self.layout = WindowLayout.for_window(self.n, self.L)
            self._main_intervals = None
            for ctrl in self.controllers:
                ctrl._begin_window_local()

    # -- batch awake-set query -------------------------------------------------
    def _collect_main_intervals(self) -> list[tuple[int, int, int]]:
        intervals: list[tuple[int, int, int]] = []
        for station, ctrl in enumerate(self.controllers):
            ctrl._build_main_plan()
            start, end = ctrl._my_send_slots
            if end > start:
                intervals.append((start, end, station))
            for start, end in ctrl._my_recv_slots:
                intervals.append((start, end, station))
        self._main_intervals = intervals
        return intervals

    def awake_stations(self, round_no: int) -> tuple[int, ...]:
        layout = self.layout
        rel = round_no - self.window_start
        stage = layout.stage_of(rel)
        controllers = self.controllers
        if stage == "gossip":
            phase = rel // layout.phase_len
            i, j = phase // self.n, phase % self.n
            if i == j:
                return ()
            if controllers[i]._i_am_large:
                return (i, j) if i < j else (j, i)
            return (j,)
        if stage == "main":
            intervals = self._main_intervals
            if intervals is None:
                intervals = self._collect_main_intervals()
            slot = rel - layout.main_start
            awake = {s for start, end, s in intervals if start <= slot < end}
            return tuple(sorted(awake))
        # aux
        offset = rel - layout.aux_start
        q = offset % (self.n * self.n)
        i, j = q // self.n, q % self.n
        if i == j:
            return ()
        if controllers[i].queue.peek_any_for(j) is not None:
            return (i, j) if i < j else (j, i)
        return (j,)


class _AdjustWindowController(TickedQueueingController):
    """Per-station controller of Adjust-Window.

    Quiescence holdout: ``silence_invariant`` stays False because silent
    rounds carry information here — a Gossip listener notes a 0-bit into
    the :class:`_GossipRecord` of any station that announced itself large
    earlier in the window, and the Main-stage wake pattern follows from
    window-start queue snapshots.  A span whose queues drained to zero
    mid-window therefore still mutates history-dependent state on
    silence, which no round-window arithmetic can reproduce.
    """

    def __init__(self, station_id: int, n: int, clock: _AdjustWindowClock) -> None:
        super().__init__(station_id, n, clock)
        # Snapshot of this station's own queue at the window start.
        self._snapshot_size = 0
        self._snapshot_for: list[int] = [0] * n
        self._i_am_large = False
        # Gossip knowledge about the other stations.
        self._records: dict[int, _GossipRecord] = {}
        # Derived Main-stage plan (filled lazily right after Gossip ends).
        self._main_plan_ready = False
        self._double_next = False
        self._my_send_slots: tuple[int, int] = (0, 0)  # [start, end) relative to main
        self._my_send_sequence: list[int] = []  # destination per send slot
        self._my_recv_slots: list[tuple[int, int]] = []  # [(start, end)) relative to main
        self._begin_window_local()

    @property
    def clock(self) -> _AdjustWindowClock:
        """The shared window clock (one source of truth: ``wake_oracle``)."""
        return self.wake_oracle

    # -- window bookkeeping --------------------------------------------------------
    def _begin_window_local(self) -> None:
        """Clock callback at a window boundary (runs for every station)."""
        self.queue.age_all()
        self._snapshot_size = self.queue.old_count
        self._snapshot_for = [self.queue.count_old_for(d) for d in range(self.n)]
        self._i_am_large = self._snapshot_size >= self.clock.layout.small_threshold
        self._records = {}
        self._main_plan_ready = False
        self._double_next = False
        self._my_send_slots = (0, 0)
        self._my_send_sequence = []
        self._my_recv_slots = []

    def _rel(self, round_no: int) -> int:
        return round_no - self.clock.window_start

    # -- snapshot helpers -----------------------------------------------------------
    def _capped_size(self) -> int:
        return min(self._snapshot_size, self.clock.L)

    def _capped_for(self, dest: int) -> int:
        return min(self._snapshot_for[dest], self.clock.L)

    def _capped_below(self, dest: int) -> int:
        return min(sum(self._snapshot_for[:dest]), self.clock.L)

    # -- gossip ------------------------------------------------------------------------
    def _gossip_phase(self, rel: int) -> tuple[int, int, int]:
        """(i, j, slot) of the gossip phase containing window-relative round ``rel``."""
        phase = rel // self.clock.layout.phase_len
        slot = rel % self.clock.layout.phase_len
        return phase // self.n, phase % self.n, slot

    def _gossip_bit(self, j: int, slot: int) -> int:
        """The coded-transfer bit this (large) station sends in ``slot`` of phase (me, j)."""
        bit_index = slot - 2
        numbers = (self._capped_size(), self._capped_for(j), self._capped_below(j))
        lgL = self.clock.layout.lgL
        block, offset = divmod(bit_index, lgL)
        value = numbers[block]
        shift = lgL - 1 - offset
        return (value >> shift) & 1

    def _coded_transfer_packet(self, j: int) -> Packet | None:
        """The packet used to signal a 1-bit to ``j`` (prefer packets for ``j``)."""
        packet = self.queue.peek_old_for(j)
        if packet is not None:
            return packet
        packet = self.queue.peek_old()
        if packet is not None:
            return packet
        return self.queue.peek_any()

    # -- main-stage plan ------------------------------------------------------------------
    def _record_for(self, station: int) -> tuple[bool, bool, int, int, int]:
        """(large, over_l, size, to_me, below_me) as learned about ``station``."""
        if station == self.station_id:
            return (
                self._i_am_large,
                self._snapshot_size > self.clock.L,
                self._capped_size(),
                0,
                0,
            )
        record = self._records.get(station)
        if record is None or not record.large:
            return (False, False, 0, 0, 0)
        size, to_me, below_me = record.numbers(self.clock.layout.lgL)
        return (True, record.over_l, size, to_me, below_me)

    def _build_main_plan(self) -> None:
        if self._main_plan_ready:
            return
        self._main_plan_ready = True
        info = {s: self._record_for(s) for s in range(self.n)}
        large = [s for s in range(self.n) if info[s][0]]
        over_l = [s for s in range(self.n) if info[s][0] and info[s][1]]
        reported_total = sum(info[s][2] for s in large)
        layout = self.clock.layout
        self._double_next = bool(over_l) or reported_total > layout.main_len

        lm = layout.main_len
        if over_l:
            dedicated = min(over_l)
            if dedicated == self.station_id:
                self._my_send_slots = (0, lm)
                self._my_send_sequence = self._destination_sequence(limit=lm)
            else:
                _, _, _, to_me, below_me = info[dedicated]
                start = min(below_me, lm)
                end = min(below_me + to_me, lm)
                if to_me >= self.clock.L:
                    end = lm
                if end > start:
                    self._my_recv_slots = [(start, end)]
            return

        # Regular schedule: large senders in name order, contiguous blocks.
        block_start: dict[int, int] = {}
        cursor = 0
        for s in large:
            block_start[s] = cursor
            cursor += info[s][2]
        if self.station_id in block_start and self._i_am_large:
            start = min(block_start[self.station_id], lm)
            end = min(block_start[self.station_id] + info[self.station_id][2], lm)
            self._my_send_slots = (start, end)
            self._my_send_sequence = self._destination_sequence(limit=end - start)
        recv: list[tuple[int, int]] = []
        for s in large:
            if s == self.station_id:
                continue
            _, _, _, to_me, below_me = info[s]
            if to_me <= 0:
                continue
            start = min(block_start[s] + below_me, lm)
            end = min(block_start[s] + below_me + to_me, lm)
            if end > start:
                recv.append((start, end))
        self._my_recv_slots = recv

    def _destination_sequence(self, limit: int) -> list[int]:
        """Per-slot destination plan: snapshot packets ordered by destination."""
        sequence: list[int] = []
        for dest in range(self.n):
            sequence.extend([dest] * self._snapshot_for[dest])
            if len(sequence) >= limit:
                break
        return sequence[:limit]

    # -- auxiliary stage -------------------------------------------------------------------
    def _aux_pair(self, rel: int) -> tuple[int, int]:
        offset = rel - self.clock.layout.aux_start
        q = offset % (self.n * self.n)
        return q // self.n, q % self.n

    # -- StationController interface ----------------------------------------------------------
    def wakes(self, round_no: int) -> bool:
        clock = self.clock
        clock.tick(round_no)
        rel = self._rel(round_no)
        stage = clock.layout.stage_of(rel)
        if stage == "gossip":
            i, j, _ = self._gossip_phase(rel)
            if i == j:
                return False
            if self.station_id == j:
                return True
            return self.station_id == i and self._i_am_large
        if stage == "main":
            self._build_main_plan()
            slot = rel - clock.layout.main_start
            send_start, send_end = self._my_send_slots
            if send_start <= slot < send_end:
                return True
            return any(start <= slot < end for start, end in self._my_recv_slots)
        # aux
        i, j = self._aux_pair(rel)
        if i == j:
            return False
        if self.station_id == j:
            return True
        return self.station_id == i and self.queue.peek_any_for(j) is not None

    def act(self, round_no: int) -> Message | None:
        rel = self._rel(round_no)
        stage = self.clock.layout.stage_of(rel)
        if stage == "gossip":
            return self._act_gossip(rel)
        if stage == "main":
            return self._act_main(rel)
        return self._act_aux(rel)

    def _act_gossip(self, rel: int) -> Message | None:
        i, j, slot = self._gossip_phase(rel)
        if self.station_id != i or i == j or not self._i_am_large:
            return None
        send = False
        if slot == 0:
            send = True  # 'I am large'
        elif slot == 1:
            send = self._snapshot_size > self.clock.L
        else:
            send = self._gossip_bit(j, slot) == 1
        if not send:
            return None
        packet = self._coded_transfer_packet(j)
        if packet is None:
            return None
        return self.transmit(packet, intended_receiver=j)

    def _act_main(self, rel: int) -> Message | None:
        self._build_main_plan()
        slot = rel - self.clock.layout.main_start
        send_start, send_end = self._my_send_slots
        if not send_start <= slot < send_end:
            return None
        index = slot - send_start
        if index >= len(self._my_send_sequence):
            # No planned receiver is listening in this slot; transmitting
            # would risk losing the packet, so stay silent.
            return None
        planned_dest = self._my_send_sequence[index]
        packet = self.queue.peek_old_for(planned_dest)
        if packet is None:
            # The planned packet was already consumed during Gossip; send
            # any old packet instead — the listening station adopts it.
            packet = self.queue.peek_old()
        if packet is None:
            return None
        return self.transmit(packet, intended_receiver=planned_dest)

    def _act_aux(self, rel: int) -> Message | None:
        i, j = self._aux_pair(rel)
        if self.station_id != i or i == j:
            return None
        packet = self.queue.peek_any_for(j)
        if packet is None:
            return None
        return self.transmit(packet, intended_receiver=j)

    def on_heard(self, round_no: int, message: Message, feedback: Feedback) -> None:
        rel = self._rel(round_no)
        stage = self.clock.layout.stage_of(rel)
        packet = message.packet
        if stage == "gossip":
            i, j, slot = self._gossip_phase(rel)
            if self.station_id == j and message.sender == i:
                record = self._records.setdefault(i, _GossipRecord())
                if slot == 0:
                    record.large = True
                elif slot == 1:
                    record.over_l = True
                else:
                    self._note_bit(record, slot, 1)
                if packet is not None and packet.destination != self.station_id:
                    self.adopt(packet)
            return
        # Main or Auxiliary: a listening station adopts packets not meant for it.
        if (
            packet is not None
            and message.sender != self.station_id
            and packet.destination != self.station_id
            and message.intended_receiver == self.station_id
        ):
            self.adopt(packet)

    def on_silence(self, round_no: int) -> None:
        rel = self._rel(round_no)
        if self.clock.layout.stage_of(rel) != "gossip":
            return
        i, j, slot = self._gossip_phase(rel)
        if self.station_id == j and i != j and slot >= 2:
            record = self._records.get(i)
            if record is not None and record.large:
                self._note_bit(record, slot, 0)

    def _note_bit(self, record: _GossipRecord, slot: int, bit: int) -> None:
        bit_index = slot - 2
        while len(record.bits) < bit_index:
            record.bits.append(0)
        if len(record.bits) == bit_index:
            record.bits.append(bit)
        else:
            record.bits[bit_index] = bit


@register_algorithm("adjust-window")
class AdjustWindow(RoutingAlgorithm):
    """The Adjust-Window algorithm of Section 4.2 (plain-packet, cap 2, universal).

    Parameters
    ----------
    n:
        Number of stations.
    initial_window:
        Optional override of the initial window size (must be large enough
        for the Gossip and Auxiliary stages to fit); defaults to the
        paper's choice — the smallest window whose Main stage covers at
        least half of it.
    """

    name = "Adjust-Window"

    def __init__(self, n: int, initial_window: int | None = None) -> None:
        super().__init__(n)
        default = initial_window_size(n)
        if initial_window is None:
            self.initial_window = default
        else:
            layout = WindowLayout.for_window(n, initial_window)
            if layout.main_len <= 0:
                raise ValueError(
                    f"initial_window={initial_window} leaves no room for a Main stage "
                    f"(needs at least {default})"
                )
            self.initial_window = initial_window

    def build_controllers(self) -> list[_AdjustWindowController]:
        clock = _AdjustWindowClock(self.n, self.initial_window)
        controllers = [
            _AdjustWindowController(i, self.n, clock) for i in range(self.n)
        ]
        clock.attach(controllers)
        return controllers

    def properties(self) -> AlgorithmProperties:
        return AlgorithmProperties(
            name=self.name,
            energy_cap=2,
            oblivious=False,
            direct=False,
            plain_packet=True,
        )

    # -- analytical quantities used by tests and the analysis module -----------------
    def latency_bound(self, rho: float, beta: float) -> float:
        """The asymptotic latency bound ``(18 n^3 log^2 n + 2 beta)/(1 - rho)``."""
        if rho >= 1:
            return float("inf")
        log_n = math.log2(self.n) if self.n > 1 else 1.0
        return (18 * self.n**3 * log_n**2 + 2 * beta) / (1 - rho)
