"""Count-Hop: universal direct routing with control bits (Section 4.1).

One dedicated station (we use station 0) acts as the *coordinator*; every
other station is a *worker*.  An execution is structured into phases,
each phase into ``n`` stages — one per receiving station ``v`` — and each
stage into three substages:

1. **Report** (``n`` rounds): in round ``r`` station ``r`` (if it is
   neither ``v`` nor the coordinator and has old packets for ``v``)
   transmits a light message carrying the number of its old packets
   destined to ``v``; the coordinator listens throughout.
2. **Assign** (``n`` rounds): in round ``r`` the coordinator transmits a
   light message to station ``r`` carrying (a) the offset of ``r``'s
   transmission slot in the next substage and (b) the stage's total
   packet count, so every station — including ``v`` — knows when the
   stage ends.
3. **Deliver** (``total`` rounds): station ``v`` is switched on for the
   whole substage; the coordinator (first) and then the workers, in name
   order, transmit their old packets destined to ``v`` in consecutive
   slots.  Each heard packet is immediately consumed by ``v``: the
   algorithm routes directly.

Only the coordinator plus at most one other station are ever switched on
simultaneously, so the energy cap is 2.  Packets transmitted in a phase
are *old* — injected in a previous phase; at the end of each phase all
queued packets become old.  The first phase consists of ``n`` rounds with
every station switched off.

The stage/substage state machine is identical at every station, so it
lives in a single shared :class:`_CountHopClock` (a
:class:`~repro.core.schedule.WakeOracle`): an explicit ``tick(t)``
advances the stage, per-station ``wakes(t)`` is a pure query afterwards,
and the clock can answer the whole awake set at once — which is how the
kernel engine runs Count-Hop without ``n`` per-station wake-up calls.

Paper bound (Theorem 3): stable for every injection rate ``rho < 1`` with
latency at most ``2 (n^2 + beta) / (1 - rho)``.
"""

from __future__ import annotations

from ..channel.feedback import Feedback
from ..channel.message import Message
from ..core.algorithm import AlgorithmProperties, RoutingAlgorithm
from ..core.blocks import RoundBlockDriver
from ..core.controller import TickedQueueingController
from ..core.registry import register_algorithm
from ..core.schedule import WakeOracle

__all__ = ["CountHop"]

COORDINATOR = 0


class _CountHopClock(WakeOracle):
    """Shared stage/substage state machine of one Count-Hop execution.

    All globally-identical stage state (stage start, current receiver,
    Deliver-substage length) lives here; the controllers keep only their
    private queue-derived quantities (``my_count``, ``my_offset``).  The
    Deliver-substage length ``total`` is written exclusively by the
    coordinator — every other station used to learn the same value from
    its Assign message, which still carries it on the channel.
    """

    def __init__(self, n: int) -> None:
        super().__init__(n)
        self.stage_start = n  # the first stage begins after the silent warm-up
        self.receiver = 0
        self.total: int | None = None  # Deliver-substage length
        self._started = False
        self._last_ticked = -1
        # slot -> transmitting station for the current Deliver substage,
        # built lazily from the controllers' assigned offsets.
        self._deliver_plan: list[int | None] | None = None

    # -- state machine ---------------------------------------------------------
    def _begin_stage(self, stage_start: int, receiver: int) -> None:
        self.stage_start = stage_start
        self.receiver = receiver
        self.total = None
        self._deliver_plan = None
        for ctrl in self.controllers:
            ctrl._begin_stage_local(receiver)

    def tick(self, round_no: int) -> None:
        if round_no <= self._last_ticked or round_no < self.n:
            return
        self._last_ticked = round_no
        if not self._started:
            self._started = True
            self._begin_stage(self.n, 0)
        while True:
            rel = round_no - self.stage_start
            if self.total is None or rel < 2 * self.n + self.total:
                return
            self._begin_stage(
                self.stage_start + 2 * self.n + self.total,
                (self.receiver + 1) % self.n,
            )

    def substage(self, round_no: int) -> tuple[str, int]:
        """Return (substage name, slot index within the substage)."""
        rel = round_no - self.stage_start
        if rel < self.n:
            return "report", rel
        if rel < 2 * self.n:
            return "assign", rel - self.n
        return "deliver", rel - 2 * self.n

    # -- batch awake-set query -------------------------------------------------
    def _build_deliver_plan(self) -> "list[int | None]":
        total = self.total or 0
        plan: list[int | None] = [None] * total
        receiver = self.receiver
        controllers = self.controllers
        if receiver != COORDINATOR:
            for slot in range(min(controllers[COORDINATOR].my_count, total)):
                plan[slot] = COORDINATOR
        for station, ctrl in enumerate(controllers):
            if station in (COORDINATOR, receiver):
                continue
            offset, count = ctrl.my_offset, ctrl.my_count
            if offset is None or count <= 0:
                continue
            for slot in range(offset, min(offset + count, total)):
                plan[slot] = station
        self._deliver_plan = plan
        return plan

    def awake_stations(self, round_no: int) -> tuple[int, ...]:
        if round_no < self.n:
            return ()
        substage, slot = self.substage(round_no)
        receiver = self.receiver
        if substage == "report":
            if (
                slot not in (COORDINATOR, receiver)
                and self.controllers[slot].my_count > 0
            ):
                return (COORDINATOR, slot)
            return (COORDINATOR,)
        if substage == "assign":
            if slot == COORDINATOR:
                return (COORDINATOR,)
            return (COORDINATOR, slot)
        # deliver
        plan = self._deliver_plan
        if plan is None:
            plan = self._build_deliver_plan()
        sender = plan[slot] if 0 <= slot < len(plan) else None
        if sender is None:
            return (receiver,)
        return (sender, receiver) if sender < receiver else (receiver, sender)


class _CountHopController(TickedQueueingController):
    """Per-station controller of Count-Hop.

    The stage state machine is shared (:class:`_CountHopClock`); each
    station privately tracks only what it derives from its own queue and
    the Assign message addressed to it.

    Quiescence holdout: ``silence_invariant`` stays False because the
    coordinator *beacons* — it transmits an Assign control message in
    every Assign-substage round even when no station holds a packet, so
    an idle stretch is not a run of silent rounds and cannot be elided.
    """

    def __init__(self, station_id: int, n: int, clock: _CountHopClock) -> None:
        super().__init__(station_id, n, clock)
        self.is_coordinator = station_id == COORDINATOR
        self.my_offset: int | None = None
        self.my_count = 0
        # Coordinator-only bookkeeping.
        self._reported_counts: dict[int, int] = {}

    @property
    def clock(self) -> _CountHopClock:
        """The shared stage clock (one source of truth: ``wake_oracle``)."""
        return self.wake_oracle

    # -- clock callbacks ---------------------------------------------------------
    def _begin_stage_local(self, receiver: int) -> None:
        self.my_offset = None
        self._reported_counts = {}
        if receiver == 0:
            # A new phase begins: everything queued becomes old.
            self.queue.age_all()
        self.my_count = (
            0
            if self.station_id == receiver
            else self.queue.count_old_for(receiver)
        )

    # -- coordinator helpers ------------------------------------------------------
    def _coordinator_total(self) -> int:
        receiver = self.clock.receiver
        own = 0 if receiver == COORDINATOR else self.queue.count_old_for(receiver)
        return own + sum(self._reported_counts.values())

    def _coordinator_offset_for(self, station: int) -> int:
        """Deliver-substage slot offset of ``station`` (coordinator's view)."""
        receiver = self.clock.receiver
        own = 0 if receiver == COORDINATOR else self.queue.count_old_for(receiver)
        offset = own
        for r in range(self.n):
            if r in (receiver, COORDINATOR):
                continue
            if r == station:
                return offset
            offset += self._reported_counts.get(r, 0)
        return offset

    # -- StationController interface -----------------------------------------------
    def wakes(self, round_no: int) -> bool:
        clock = self.clock
        clock.tick(round_no)
        if round_no < self.n:
            return False
        substage, slot = clock.substage(round_no)
        receiver = clock.receiver
        if substage == "report":
            if self.is_coordinator:
                return True
            return (
                slot == self.station_id
                and self.station_id != receiver
                and self.my_count > 0
            )
        if substage == "assign":
            if self.is_coordinator:
                return True
            return slot == self.station_id
        # deliver
        if self.station_id == receiver:
            return True
        if clock.total is None or self.my_offset is None:
            return False
        if self.is_coordinator:
            return slot < (0 if receiver == COORDINATOR else self.my_count)
        return self.my_offset <= slot < self.my_offset + self.my_count

    def act(self, round_no: int) -> Message | None:
        clock = self.clock
        substage, slot = clock.substage(round_no)
        receiver = clock.receiver
        if substage == "report":
            if (
                not self.is_coordinator
                and slot == self.station_id
                and self.station_id != receiver
                and self.my_count > 0
            ):
                return self.transmit(None, control={"count": self.my_count})
            return None
        if substage == "assign":
            if self.is_coordinator and slot != COORDINATOR:
                if clock.total is None:
                    clock.total = self._coordinator_total()
                    self.my_offset = 0
                return self.transmit(
                    None,
                    control={
                        "offset": self._coordinator_offset_for(slot),
                        "total": clock.total,
                    },
                    intended_receiver=slot,
                )
            return None
        # deliver
        if self.station_id == receiver:
            return None
        if self.my_offset is None:
            return None
        in_my_slot = (
            slot < self.my_count
            if self.is_coordinator
            else self.my_offset <= slot < self.my_offset + self.my_count
        )
        if not in_my_slot:
            return None
        packet = self.queue.peek_old_for(receiver)
        if packet is None:
            return None
        return self.transmit(packet, intended_receiver=receiver)

    def on_heard(self, round_no: int, message: Message, feedback: Feedback) -> None:
        substage, slot = self.clock.substage(round_no)
        if substage == "report" and self.is_coordinator:
            count = message.control.get("count")
            if count is not None:
                self._reported_counts[message.sender] = int(count)
        elif substage == "assign" and message.sender == COORDINATOR:
            if message.intended_receiver == self.station_id:
                # The message's "total" equals the clock's (the coordinator
                # wrote both); only the private offset needs remembering.
                self.my_offset = int(message.control["offset"])

    def on_silence(self, round_no: int) -> None:
        # The coordinator treats a silent Report slot as a zero count.
        substage, slot = self.clock.substage(round_no)
        if substage == "report" and self.is_coordinator:
            self._reported_counts.setdefault(slot, 0)

    def after_feedback(self, round_no: int, feedback: Feedback) -> None:
        # The coordinator fixes the stage total at the end of the Report
        # substage so that the state machine can advance even if every
        # Assign message targets a station other than itself.
        if self.is_coordinator:
            substage, slot = self.clock.substage(round_no)
            if substage == "report" and slot == self.n - 1 and self.clock.total is None:
                self.clock.total = self._coordinator_total()
                self.my_offset = 0


class _CountHopBlockDriver(RoundBlockDriver):
    """Restricted compiled-round driver for Count-Hop.

    Count-Hop is a beaconing algorithm — the coordinator transmits an
    Assign control message whether or not any packets exist — so the
    driver waives the silence invariant
    (``relies_on_silence_invariant = False``) and the engine calls the
    named transmitter's ``act`` unconditionally.

    The driver is *restricted*: it compiles only the substages whose
    transmitter sequence is fixed by the published stage schedule.

    * **Warm-up** (``[0, n)``): every station off, trivially compiled.
    * **Assign**: the coordinator beacons in every non-self slot —
      deterministic, compiled.
    * **Deliver**: senders follow the slot plan fixed at the end of the
      Report substage — deterministic within the stage, compiled.
      Assign and Deliver are contiguous, so they compile together as a
      single block per stage.
    * **Report** is *adaptive*: whether slot ``r`` transmits depends on
      station ``r``'s private queue count, so these blocks are declined
      (with a reason string surfaced through ``--negotiation``) and run
      through the kernel fallback instead — never an error.

    ``propose_stop`` aligns block boundaries with substage boundaries so
    a declined Report substage never drags the compilable Assign/Deliver
    rounds of the same chunk down with it.
    """

    relies_on_silence_invariant = False

    def __init__(self, controllers: "list[_CountHopController]") -> None:
        super().__init__(len(controllers))
        self._controllers = controllers
        self._clock = controllers[0].clock

    # -- phase geometry --------------------------------------------------------
    def _substage_at(self, start: int) -> tuple[str, int]:
        """Substage containing ``start`` and its first round past the end.

        Pure projection: the clock is only ticked up to ``start - 1``
        when the engine plans a block, so ``start`` may sit one stage
        ahead of the clock's current one (never more — blocks tick every
        executed round).
        """
        clock = self._clock
        n = self.n
        if start < n:
            return "warmup", n
        stage_start = clock.stage_start
        total = clock.total
        if not clock._started:
            stage_start, total = n, None
        if total is not None and start >= stage_start + 2 * n + total:
            stage_start += 2 * n + total
            total = None
        rel = start - stage_start
        if rel < n:
            return "report", stage_start + n
        if rel < 2 * n:
            # Assign and Deliver are both deterministic and contiguous,
            # so they compile as ONE block: the span runs to the stage
            # end (``total`` is already fixed — the Report substage set
            # it before Assign began), halving the per-block setup cost
            # against cutting at every substage boundary.
            return "assign", stage_start + 2 * n + (total or 0)
        return "deliver", stage_start + 2 * n + (total or 0)

    def propose_stop(self, start: int, stop: int) -> int:
        _, end = self._substage_at(start)
        return end if end < stop else stop

    def begin_block(self, start: int, stop: int) -> bool:
        substage, _ = self._substage_at(start)
        if substage == "report":
            self.decline_reason = (
                "count-hop: Report substage is adaptive "
                "(transmissions depend on private queue counts)"
            )
            return False
        return True

    # -- per-round protocol ----------------------------------------------------
    def transmitter(self, t: int) -> int:
        clock = self._clock
        if t < clock.n:
            return -1
        substage, slot = clock.substage(t)
        receiver = clock.receiver
        if substage == "report":
            if (
                slot not in (COORDINATOR, receiver)
                and self._controllers[slot].my_count > 0
            ):
                return slot
            return -1
        if substage == "assign":
            return COORDINATOR if slot != COORDINATOR else -1
        plan = clock._deliver_plan
        if plan is None:
            plan = clock._build_deliver_plan()
        sender = plan[slot] if 0 <= slot < len(plan) else None
        return -1 if sender is None else sender

    def silent_round(self, t: int) -> None:
        clock = self._clock
        if t < clock.n:
            return
        substage, slot = clock.substage(t)
        if substage == "report":
            coordinator = self._controllers[COORDINATOR]
            coordinator._reported_counts.setdefault(slot, 0)
            if slot == clock.n - 1 and clock.total is None:
                clock.total = coordinator._coordinator_total()
                coordinator.my_offset = 0

    def heard_round(self, t: int, sender: int, message: Message) -> tuple[int, ...]:
        clock = self._clock
        substage, slot = clock.substage(t)
        controllers = self._controllers
        if substage == "report":
            coordinator = controllers[COORDINATOR]
            count = message.control.get("count")
            if count is not None:
                coordinator._reported_counts[sender] = int(count)
            if slot == clock.n - 1 and clock.total is None:
                clock.total = coordinator._coordinator_total()
                coordinator.my_offset = 0
            return ()
        if substage == "assign":
            target = message.intended_receiver
            if target is not None and target != COORDINATOR:
                controllers[target].my_offset = int(message.control["offset"])
            return ()
        sender_ctrl = controllers[sender]
        if sender_ctrl._in_flight is not None:
            sender_ctrl.queue.remove(sender_ctrl._in_flight)
            sender_ctrl._in_flight = None
        return (sender,)


@register_algorithm("count-hop")
class CountHop(RoutingAlgorithm):
    """The Count-Hop algorithm of Section 4.1 (energy cap 2, universal)."""

    name = "Count-Hop"

    def build_controllers(self) -> list[_CountHopController]:
        clock = _CountHopClock(self.n)
        controllers = [_CountHopController(i, self.n, clock) for i in range(self.n)]
        clock.attach(controllers)
        driver = _CountHopBlockDriver(controllers)
        for ctrl in controllers:
            ctrl.block_driver = driver
        return controllers

    def properties(self) -> AlgorithmProperties:
        return AlgorithmProperties(
            name=self.name,
            energy_cap=2,
            oblivious=False,
            direct=True,
            plain_packet=False,
        )

    # -- analytical quantities used by tests and the analysis module -------------
    def latency_bound(self, rho: float, beta: float) -> float:
        """The latency bound ``2 (n^2 + beta) / (1 - rho)`` of Theorem 3."""
        if rho >= 1:
            return float("inf")
        return 2 * (self.n**2 + beta) / (1 - rho)
