"""Count-Hop: universal direct routing with control bits (Section 4.1).

One dedicated station (we use station 0) acts as the *coordinator*; every
other station is a *worker*.  An execution is structured into phases,
each phase into ``n`` stages — one per receiving station ``v`` — and each
stage into three substages:

1. **Report** (``n`` rounds): in round ``r`` station ``r`` (if it is
   neither ``v`` nor the coordinator and has old packets for ``v``)
   transmits a light message carrying the number of its old packets
   destined to ``v``; the coordinator listens throughout.
2. **Assign** (``n`` rounds): in round ``r`` the coordinator transmits a
   light message to station ``r`` carrying (a) the offset of ``r``'s
   transmission slot in the next substage and (b) the stage's total
   packet count, so every station — including ``v`` — knows when the
   stage ends.
3. **Deliver** (``total`` rounds): station ``v`` is switched on for the
   whole substage; the coordinator (first) and then the workers, in name
   order, transmit their old packets destined to ``v`` in consecutive
   slots.  Each heard packet is immediately consumed by ``v``: the
   algorithm routes directly.

Only the coordinator plus at most one other station are ever switched on
simultaneously, so the energy cap is 2.  Packets transmitted in a phase
are *old* — injected in a previous phase; at the end of each phase all
queued packets become old.  The first phase consists of ``n`` rounds with
every station switched off.

Paper bound (Theorem 3): stable for every injection rate ``rho < 1`` with
latency at most ``2 (n^2 + beta) / (1 - rho)``.
"""

from __future__ import annotations

from ..channel.feedback import Feedback
from ..channel.message import Message
from ..core.algorithm import AlgorithmProperties, RoutingAlgorithm
from ..core.controller import QueueingController
from ..core.registry import register_algorithm

__all__ = ["CountHop"]

COORDINATOR = 0


class _CountHopController(QueueingController):
    """Per-station controller of Count-Hop.

    All stations advance an identical stage/substage state machine; the
    only stage-dependent quantity not derivable from ``(n, t)`` alone is
    the Deliver-substage length, which every station learns from the
    coordinator's Assign-substage message before it is needed.
    """

    def __init__(self, station_id: int, n: int) -> None:
        super().__init__(station_id, n)
        self.is_coordinator = station_id == COORDINATOR
        # Stage state (identical at every station, up to private fields).
        self.stage_start = n  # the first stage begins after the silent warm-up phase
        self.receiver = 0
        self.total: int | None = None  # Deliver-substage length, learned in Assign
        self.my_offset: int | None = None
        self.my_count = 0
        self._phase_aged_at = -1
        # Coordinator-only bookkeeping.
        self._reported_counts: dict[int, int] = {}
        self._age_now()

    # -- state machine ---------------------------------------------------------
    def _age_now(self) -> None:
        self.queue.age_all()

    def _begin_stage(self, stage_start: int, receiver: int) -> None:
        self.stage_start = stage_start
        self.receiver = receiver
        self.total = None
        self.my_offset = None
        self._reported_counts = {}
        if receiver == 0:
            # A new phase begins: everything queued becomes old.
            self._age_now()
        self.my_count = (
            0
            if self.station_id == receiver
            else self.queue.count_old_for(receiver)
        )

    def _advance(self, round_no: int) -> None:
        """Advance the stage state machine so that ``round_no`` lies inside it."""
        if round_no < self.n:
            return  # silent warm-up phase
        if round_no == self.n and self._phase_aged_at < self.n:
            self._phase_aged_at = self.n
            self._begin_stage(self.n, 0)
        while True:
            rel = round_no - self.stage_start
            if self.total is None or rel < 2 * self.n + self.total:
                return
            next_start = self.stage_start + 2 * self.n + self.total
            next_receiver = (self.receiver + 1) % self.n
            self._begin_stage(next_start, next_receiver)

    def _substage(self, round_no: int) -> tuple[str, int]:
        """Return (substage name, slot index within the substage)."""
        rel = round_no - self.stage_start
        if rel < self.n:
            return "report", rel
        if rel < 2 * self.n:
            return "assign", rel - self.n
        return "deliver", rel - 2 * self.n

    # -- coordinator helpers ------------------------------------------------------
    def _coordinator_total(self) -> int:
        own = 0 if self.receiver == COORDINATOR else self.queue.count_old_for(self.receiver)
        return own + sum(self._reported_counts.values())

    def _coordinator_offset_for(self, station: int) -> int:
        """Deliver-substage slot offset of ``station`` (coordinator's view)."""
        own = 0 if self.receiver == COORDINATOR else self.queue.count_old_for(self.receiver)
        offset = own
        for r in range(self.n):
            if r in (self.receiver, COORDINATOR):
                continue
            if r == station:
                return offset
            offset += self._reported_counts.get(r, 0)
        return offset

    # -- StationController interface -----------------------------------------------
    def wakes(self, round_no: int) -> bool:
        self._advance(round_no)
        if round_no < self.n:
            return False
        substage, slot = self._substage(round_no)
        if substage == "report":
            if self.is_coordinator:
                return True
            return (
                slot == self.station_id
                and self.station_id != self.receiver
                and self.my_count > 0
            )
        if substage == "assign":
            if self.is_coordinator:
                return True
            return slot == self.station_id
        # deliver
        if self.station_id == self.receiver:
            return True
        if self.total is None or self.my_offset is None:
            return False
        if self.is_coordinator:
            return slot < (0 if self.receiver == COORDINATOR else self.my_count)
        return self.my_offset <= slot < self.my_offset + self.my_count

    def act(self, round_no: int) -> Message | None:
        substage, slot = self._substage(round_no)
        if substage == "report":
            if (
                not self.is_coordinator
                and slot == self.station_id
                and self.station_id != self.receiver
                and self.my_count > 0
            ):
                return self.transmit(None, control={"count": self.my_count})
            return None
        if substage == "assign":
            if self.is_coordinator and slot != COORDINATOR:
                if self.total is None:
                    self.total = self._coordinator_total()
                    self.my_offset = 0
                return self.transmit(
                    None,
                    control={
                        "offset": self._coordinator_offset_for(slot),
                        "total": self.total,
                    },
                    intended_receiver=slot,
                )
            return None
        # deliver
        if self.station_id == self.receiver:
            return None
        if self.my_offset is None:
            return None
        in_my_slot = (
            slot < self.my_count
            if self.is_coordinator
            else self.my_offset <= slot < self.my_offset + self.my_count
        )
        if not in_my_slot:
            return None
        packet = self.queue.peek_old_for(self.receiver)
        if packet is None:
            return None
        return self.transmit(packet, intended_receiver=self.receiver)

    def on_heard(self, round_no: int, message: Message, feedback: Feedback) -> None:
        substage, slot = self._substage(round_no)
        if substage == "report" and self.is_coordinator:
            count = message.control.get("count")
            if count is not None:
                self._reported_counts[message.sender] = int(count)
        elif substage == "assign" and message.sender == COORDINATOR:
            if message.intended_receiver == self.station_id:
                self.total = int(message.control["total"])
                self.my_offset = int(message.control["offset"])

    def on_silence(self, round_no: int) -> None:
        # The coordinator treats a silent Report slot as a zero count.
        substage, slot = self._substage(round_no)
        if substage == "report" and self.is_coordinator:
            self._reported_counts.setdefault(slot, 0)

    def after_feedback(self, round_no: int, feedback: Feedback) -> None:
        # The coordinator fixes the stage total at the end of the Report
        # substage so that the state machine can advance even if every
        # Assign message targets a station other than itself.
        if self.is_coordinator:
            substage, slot = self._substage(round_no)
            if substage == "report" and slot == self.n - 1 and self.total is None:
                self.total = self._coordinator_total()
                self.my_offset = 0


@register_algorithm("count-hop")
class CountHop(RoutingAlgorithm):
    """The Count-Hop algorithm of Section 4.1 (energy cap 2, universal)."""

    name = "Count-Hop"

    def build_controllers(self) -> list[_CountHopController]:
        return [_CountHopController(i, self.n) for i in range(self.n)]

    def properties(self) -> AlgorithmProperties:
        return AlgorithmProperties(
            name=self.name,
            energy_cap=2,
            oblivious=False,
            direct=True,
            plain_packet=False,
        )

    # -- analytical quantities used by tests and the analysis module -------------
    def latency_bound(self, rho: float, beta: float) -> float:
        """The latency bound ``2 (n^2 + beta) / (1 - rho)`` of Theorem 3."""
        if rho >= 1:
            return float("inf")
        return 2 * (self.n**2 + beta) / (1 - rho)
