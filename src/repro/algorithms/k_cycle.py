"""k-Cycle: energy-oblivious indirect plain-packet routing (Section 5).

The stations are partitioned into overlapping *groups* of ``k`` consecutive
stations; two consecutive groups share exactly one station, their
*connector*, and the last group wraps around to share station 0 with the
first, so the groups form a cycle.  The groups take turns being *active*:
group ``g`` is switched on (all ``k`` of its members) for a contiguous
segment of

    delta = ceil(4 (n-1) k / (n - k))

rounds, then the next group takes over, round-robin forever.  This on/off
pattern depends only on ``(n, k, t)``, so the algorithm is k-energy-
oblivious and publishes it as a :class:`PeriodicSchedule`.

While a group is active its members run the OF-RRW sub-protocol: a
conceptual token circulates among them; the holder transmits its *old*
packets one per round, and a silent round advances the token.  A heard
packet whose destination belongs to the active group is thereby delivered;
otherwise the group's forward connector adopts it, so packets hop from
group to group around the cycle until they reach the group containing
their destination — routing is indirect.

Paper bounds (Table 1): latency at most ``(32 + beta) * n`` for injection
rates ``rho < (k-1)/(n-1)``; by Theorem 6 no k-energy-oblivious algorithm
is stable for ``rho > k/n``.
"""

from __future__ import annotations

import math
from bisect import bisect_left

import numpy as np

from ..channel.feedback import ChannelOutcome, Feedback
from ..channel.message import Message
from ..core.algorithm import AlgorithmProperties, RoutingAlgorithm
from ..core.blocks import LoweredSegment, RoundBlockDriver
from ..core.controller import QueueingController
from ..core.registry import register_algorithm
from ..core.schedule import PeriodicSchedule
from ..protocols.token_ring import TokenRingReplica

__all__ = ["KCycle", "cycle_groups", "activity_segment_length"]


def effective_group_size(n: int, k: int) -> int:
    """The group size actually used: the paper decreases ``k`` until ``2k <= n + 1``."""
    k_eff = min(k, (n + 1) // 2)
    return max(2, k_eff)


def cycle_groups(n: int, k: int) -> list[list[int]]:
    """The cyclic cover of ``[0, n)`` by groups of ``k`` consecutive stations.

    Group ``g`` starts at station ``g * (k - 1) (mod n)`` and contains ``k``
    consecutive stations (mod ``n``), so consecutive groups share exactly
    one station and the last group shares station 0 (or an early station)
    with the first, closing the cycle.
    """
    k = effective_group_size(n, k)
    stride = k - 1
    num_groups = math.ceil(n / stride)
    groups: list[list[int]] = []
    for g in range(num_groups):
        start = (g * stride) % n
        groups.append([(start + offset) % n for offset in range(k)])
    return groups


def activity_segment_length(n: int, k: int) -> int:
    """Length ``delta`` of one group's activity segment (equation (2))."""
    k = effective_group_size(n, k)
    return max(1, math.ceil(4 * (n - 1) * k / (n - k)))


class _KCycleController(QueueingController):
    """Per-station controller of k-Cycle."""

    # wakes() is a pure lookup of the group rotation (published as the
    # algorithm's PeriodicSchedule), so the kernel may batch awake sets.
    static_wake_schedule = True

    # Holding no packets the token holder withholds, and a silent round
    # only advances the active group's token (phase-end aging is a no-op
    # on an empty queue): quiescent spans fast-forward with one modular
    # count per group membership.
    silence_invariant = True

    def __init__(
        self,
        station_id: int,
        n: int,
        groups: list[list[int]],
        delta: int,
    ) -> None:
        super().__init__(station_id, n)
        self.groups = groups
        self.delta = delta
        self.num_groups = len(groups)
        # Group membership and one token replica per group we belong to.
        self.my_groups = [g for g, members in enumerate(groups) if station_id in members]
        self.replicas = {g: TokenRingReplica(groups[g]) for g in self.my_groups}
        # The forward connector of group g is the station shared with group g+1.
        self.forward_connector = {
            g: self._shared_station(groups[g], groups[(g + 1) % self.num_groups])
            for g in range(self.num_groups)
        }
        # Injected packets are immediately old for the next phase they meet;
        # OF-RRW ages them at phase boundaries of the groups we belong to.
        self._member_sets = [set(members) for members in groups]
        # Activity-segment cache: the active group only changes every
        # ``delta`` rounds, so the hot hooks (act / on_heard /
        # after_feedback, all called once per awake round) resolve it with
        # one comparison instead of div/mod plus dict lookups.
        self._seg_start = 0
        self._seg_end = 0  # empty: the first hook call refreshes
        self._seg_group = -1
        self._seg_replica: TokenRingReplica | None = None

    def _refresh_segment(self, round_no: int) -> None:
        block = round_no // self.delta
        self._seg_group = block % self.num_groups
        self._seg_replica = self.replicas.get(self._seg_group)
        self._seg_start = block * self.delta
        self._seg_end = self._seg_start + self.delta

    def _shared_station(self, group_a: list[int], group_b: list[int]) -> int:
        shared = [s for s in group_a if s in set(group_b)]
        # With the cyclic construction consecutive groups always overlap;
        # prefer the first station of the next group (the paper's connector).
        for station in group_b:
            if station in set(group_a):
                return station
        return shared[0]

    # -- schedule ----------------------------------------------------------
    def active_group(self, round_no: int) -> int:
        """The group that is switched on in ``round_no``."""
        return (round_no // self.delta) % self.num_groups

    def wakes(self, round_no: int) -> bool:
        return self.active_group(round_no) in self.my_groups

    # -- protocol -----------------------------------------------------------
    def _eligible_packet(self, group: int):
        members = self._member_sets[group]
        connector = self.forward_connector[group]

        def progresses(packet) -> bool:
            if packet.destination in members:
                return True
            # A packet leaving the group is adopted by the forward
            # connector; if we *are* that connector, transmitting it now
            # makes no progress, so withhold it until our other group is
            # active.
            return self.station_id != connector

        return self.queue.peek_old_matching(progresses)

    def act(self, round_no: int) -> Message | None:
        if not self._seg_start <= round_no < self._seg_end:
            self._refresh_segment(round_no)
        replica = self._seg_replica
        if replica is None or replica.holder != self.station_id:
            return None
        packet = self._eligible_packet(self._seg_group)
        if packet is None:
            return None
        return self.transmit(packet)

    def on_heard(self, round_no: int, message: Message, feedback: Feedback) -> None:
        if not self._seg_start <= round_no < self._seg_end:
            self._refresh_segment(round_no)
        if self._seg_replica is None:
            return  # not a member of the active group
        packet = message.packet
        if packet is None or message.sender == self.station_id:
            return
        if packet.destination == self.station_id:
            return  # consumed; the engine records the delivery
        group = self._seg_group
        if packet.destination in self._member_sets[group]:
            return  # delivered to another member of the active group
        if self.station_id == self.forward_connector[group]:
            # The packet leaves the group: we are its relay.
            self.adopt(packet)

    def advance_silent_span(self, start: int, stop: int) -> None:
        # This station observes exactly the silent rounds in which one of
        # its groups is active; each such round advances that group's
        # token.  Rounds are grouped into blocks of ``delta`` and block
        # ``b`` activates group ``b % num_groups``, so the number of
        # active rounds per group over [start, stop) is closed-form.
        delta = self.delta
        super_period = delta * self.num_groups
        for g in self.my_groups:
            offset = g * delta

            def active_upto(limit: int) -> int:
                full, rest = divmod(limit, super_period)
                partial = rest - offset
                if partial < 0:
                    partial = 0
                elif partial > delta:
                    partial = delta
                return full * delta + partial

            rounds = active_upto(stop) - active_upto(start)
            if rounds:
                self.replicas[g].advance_silence(rounds)

    def after_feedback(self, round_no: int, feedback: Feedback) -> None:
        if feedback.outcome is not ChannelOutcome.SILENCE:
            return  # the token only moves on silent rounds
        if not self._seg_start <= round_no < self._seg_end:
            self._refresh_segment(round_no)
        replica = self._seg_replica
        if replica is None:
            return
        phase_done = replica.observe(feedback.outcome)
        if phase_done:
            # Packets injected or adopted during the finished phase become old.
            self.queue.age_all()


class _KCycleBlockDriver(RoundBlockDriver):
    """Compiled-round driver for k-Cycle (one shared instance per run).

    Per round only the active group's token holder may transmit.  The
    driver mirrors what the reference loop's feedback fan-out does to the
    k awake members: on silence every member's replica advances (queues
    age at phase end), on heard the sender drops its in-flight packet and
    the group's forward connector adopts a packet leaving the group.

    All member replicas of a group agree by construction, so inside a
    compiled block the driver advances one *canonical* replica per silent
    round instead of k — loaded from the members when an activity segment
    begins and written back to all of them when the segment (or the
    block) ends.  Quiescent-span elision advances the (stale-in-block)
    per-station replicas through ``advance_silent_span`` as usual; the
    :meth:`advance_span` hook applies the active-round count of the same
    jump to the canonical copy so the end-of-segment write-back stays
    consistent.
    """

    def __init__(self, controllers: list[_KCycleController]) -> None:
        super().__init__(len(controllers))
        first = controllers[0]
        self._controllers = controllers
        self._delta = first.delta
        self._num_groups = first.num_groups
        self._groups = first.groups
        self._forward_connector = first.forward_connector
        self._member_sets = first._member_sets
        # Activity-segment cache, same shape as the controllers' own.
        self._seg_start = 0
        self._seg_end = 0  # empty: the first transmitter() call refreshes
        self._member_ctrls: list[_KCycleController] = []
        self._replicas: list[TokenRingReplica] = []
        self._member_set: set[int] = set()
        self._connector = -1
        self._group = -1
        self._canonical: TokenRingReplica | None = None

    def _write_back(self) -> None:
        canonical = self._canonical
        if canonical is None:
            return
        for replica in self._replicas:
            replica.token_pos = canonical.token_pos
            replica.advancements = canonical.advancements
            replica.phase_no = canonical.phase_no
            replica.holder = canonical.holder

    def _refresh_segment(self, round_no: int) -> None:
        self._write_back()
        block = round_no // self._delta
        group = block % self._num_groups
        ctrls = [self._controllers[i] for i in self._groups[group]]
        self._member_ctrls = ctrls
        self._replicas = [ctrl.replicas[group] for ctrl in ctrls]
        self._member_set = self._member_sets[group]
        self._connector = self._forward_connector[group]
        self._group = group
        source = self._replicas[0]
        canonical = TokenRingReplica(list(self._groups[group]))
        canonical.token_pos = source.token_pos
        canonical.advancements = source.advancements
        canonical.phase_no = source.phase_no
        canonical.holder = source.holder
        self._canonical = canonical
        self._seg_start = block * self._delta
        self._seg_end = self._seg_start + self._delta

    def begin_block(self, start: int, stop: int) -> bool:
        # The members are authoritative between blocks (the fallback path
        # mutates them directly): force the first round to reload.
        self._seg_start = self._seg_end = 0
        self._canonical = None
        return True

    def end_block(self, stop: int) -> None:
        self._write_back()
        self._canonical = None
        self._seg_start = self._seg_end = 0

    def advance_span(self, start: int, stop: int) -> None:
        canonical = self._canonical
        if canonical is None:
            return  # elision before the first round of the block
        # Same closed-form as the controllers' advance_silent_span, for
        # the one group the canonical copy currently mirrors.
        delta = self._delta
        super_period = delta * self._num_groups
        offset = self._group * delta

        def active_upto(limit: int) -> int:
            full, rest = divmod(limit, super_period)
            partial = rest - offset
            if partial < 0:
                partial = 0
            elif partial > delta:
                partial = delta
            return full * delta + partial

        rounds = active_upto(stop) - active_upto(start)
        if rounds:
            canonical.advance_silence(rounds)

    def transmitter(self, t: int) -> int:
        if not self._seg_start <= t < self._seg_end:
            self._refresh_segment(t)
        holder = self._canonical.holder
        # The holder's own (stale inside the segment) replica must agree
        # before act() runs its holder check.
        self._controllers[holder].replicas[self._group].holder = holder
        return holder

    def silent_round(self, t: int) -> None:
        if self._canonical.observe(ChannelOutcome.SILENCE):
            # Packets injected or adopted during the finished phase
            # become old for every member of the active group.
            for ctrl in self._member_ctrls:
                ctrl.queue.age_all()

    def heard_round(self, t: int, sender: int, message: Message) -> tuple[int, ...]:
        # Sender's confirmed transmission leaves its queue; replicas do
        # not move on heard rounds (the token stays with its holder).
        sender_ctrl = self._controllers[sender]
        if sender_ctrl._in_flight is not None:
            sender_ctrl.queue.remove(sender_ctrl._in_flight)
            sender_ctrl._in_flight = None
        packet = message.packet
        if (
            packet is not None
            and packet.destination not in self._member_set
            and self._connector != sender
        ):
            # The packet leaves the group: the forward connector relays.
            self._controllers[self._connector].adopt(packet)
            return (sender, self._connector)
        return (sender,)

    def lower_segment(self, start: int, stop: int, plan) -> LoweredSegment | None:
        """Silent-span lowering: absorb arrivals while no holder may act.

        k-Cycle transmits *old* packets only, so a planned arrival never
        makes its own round heard — eligibility changes only at group
        switches and phase-end promotions, both deterministic.  The
        driver walks the group rotation and each active group's token,
        absorbing arrivals as ``+1`` queue deltas and replaying phase-end
        aging, and cuts immediately before the first round whose holder
        holds an eligible old packet (an in-group destination, or any old
        packet when the holder is not the forward connector); the
        per-round path takes over there.  Between activity bursts most
        rounds are exactly such silent rounds — packets parked at
        inactive stations keep the total queue positive, so the engine's
        quiescent-span elision cannot take them.
        """
        controllers = self._controllers
        groups = self._groups
        delta = self._delta
        num_groups = self._num_groups
        member_sets = self._member_sets
        forward_connector = self._forward_connector

        offsets = plan.offsets
        plan_base = plan.start
        sources = plan.sources
        plan_dests = plan.destinations
        ai = offsets[start - plan_base]
        inj_rounds = plan.injection_rounds()
        ip = bisect_left(inj_rounds, start)
        n_inj = len(inj_rounds)
        next_arrival = inj_rounds[ip] if ip < n_inj and inj_rounds[ip] < stop else stop

        # Lazily snapshotted per-station queue views: old packets, the
        # combined new tail (Packet | plan index) with its destinations,
        # and how much of that tail phase ends have promoted so far.
        st_old: dict[int, list] = {}
        st_new: dict[int, list] = {}
        st_new_dests: dict[int, list[int]] = {}
        promoted: dict[int, int] = {}
        dirty: set[int] = set()

        def snapshot(s: int) -> None:
            if s not in st_old:
                queue = controllers[s].queue
                new = queue.new_packets()
                st_old[s] = queue.old_packets()
                st_new[s] = new
                st_new_dests[s] = [p.destination for p in new]
                promoted[s] = 0

        # Absolute token state per touched group: [pos, advancements,
        # phase_no].  The driver's canonical copy is authoritative for
        # the group it currently mirrors; member replicas for the rest.
        gstate: dict[int, list[int]] = {}

        def group_state(g: int) -> list[int]:
            state = gstate.get(g)
            if state is None:
                canonical = self._canonical
                if canonical is not None and g == self._group:
                    state = [
                        canonical.token_pos,
                        canonical.advancements,
                        canonical.phase_no,
                    ]
                else:
                    source = controllers[groups[g][0]].replicas[g]
                    state = [source.token_pos, source.advancements, source.phase_no]
                gstate[g] = state
            return state

        delta_stations: list[int] = []
        delta_values: list[int] = []
        delta_offsets: list[int] = [0]
        t = start
        cut = stop
        while t < stop:
            g = (t // delta) % num_groups
            members = groups[g]
            state = group_state(g)
            holder = members[state[0]]
            snapshot(holder)
            if len(st_old[holder]) + promoted[holder] > 0:
                if holder != forward_connector[g]:
                    cut = t
                    break
                member_set = member_sets[g]
                eligible = False
                for packet in st_old[holder]:
                    if packet.destination in member_set:
                        eligible = True
                        break
                if not eligible:
                    dests = st_new_dests[holder]
                    for i in range(promoted[holder]):
                        if dests[i] in member_set:
                            eligible = True
                            break
                if eligible:
                    cut = t
                    break
            if t == next_arrival:
                row_start = len(delta_stations)
                hi = offsets[t - plan_base + 1]
                while ai < hi:
                    s = sources[ai]
                    snapshot(s)
                    st_new[s].append(ai)
                    st_new_dests[s].append(plan_dests[ai])
                    dirty.add(s)
                    for k in range(row_start, len(delta_stations)):
                        if delta_stations[k] == s:
                            delta_values[k] += 1
                            break
                    else:
                        delta_stations.append(s)
                        delta_values.append(1)
                    ai += 1
                ip += 1
                next_arrival = (
                    inj_rounds[ip] if ip < n_inj and inj_rounds[ip] < stop else stop
                )
            # Silent round: the active group's token advances; a phase
            # end promotes every member's new packets to old.
            pos = state[0] + 1
            if pos == len(members):
                pos = 0
            state[0] = pos
            adv = state[1] + 1
            if adv >= len(members):
                state[1] = 0
                state[2] += 1
                for s in members:
                    snapshot(s)
                    if len(st_new[s]) > promoted[s]:
                        promoted[s] = len(st_new[s])
                        dirty.add(s)
            else:
                state[1] = adv
            delta_offsets.append(len(delta_stations))
            t += 1
        if cut == start:
            return None
        span = cut - start
        j0 = offsets[start - plan_base]

        def commit(packets: list) -> None:
            # The per-round path may hold unsynced token advances in the
            # driver's canonical replica (for whatever group it last
            # mirrored): flush them to the member replicas *before*
            # overwriting with the segment's final states — gstate read
            # the canonical as its base, so same-group writes below stay
            # authoritative, and other groups keep their advances.
            self._write_back()
            for s in dirty:
                tail = st_new[s]
                pn = promoted[s]
                final_old = st_old[s] + [
                    packets[e - j0] if type(e) is int else e for e in tail[:pn]
                ]
                final_new = [
                    packets[e - j0] if type(e) is int else e for e in tail[pn:]
                ]
                controllers[s].queue.replace(final_old, final_new)
            for g, state in gstate.items():
                members = groups[g]
                pos = state[0]
                holder = members[pos]
                for s in members:
                    replica = controllers[s].replicas[g]
                    replica.token_pos = pos
                    replica.advancements = state[1]
                    replica.phase_no = state[2]
                    replica.holder = holder
            # Force the per-round path to reload from the (now
            # authoritative) member replicas instead of writing back a
            # stale canonical copy.
            self._canonical = None
            self._seg_start = self._seg_end = 0

        return LoweredSegment(
            start=start,
            stop=cut,
            transmitters=np.full(span, -1, dtype=np.int64),
            delta_stations=np.asarray(delta_stations, dtype=np.int64),
            delta_values=np.asarray(delta_values, dtype=np.int64),
            delta_offsets=np.asarray(delta_offsets, dtype=np.int64),
            deliveries=[],
            commit=commit,
        )


@register_algorithm("k-cycle")
class KCycle(RoutingAlgorithm):
    """The k-Cycle algorithm of Section 5.

    Parameters
    ----------
    n:
        Number of stations.
    k:
        Energy cap.  When ``2k > n + 1`` the effective group size is
        reduced to ``(n + 1) // 2`` as in the paper.
    """

    name = "k-Cycle"

    def __init__(self, n: int, k: int) -> None:
        super().__init__(n)
        if not 2 <= k < n:
            raise ValueError(f"energy cap k must satisfy 2 <= k < n, got k={k}, n={n}")
        self.k = k
        self.k_eff = effective_group_size(n, k)
        self.groups = cycle_groups(n, k)
        self.delta = activity_segment_length(n, k)

    def build_controllers(self) -> list[_KCycleController]:
        controllers = [
            _KCycleController(i, self.n, self.groups, self.delta)
            for i in range(self.n)
        ]
        driver = _KCycleBlockDriver(controllers)
        for ctrl in controllers:
            ctrl.block_driver = driver
        return controllers

    def properties(self) -> AlgorithmProperties:
        return AlgorithmProperties(
            name=self.name,
            energy_cap=self.k_eff,
            oblivious=True,
            direct=False,
            plain_packet=True,
        )

    def oblivious_schedule(self) -> PeriodicSchedule:
        period: list[list[int]] = []
        for g, members in enumerate(self.groups):
            period.extend([list(members)] * self.delta)
        return PeriodicSchedule(self.n, period)

    # -- analytical quantities used by tests and the analysis module --------
    def stability_threshold(self) -> float:
        """The injection-rate threshold ``(k-1)/(n-1)`` of Theorem 5."""
        return (self.k_eff - 1) / (self.n - 1)

    def latency_bound(self, beta: float) -> float:
        """The latency bound ``(32 + beta) * n`` of Theorem 5."""
        return (32 + beta) * self.n
