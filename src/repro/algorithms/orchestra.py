"""Orchestra: maximum-throughput routing with energy cap 3 (Section 3.1).

Time is divided into *seasons* of ``n - 1`` rounds.  In every season one
station — the *conductor* — is switched on throughout and transmits in
every round; the other stations are *musicians*.  A virtual *baton list*
(kept identically by every station) determines who conducts: stations
take the baton in list order, except that a *big* conductor (one with at
least ``n^2 - 1`` old packets) announces its status, is moved to the
front of everybody's list and keeps the baton while it stays big.

During a season each musician switches on

* once to **learn**: in the round given by its rank among the musicians
  it hears the conductor's message and extracts (a) the rounds of the
  conductor's *next* season in which it must wake to receive packets and
  (b) the big-status toggle bit; and
* possibly several times to **receive**: in the rounds it was taught
  during the conductor's previous season, the conductor sends it a packet
  addressed to it (one hop — Orchestra routes directly).

Thus at most three stations are on per round (conductor, learner,
receiver): energy cap 3.  At the start of each of its seasons the
conductor computes the schedule for its next season from its old, not yet
scheduled packets, in injection order.

The season/baton state machine is identical at every station (the
conductor transmits in every round, so every musician reliably hears its
learn-round message), so it lives in one shared :class:`_OrchestraClock`
(a :class:`~repro.core.schedule.WakeOracle`): ``tick(t)`` advances the
baton, ``wakes(t)`` is pure afterwards, and the clock answers the whole
awake set — conductor, learner, scheduled receiver — in one call.

Paper bound (Theorem 1): against any adversary of injection rate 1 with
burstiness ``beta`` at most ``2 n^3 + beta`` packets are ever queued.
Individual packets may wait arbitrarily long (latency is unbounded), but
the queues — and hence the throughput — are optimal; by Theorem 2 no
algorithm with energy cap 2 can achieve this.
"""

from __future__ import annotations

from ..channel.feedback import Feedback
from ..channel.message import Message
from ..channel.packet import Packet
from ..core.algorithm import AlgorithmProperties, RoutingAlgorithm
from ..core.blocks import RoundBlockDriver
from ..core.controller import TickedQueueingController
from ..core.registry import register_algorithm
from ..core.schedule import WakeOracle

__all__ = ["Orchestra"]


class _OrchestraClock(WakeOracle):
    """Shared season/baton state machine of one Orchestra execution."""

    def __init__(self, n: int) -> None:
        super().__init__(n)
        self.season_length = n - 1
        self.baton_list = list(range(n))
        self.conductor = self.baton_list[0]
        self.big_announced = False
        self.musicians_sorted = [s for s in range(n) if s != self.conductor]
        self._season_processed = 0
        # round-in-season -> destination of the packet the conductor will
        # transmit (its promoted schedule); refreshed every season.
        self._recv_dest: dict[int, int] = {}

    def attach(self, controllers) -> None:
        super().attach(controllers)
        self._refresh_receive_map()

    def _refresh_receive_map(self) -> None:
        schedule = self.controllers[self.conductor]._current_schedule
        self._recv_dest = {r: p.destination for r, p in schedule.items()}

    def tick(self, round_no: int) -> None:
        season = round_no // self.season_length
        while self._season_processed < season:
            self._season_processed += 1
            # End-of-season baton handling (identical at every station).
            if self.big_announced:
                self.baton_list.remove(self.conductor)
                self.baton_list.insert(0, self.conductor)
                next_conductor = self.conductor
            else:
                idx = self.baton_list.index(self.conductor)
                next_conductor = self.baton_list[(idx + 1) % self.n]
            self.conductor = next_conductor
            self.big_announced = False
            self.musicians_sorted = [s for s in range(self.n) if s != next_conductor]
            for ctrl in self.controllers:
                ctrl._on_season_start(next_conductor)
            self._refresh_receive_map()

    def awake_stations(self, round_no: int) -> tuple[int, ...]:
        r = round_no % self.season_length
        conductor = self.conductor
        learner = self.musicians_sorted[r]
        dest = self._recv_dest.get(r)
        if dest is None or dest == conductor or dest == learner:
            return (conductor, learner) if conductor < learner else (learner, conductor)
        awake = sorted((conductor, learner, dest))
        return (awake[0], awake[1], awake[2])


class _OrchestraController(TickedQueueingController):
    """Per-station controller of Orchestra.

    Quiescence holdout: ``silence_invariant`` stays False because the
    conductor transmits its teach/big control message in *every* round
    of its season, packets or not — an idle Orchestra execution has no
    silent rounds at all, so there is never a quiescent span to elide.
    """

    def __init__(self, station_id: int, n: int, clock: _OrchestraClock) -> None:
        super().__init__(station_id, n, clock)
        # Receive schedules taught by each conductor: ``active`` applies to
        # that conductor's current season, ``next`` is being taught now and
        # applies to its next season.
        self._active_receive: dict[int, frozenset[int]] = {}
        self._next_receive: dict[int, frozenset[int]] = {}
        # Conductor-only state.
        self._current_schedule: dict[int, Packet] = {}
        self._pending_schedule: dict[int, Packet] = {}
        self._scheduled_ids: set[int] = set()
        self._is_big = False
        if clock.conductor == self.station_id:
            self._start_conducting()

    @property
    def clock(self) -> _OrchestraClock:
        """The shared season clock (one source of truth: ``wake_oracle``)."""
        return self.wake_oracle

    # -- season bookkeeping -------------------------------------------------------
    def _start_conducting(self) -> None:
        """Called when this station becomes the conductor of a new season."""
        self._current_schedule = self._pending_schedule
        self._pending_schedule = {}
        old_packets = self.queue.old_packets()
        self._is_big = len(old_packets) >= self.n**2 - 1
        slot = 0
        for packet in old_packets:
            if slot >= self.clock.season_length:
                break
            if packet.packet_id in self._scheduled_ids:
                continue
            self._pending_schedule[slot] = packet
            self._scheduled_ids.add(packet.packet_id)
            slot += 1

    def _on_season_start(self, next_conductor: int) -> None:
        """Clock callback at a season boundary (runs for every station)."""
        # Packets injected into the old conductor during its season become
        # old now; musicians' packets are already old.
        self.queue.age_all()
        # Promote the receive schedule taught during the new conductor's
        # previous season: it applies to the season that starts now.
        self._active_receive[next_conductor] = self._next_receive.pop(
            next_conductor, frozenset()
        )
        if next_conductor == self.station_id:
            self._start_conducting()

    # -- StationController interface --------------------------------------------------
    def wakes(self, round_no: int) -> bool:
        clock = self.clock
        clock.tick(round_no)
        if self.station_id == clock.conductor:
            return True
        r = round_no % clock.season_length
        if clock.musicians_sorted[r] == self.station_id:
            return True
        return r in self._active_receive.get(clock.conductor, frozenset())

    def act(self, round_no: int) -> Message | None:
        clock = self.clock
        if self.station_id != clock.conductor:
            return None
        r = round_no % clock.season_length
        learner = clock.musicians_sorted[r]
        teach_rounds = tuple(
            sorted(
                slot
                for slot, packet in self._pending_schedule.items()
                if packet.destination == learner
            )
        )
        packet = self._current_schedule.get(r)
        control = {"teach": teach_rounds, "big": self._is_big, "learner": learner}
        return self.transmit(
            packet,
            control=control,
            intended_receiver=packet.destination if packet is not None else None,
        )

    def on_heard(self, round_no: int, message: Message, feedback: Feedback) -> None:
        clock = self.clock
        if message.sender != clock.conductor or message.sender == self.station_id:
            return
        if message.control.get("big"):
            clock.big_announced = True
        if message.control.get("learner") == self.station_id:
            taught = frozenset(int(x) for x in message.control.get("teach", ()))
            self._next_receive[clock.conductor] = taught

    def on_inject(self, round_no: int, packet: Packet) -> None:
        if self.station_id == self.clock.conductor:
            # New for the duration of this season; aged at the season end.
            self.queue.push(packet)
        else:
            # A packet injected into a musician becomes old immediately.
            self.queue.push_old(packet)

    def after_feedback(self, round_no: int, feedback: Feedback) -> None:
        if self.station_id == self.clock.conductor:
            # The conductor hears its own big announcements.
            if self._is_big:
                self.clock.big_announced = True


class _OrchestraBlockDriver(RoundBlockDriver):
    """Restricted compiled-round driver for Orchestra.

    Orchestra is the purest beaconing algorithm in the suite: the
    conductor transmits its teach/big control message in **every** round
    of its season, packets or not, so there are no silent rounds and the
    silence invariant is meaningless — the driver sets
    ``relies_on_silence_invariant = False`` and the engine calls the
    conductor's ``act`` unconditionally.

    Unlike Count-Hop, Orchestra has no adaptive phase to decline: the
    round's sole transmitter is always the season's conductor (agreed by
    every station through the shared baton-list clock), and the season
    transitions — including the big-conductor move-to-front — are driven
    by the clock tick the engine already issues once per round.  Every
    block compiles.
    """

    relies_on_silence_invariant = False

    def __init__(self, controllers: "list[_OrchestraController]") -> None:
        super().__init__(len(controllers))
        self._controllers = controllers
        self._clock = controllers[0].clock

    # -- per-round protocol ----------------------------------------------------
    def transmitter(self, t: int) -> int:
        return self._clock.conductor

    def silent_round(self, t: int) -> None:
        # Unreachable in practice: the conductor beacons every round.
        pass

    def heard_round(self, t: int, sender: int, message: Message) -> tuple[int, ...]:
        clock = self._clock
        controllers = self._controllers
        changed: tuple[int, ...] = ()
        conductor_ctrl = controllers[sender]
        if conductor_ctrl._in_flight is not None:
            conductor_ctrl.queue.remove(conductor_ctrl._in_flight)
            conductor_ctrl._in_flight = None
            changed = (sender,)
        control = message.control
        # Every awake listener mirrors the big-status toggle into the
        # shared clock (the conductor itself does so in after_feedback
        # with the identical value), and the round's learner stores the
        # taught receive schedule for the conductor's next season.
        if control.get("big"):
            clock.big_announced = True
        learner = control.get("learner")
        if learner is not None and learner != sender:
            controllers[learner]._next_receive[sender] = frozenset(
                int(x) for x in control.get("teach", ())
            )
        return changed


@register_algorithm("orchestra")
class Orchestra(RoutingAlgorithm):
    """The Orchestra algorithm of Section 3.1 (energy cap 3, throughput 1)."""

    name = "Orchestra"

    def build_controllers(self) -> list[_OrchestraController]:
        clock = _OrchestraClock(self.n)
        controllers = [_OrchestraController(i, self.n, clock) for i in range(self.n)]
        clock.attach(controllers)
        driver = _OrchestraBlockDriver(controllers)
        for ctrl in controllers:
            ctrl.block_driver = driver
        return controllers

    def properties(self) -> AlgorithmProperties:
        return AlgorithmProperties(
            name=self.name,
            energy_cap=3,
            oblivious=False,
            direct=True,
            plain_packet=False,
        )

    # -- analytical quantities used by tests and the analysis module ----------------
    def queue_bound(self, beta: float) -> float:
        """The queue bound ``2 n^3 + beta`` of Theorem 1."""
        return 2 * self.n**3 + beta
