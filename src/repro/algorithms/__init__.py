"""The six routing algorithms of the paper plus registry-backed construction.

====================  =======  ==========================  ==============
Algorithm             Section  Class (Table 1 tag)         Energy cap
====================  =======  ==========================  ==============
Orchestra             3.1      NObl-Gen-Dir                3
Count-Hop             4.1      NObl-Gen-Dir                2
Adjust-Window         4.2      NObl-PP-Ind                 2
k-Cycle               5        Obl-PP-Ind                  k
k-Clique              6        Obl-PP-Dir                  k
k-Subsets             6        Obl-Gen-Dir                 k
====================  =======  ==========================  ==============

The uncapped prior-work baselines (RRW, OF-RRW, MBTF) live in
:mod:`repro.protocols`.
"""

from .adjust_window import AdjustWindow, WindowLayout, initial_window_size
from .count_hop import CountHop
from .k_clique import KClique, clique_pairs, half_groups
from .k_cycle import KCycle, activity_segment_length, cycle_groups
from .k_subsets import KSubsets
from .orchestra import Orchestra

__all__ = [
    "AdjustWindow",
    "CountHop",
    "KClique",
    "KCycle",
    "KSubsets",
    "Orchestra",
    "WindowLayout",
    "activity_segment_length",
    "clique_pairs",
    "cycle_groups",
    "half_groups",
    "initial_window_size",
]
