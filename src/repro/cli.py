"""Command-line interface.

Provides quick access to the library from a shell::

    python -m repro list
    python -m repro run --algorithm k-cycle --n 9 --k 3 --rho 0.15 --rounds 20000
    python -m repro table1 [--full] [--workers N]
    python -m repro sweep --algorithm count-hop --n 6 --rates 0.2,0.4,0.6,0.8 --workers 4

The CLI is a thin wrapper over :mod:`repro.sim`; anything beyond a quick
look should use the Python API directly.  ``--workers N`` fans independent
runs out over N spawn-safe worker processes with results bit-identical to
the serial path, and ``--cache-dir`` reuses finished runs across
invocations (defaults to ``~/.cache/repro-sim`` when ``--cache`` is set).

The distributed trio turns the harness into a service::

    python -m repro serve  --queue-dir Q --cache-dir C --port 8750
    python -m repro worker --queue-dir Q &   # any number, any machine
    python -m repro submit --server http://host:8750 --algorithm rrw --n 8 ...

``serve`` shards submitted batches into a lease-based work queue,
``worker`` processes claim/execute/heartbeat them (crash-safe: expired
leases are stolen and finished idempotently against the shared cache),
and ``submit`` posts a sweep and streams progress until the results are
in.  ``sweep --shard i/k`` is the manual alternative: a deterministic
spec-hash partition for splitting one sweep across machines by hand.

Workers can also run with **no shared filesystem**: ``repro worker
--server URL`` claims shards and heartbeats leases over HTTP, and
publishes results to the server's cache endpoints (``--cache-url``
defaults to the server).  Every RPC goes through a resilient client —
timeouts, deterministic retry/backoff, a circuit breaker that degrades
to a local spill cache and reconciles on recovery — and both sides can
deterministically inject network faults (``--fault-net-*``) for testing.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .adversary.stochastic import SeededAdversary
from .core import available_algorithms
from .metrics.summary import RunSummary
from .sim import (
    ExecutionPolicy,
    FaultPlan,
    ParallelExecutor,
    ProgressTicker,
    ResultCache,
    RunSpec,
    SweepManifest,
    run_simulation,
    run_worker,
    spec_fragment,
    sweep,
)
from .sim.faults import mark_worker_process
from .sim.runner import ENGINE_KINDS
from .sim.reporting import sweep_table
from .sim.specs import (
    adversary_entry,
    materialize_adversary,
    materialize_algorithm,
    rate_adversaries,
)

__all__ = ["main", "build_parser"]


def _algorithm_fragment(name: str, n: int, k: int | None) -> dict:
    """Declarative algorithm fragment, passing k only where it applies."""
    if name in ("k-cycle", "k-clique", "k-subsets"):
        if k is None:
            raise SystemExit(f"algorithm {name!r} requires --k")
        return spec_fragment(name, n=n, k=k)
    return spec_fragment(name, n=n)


def _effective_seed(name: str, seed: int | None) -> int | None:
    """Return ``seed`` if the adversary is stochastic, warning (once) if not."""
    if seed is None:
        return None
    try:
        entry = adversary_entry(name)
    except KeyError as exc:
        raise SystemExit(str(exc)) from exc
    if issubclass(entry.cls, SeededAdversary):
        return seed
    print(
        f"warning: adversary {name!r} is deterministic; --seed ignored",
        file=sys.stderr,
    )
    return None


def _adversary_fragment(name: str, rho: float, beta: float, seed: int | None) -> dict:
    params: dict = {"rho": rho, "beta": beta}
    if seed is not None:
        params["seed"] = seed
    return spec_fragment(name, **params)


def _worker_count(text: str) -> int:
    try:
        value = int(text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"invalid int value: {text!r}") from exc
    if value < 1:
        raise argparse.ArgumentTypeError("workers must be at least 1")
    return value


def _cache_from_args(args: argparse.Namespace) -> ResultCache | None:
    if getattr(args, "cache_dir", None):
        return ResultCache(args.cache_dir)
    if getattr(args, "cache", False):
        return ResultCache()
    return None


def _parse_shard(text: str) -> tuple[int, int]:
    """Parse ``i/k`` into a (index, total) shard selector."""
    try:
        index_text, total_text = text.split("/", 1)
        index, total = int(index_text), int(total_text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(
            f"invalid shard {text!r}: expected i/k (e.g. 0/4)"
        ) from exc
    if total < 1 or not 0 <= index < total:
        raise argparse.ArgumentTypeError(
            f"invalid shard {text!r}: need 0 <= i < k"
        )
    return index, total


def _fault_plan_from_args(args: argparse.Namespace) -> FaultPlan | None:
    """Build the process's injection plan; None when every rate is zero.

    Worker processes read both the worker coins (kill/lease/transient)
    and the client-side network coins; ``repro serve`` builds its plan
    from the network rates alone (server-side injection).
    """
    plan = FaultPlan(
        seed=args.fault_seed,
        kill_rate=getattr(args, "fault_kill_rate", 0.0),
        transient_rate=getattr(args, "fault_transient_rate", 0.0),
        lease_death_rate=getattr(args, "fault_lease_rate", 0.0),
        net_refuse_rate=getattr(args, "fault_net_refuse_rate", 0.0),
        net_timeout_rate=getattr(args, "fault_net_timeout_rate", 0.0),
        net_torn_rate=getattr(args, "fault_net_torn_rate", 0.0),
        net_http_error_rate=getattr(args, "fault_net_error_rate", 0.0),
        net_corrupt_rate=getattr(args, "fault_net_corrupt_rate", 0.0),
        stall_seconds=getattr(args, "fault_stall_seconds", 1.0),
        fault_budget=args.fault_budget,
    )
    return plan if (plan.active or plan.net_active) else None


def _add_net_fault_args(parser: argparse.ArgumentParser) -> None:
    """The deterministic network-fault injection knobs (worker + serve)."""
    parser.add_argument("--fault-net-refuse-rate", type=float, default=0.0,
                        help="injected probability of a refused connection")
    parser.add_argument("--fault-net-timeout-rate", type=float, default=0.0,
                        help="injected probability of a request timeout/stall")
    parser.add_argument("--fault-net-torn-rate", type=float, default=0.0,
                        help="injected probability of a torn (truncated) response")
    parser.add_argument("--fault-net-error-rate", type=float, default=0.0,
                        help="injected probability of an HTTP 500")
    parser.add_argument("--fault-net-corrupt-rate", type=float, default=0.0,
                        help="injected probability of a bit-flipped body")
    parser.add_argument("--fault-stall-seconds", type=float, default=1.0,
                        help="how long an injected net timeout/stall lasts")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Energy-capped adversarial routing on multiple access channels "
        "(reproduction of Chlebus et al., SPAA 2019).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the available algorithms and adversaries")

    run_p = sub.add_parser("run", help="run one algorithm against one adversary")
    run_p.add_argument("--algorithm", required=True, choices=available_algorithms())
    run_p.add_argument("--n", type=int, required=True, help="number of stations")
    run_p.add_argument("--k", type=int, default=None, help="energy cap (oblivious algorithms)")
    run_p.add_argument("--adversary", default="spray", choices=rate_adversaries())
    run_p.add_argument("--rho", type=float, default=0.5, help="injection rate")
    run_p.add_argument("--beta", type=float, default=2.0, help="burstiness coefficient")
    run_p.add_argument("--rounds", type=int, default=10_000)
    run_p.add_argument("--seed", type=int, default=None,
                       help="RNG seed for stochastic adversaries")
    run_p.add_argument("--engine", default=None, choices=ENGINE_KINDS,
                       help="engine selector (default: auto)")
    run_p.add_argument("--reference-engine", action="store_true",
                       help="shorthand for --engine reference")
    run_p.add_argument("--negotiation", action="store_true",
                       help="print the engine's negotiated-capability report")

    table_p = sub.add_parser("table1", help="regenerate Table 1 (paper vs measured)")
    table_p.add_argument("--full", action="store_true", help="full-size experiments")
    table_p.add_argument("--workers", type=_worker_count, default=1,
                         help="parallel worker processes per adversary family")
    table_p.add_argument("--cache", action="store_true",
                         help="reuse finished runs from the default on-disk cache")
    table_p.add_argument("--cache-dir", default=None,
                         help="reuse finished runs from this cache directory")
    table_p.add_argument("--progress", action="store_true",
                         help="stderr ticker as each adversary family's runs finish")

    sweep_p = sub.add_parser("sweep", help="sweep the injection rate for one algorithm")
    sweep_p.add_argument("--algorithm", required=True, choices=available_algorithms())
    sweep_p.add_argument("--n", type=int, required=True)
    sweep_p.add_argument("--k", type=int, default=None)
    sweep_p.add_argument("--rates", default="0.1,0.3,0.5,0.7,0.9",
                         help="comma-separated injection rates")
    sweep_p.add_argument("--beta", type=float, default=2.0)
    sweep_p.add_argument("--rounds", type=int, default=8_000)
    sweep_p.add_argument("--adversary", default="spray", choices=rate_adversaries())
    sweep_p.add_argument("--seed", type=int, default=None,
                         help="RNG seed for stochastic adversaries")
    sweep_p.add_argument("--workers", type=_worker_count, default=1,
                         help="parallel worker processes (1 = serial fallback)")
    sweep_p.add_argument("--cache", action="store_true",
                         help="reuse finished runs from the default on-disk cache")
    sweep_p.add_argument("--cache-dir", default=None,
                         help="reuse finished runs from this cache directory")
    sweep_p.add_argument("--progress", action="store_true",
                         help="stderr ticker as sweep points finish")
    sweep_p.add_argument("--engine", default=None, choices=ENGINE_KINDS,
                         help="engine selector (default: auto)")
    sweep_p.add_argument("--reference-engine", action="store_true",
                         help="shorthand for --engine reference")
    sweep_p.add_argument("--max-retries", type=int, default=None, metavar="N",
                         help="fault-tolerant mode: retry each failed point up "
                         "to N times (deterministic exponential backoff), then "
                         "quarantine it as a FAILED row instead of aborting "
                         "the sweep; exit status 3 flags quarantined points")
    sweep_p.add_argument("--spec-timeout", type=float, default=None,
                         metavar="SECONDS",
                         help="fault-tolerant mode: kill and retry any point "
                         "running longer than SECONDS (the worker pool is "
                         "respawned; implies supervised execution)")
    sweep_p.add_argument("--manifest", default=None, metavar="PATH",
                         help="write an incrementally-updated checkpoint "
                         "manifest (spec hash -> done/failed/pending, attempt "
                         "counts, fault events) to PATH")
    sweep_p.add_argument("--resume", action="store_true",
                         help="resume from the --manifest checkpoint: points "
                         "it records as failed are skipped without burning a "
                         "new retry budget (done points come back as cache "
                         "hits when --cache/--cache-dir is set)")
    sweep_p.add_argument("--shard", type=_parse_shard, default=None, metavar="i/k",
                         help="run only the points whose canonical spec hash "
                         "falls in shard i of k — a deterministic partition, "
                         "so k machines running shards 0/k..k-1/k against a "
                         "shared --cache-dir cover exactly the full sweep")

    worker_p = sub.add_parser(
        "worker",
        help="claim and execute shards from a distributed sweep queue",
    )
    worker_p.add_argument("--queue-dir", default=None,
                          help="work queue directory (shared with repro serve); "
                          "mutually exclusive with --server")
    worker_p.add_argument("--server", default=None, metavar="URL",
                          help="claim shards over HTTP from this repro serve "
                          "URL instead of a shared queue directory")
    worker_p.add_argument("--cache-url", default=None, metavar="URL",
                          help="publish results to this remote cache "
                          "(default: --server when given); with --server this "
                          "worker needs no shared filesystem at all")
    worker_p.add_argument("--spill-dir", default=None,
                          help="local spill directory for results while the "
                          "remote cache is unreachable (default: a private "
                          "temp dir)")
    worker_p.add_argument("--cache-dir", default=None,
                          help="shared result cache (default: the queue's "
                          "recorded cache dir; ignored with --cache-url)")
    worker_p.add_argument("--rpc-timeout", type=float, default=10.0,
                          help="per-request timeout for remote queue/cache RPCs")
    worker_p.add_argument("--rpc-max-attempts", type=int, default=4,
                          help="attempts per RPC before giving up")
    worker_p.add_argument("--rpc-breaker-threshold", type=int, default=5,
                          help="consecutive RPC failures before the circuit "
                          "opens (fail fast + local spill)")
    worker_p.add_argument("--rpc-breaker-reset", type=float, default=1.0,
                          help="seconds before an open circuit admits a probe")
    worker_p.add_argument("--owner", default=None,
                          help="lease owner name (default: worker-<pid>)")
    worker_p.add_argument("--poll", type=float, default=0.2,
                          help="seconds between claim attempts when idle")
    worker_p.add_argument("--max-idle", type=float, default=None,
                          help="exit after this many idle seconds "
                          "(default: wait forever)")
    worker_p.add_argument("--exit-when-drained", action="store_true",
                          help="exit as soon as no shard is pending or leased")
    worker_p.add_argument("--wait-for-queue", type=float, default=0.0,
                          metavar="SECONDS",
                          help="wait up to SECONDS for the queue to be created "
                          "before opening it")
    worker_p.add_argument("--max-retries", type=int, default=2,
                          help="per-spec retry budget inside this worker")
    worker_p.add_argument("--fault-seed", type=int, default=0,
                          help="fault-injection seed (testing)")
    worker_p.add_argument("--fault-kill-rate", type=float, default=0.0,
                          help="injected probability this worker hard-exits "
                          "mid-spec (testing; the shard's lease expires and "
                          "is stolen)")
    worker_p.add_argument("--fault-lease-rate", type=float, default=0.0,
                          help="injected probability this worker abandons a "
                          "claimed shard without heartbeating (testing)")
    worker_p.add_argument("--fault-transient-rate", type=float, default=0.0,
                          help="injected probability of a retryable exception "
                          "per attempt (testing)")
    worker_p.add_argument("--fault-budget", type=int, default=1,
                          help="max faulted attempts per spec across the "
                          "whole fleet")
    _add_net_fault_args(worker_p)

    serve_p = sub.add_parser(
        "serve",
        help="HTTP front end: accept spec batches, shard them into the queue, "
        "stream progress",
    )
    serve_p.add_argument("--queue-dir", required=True,
                         help="work queue directory (shared with repro worker)")
    serve_p.add_argument("--cache-dir", default=None,
                         help="shared result cache "
                         "(default: ~/.cache/repro-sim or $REPRO_CACHE_DIR)")
    serve_p.add_argument("--host", default="127.0.0.1")
    serve_p.add_argument("--port", type=int, default=8750,
                         help="listen port (0 = ephemeral, printed on boot)")
    serve_p.add_argument("--lease-ttl", type=float, default=15.0,
                         help="seconds before an unrenewed worker lease may "
                         "be stolen")
    serve_p.add_argument("--shard-size", type=int, default=4,
                         help="specs per work-queue shard")
    serve_p.add_argument("--fallback-after", type=float, default=2.0,
                         help="seconds of stalled progress with no live lease "
                         "before the server executes shards itself")
    serve_p.add_argument("--fault-seed", type=int, default=0,
                         help="server-side network fault-injection seed (testing)")
    serve_p.add_argument("--fault-budget", type=int, default=1,
                         help="max injected net faults per request key")
    _add_net_fault_args(serve_p)

    submit_p = sub.add_parser(
        "submit",
        help="submit a sweep to a repro serve instance and wait for results",
    )
    submit_p.add_argument("--server", required=True,
                          help="base URL of the repro serve instance")
    submit_p.add_argument("--algorithm", required=True,
                          choices=available_algorithms())
    submit_p.add_argument("--n", type=int, required=True)
    submit_p.add_argument("--k", type=int, default=None)
    submit_p.add_argument("--rates", default="0.1,0.3,0.5,0.7,0.9",
                          help="comma-separated injection rates")
    submit_p.add_argument("--beta", type=float, default=2.0)
    submit_p.add_argument("--rounds", type=int, default=8_000)
    submit_p.add_argument("--adversary", default="spray",
                          choices=rate_adversaries())
    submit_p.add_argument("--seed", type=int, default=None,
                          help="RNG seed for stochastic adversaries")
    submit_p.add_argument("--engine", default=None, choices=ENGINE_KINDS,
                          help="engine selector (default: auto)")
    submit_p.add_argument("--shard-size", type=int, default=None,
                          help="override the server's specs-per-shard")
    submit_p.add_argument("--timeout", type=float, default=300.0,
                          help="seconds to wait for the job to complete")
    submit_p.add_argument("--progress", action="store_true",
                          help="stderr line per streamed progress snapshot")
    return parser


def _cmd_list() -> int:
    print("algorithms:")
    for name in available_algorithms():
        print(f"  {name}")
    print("adversaries:")
    for name in rate_adversaries():
        print(f"  {name}")
    return 0


def _engine_from_args(args: argparse.Namespace) -> str:
    explicit = getattr(args, "engine", None)
    reference = getattr(args, "reference_engine", False)
    if explicit is not None:
        if reference and explicit != "reference":
            raise SystemExit(
                f"--reference-engine conflicts with --engine {explicit}"
            )
        return explicit
    return "reference" if reference else "auto"


def _cmd_run(args: argparse.Namespace) -> int:
    seed = _effective_seed(args.adversary, args.seed)
    algorithm = materialize_algorithm(_algorithm_fragment(args.algorithm, args.n, args.k))
    adversary = materialize_adversary(
        _adversary_fragment(args.adversary, args.rho, args.beta, seed), algorithm
    )
    result = run_simulation(
        algorithm, adversary, args.rounds, engine=_engine_from_args(args)
    )
    if args.negotiation:
        print(f"engine: {result.engine_used}")
        if result.negotiation is None:
            print("  (reference engine: no capability negotiation)")
        else:
            for key, value in result.negotiation.items():
                if key == "block_decline_reasons" and value:
                    # Per-driver decline reasons: one line per reason so
                    # the *why* of each kernel fallback is readable, not
                    # just the fallback count.
                    print(f"  {key}:")
                    for reason, count in sorted(value.items()):
                        print(f"    {count}x {reason}")
                else:
                    print(f"  {key}: {value}")
    print(RunSummary.header())
    print(result.summary.format_row())
    return 0 if result.stable else 2


def _cmd_table1(args: argparse.Namespace) -> int:
    from .sim.experiments import regenerate_table1

    table, results = regenerate_table1(
        quick=not args.full,
        workers=args.workers,
        cache=_cache_from_args(args),
        progress=ProgressTicker("table1 runs") if args.progress else None,
    )
    print(table)
    return 0 if all(r.shape_ok for r in results) else 1


def _cmd_sweep(args: argparse.Namespace) -> int:
    rates = [float(x) for x in args.rates.split(",") if x]
    seed = _effective_seed(args.adversary, args.seed)

    if args.resume and not args.manifest:
        raise SystemExit("--resume requires --manifest PATH")
    policy = None
    if args.max_retries is not None or args.spec_timeout is not None:
        policy_kwargs: dict = {}
        if args.max_retries is not None:
            policy_kwargs["max_retries"] = args.max_retries
        if args.spec_timeout is not None:
            policy_kwargs["spec_timeout"] = args.spec_timeout
        try:
            policy = ExecutionPolicy(**policy_kwargs)
        except ValueError as exc:
            raise SystemExit(str(exc)) from exc
    manifest = SweepManifest(args.manifest, resume=args.resume) if args.manifest else None

    supervised = policy is not None or manifest is not None
    with ParallelExecutor(
        args.workers,
        cache=_cache_from_args(args),
        policy=policy,
        manifest=manifest,
    ) as executor:
        ticker = None
        if args.progress:
            # Supervised sweeps append live retry/quarantine/timeout
            # counters to the ticker line.
            stats = executor.stats.summary if supervised else None
            ticker = ProgressTicker("sweep points", stats=stats)
        series = sweep(
            args.algorithm,
            "rho",
            rates,
            lambda rho: _algorithm_fragment(args.algorithm, args.n, args.k),
            lambda rho: _adversary_fragment(args.adversary, rho, args.beta, seed),
            args.rounds,
            executor=executor,
            engine=_engine_from_args(args),
            progress=ticker,
            shard=args.shard,
        )
    print(sweep_table(series))
    failed = series.failed_points()
    if failed:
        print(
            f"warning: {len(failed)} point(s) quarantined after exhausting "
            "retries; see the FAILED rows above"
            + (f" and the manifest at {args.manifest}" if args.manifest else ""),
            file=sys.stderr,
        )
        return 3
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    from .sim.netclient import RpcPolicy

    if (args.queue_dir is None) == (args.server is None):
        raise SystemExit("exactly one of --queue-dir or --server is required")
    try:
        fault_plan = _fault_plan_from_args(args)
        policy = ExecutionPolicy(max_retries=args.max_retries)
        rpc_policy = RpcPolicy(
            timeout=args.rpc_timeout,
            max_attempts=args.rpc_max_attempts,
            breaker_threshold=args.rpc_breaker_threshold,
            breaker_reset=args.rpc_breaker_reset,
            seed=args.fault_seed,
        )
    except ValueError as exc:
        raise SystemExit(str(exc)) from exc
    # Injected kill coins must take down the whole worker process (a real
    # crash, so the lease expires and the shard is stolen) — exactly what
    # they do to pool workers in a local supervised sweep.
    mark_worker_process()
    stats = run_worker(
        args.queue_dir,
        server_url=args.server,
        cache_url=args.cache_url,
        spill_dir=args.spill_dir,
        rpc_policy=rpc_policy,
        cache_dir=args.cache_dir,
        owner=args.owner,
        policy=policy,
        fault_plan=fault_plan,
        poll=args.poll,
        max_idle=args.max_idle,
        exit_when_drained=args.exit_when_drained,
        wait_for_queue=args.wait_for_queue,
    )
    print(f"worker done: {stats.summary()}", file=sys.stderr)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .sim import SweepService, make_server

    service = SweepService(
        args.queue_dir,
        args.cache_dir,
        lease_ttl=args.lease_ttl,
        shard_size=args.shard_size,
        fallback_after=args.fallback_after,
        fault_plan=_fault_plan_from_args(args),
    )
    server = make_server(service, args.host, args.port)
    host, port = server.server_address[:2]
    print(f"repro serve listening on http://{host}:{port}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        service.close()
        server.server_close()
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    from .sim.service import fetch_results, submit_batch, wait_for_job

    rates = [float(x) for x in args.rates.split(",") if x]
    seed = _effective_seed(args.adversary, args.seed)
    specs = [
        RunSpec.from_fragments(
            _algorithm_fragment(args.algorithm, args.n, args.k),
            _adversary_fragment(args.adversary, rho, args.beta, seed),
            args.rounds,
            label=f"{args.algorithm}[rho={rho}]",
            engine=_engine_from_args(args),
        ).to_dict()
        for rho in rates
    ]

    def on_progress(snap: dict) -> None:
        if args.progress:
            print(
                f"job {snap['job']}: {snap['done']}/{snap['total']} done, "
                f"{snap['failed']} failed",
                file=sys.stderr,
            )

    try:
        job = submit_batch(args.server, specs, shard_size=args.shard_size)
        wait_for_job(
            args.server, job["job"], timeout=args.timeout, on_progress=on_progress
        )
        results = fetch_results(args.server, job["job"])
    except (OSError, TimeoutError, ValueError, KeyError) as exc:
        raise SystemExit(f"submit failed: {exc}") from exc

    print(RunSummary.header())
    failed = 0
    for record in results:
        if record["status"] == "done":
            print(RunSummary(**record["summary"]).format_row())
        else:
            failed += 1
            detail = record.get("error", "result missing")
            print(f"{record['label']}: FAILED ({detail})")
    if failed:
        print(
            f"warning: {failed} point(s) failed on the service; "
            "see the FAILED rows above",
            file=sys.stderr,
        )
        return 3
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point of ``python -m repro``."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "table1":
        return _cmd_table1(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "worker":
        return _cmd_worker(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "submit":
        return _cmd_submit(args)
    raise SystemExit(f"unknown command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
