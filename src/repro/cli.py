"""Command-line interface.

Provides quick access to the library from a shell::

    python -m repro list
    python -m repro run --algorithm k-cycle --n 9 --k 3 --rho 0.15 --rounds 20000
    python -m repro table1 [--full]
    python -m repro sweep --algorithm count-hop --n 6 --rates 0.2,0.4,0.6,0.8

The CLI is a thin wrapper over :mod:`repro.sim`; anything beyond a quick
look should use the Python API directly.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .adversary import (
    Adversary,
    BurstThenIdleAdversary,
    RoundRobinAdversary,
    SingleSourceSprayAdversary,
    SingleTargetAdversary,
    UniformRandomAdversary,
)
from .core import available_algorithms, make_algorithm
from .metrics.summary import RunSummary
from .sim import run_simulation, sweep
from .sim.reporting import sweep_table

__all__ = ["main", "build_parser"]

ADVERSARIES = {
    "single-target": SingleTargetAdversary,
    "spray": SingleSourceSprayAdversary,
    "round-robin": RoundRobinAdversary,
    "bursty": BurstThenIdleAdversary,
    "random": UniformRandomAdversary,
}


def _make_algorithm(name: str, n: int, k: int | None):
    """Instantiate a registry algorithm, passing k only where it applies."""
    if name in ("k-cycle", "k-clique", "k-subsets"):
        if k is None:
            raise SystemExit(f"algorithm {name!r} requires --k")
        return make_algorithm(name, n=n, k=k)
    return make_algorithm(name, n=n)


def _make_adversary(name: str, rho: float, beta: float) -> Adversary:
    try:
        factory = ADVERSARIES[name]
    except KeyError as exc:
        raise SystemExit(
            f"unknown adversary {name!r}; choose from {sorted(ADVERSARIES)}"
        ) from exc
    return factory(rho, beta)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Energy-capped adversarial routing on multiple access channels "
        "(reproduction of Chlebus et al., SPAA 2019).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the available algorithms and adversaries")

    run_p = sub.add_parser("run", help="run one algorithm against one adversary")
    run_p.add_argument("--algorithm", required=True, choices=available_algorithms())
    run_p.add_argument("--n", type=int, required=True, help="number of stations")
    run_p.add_argument("--k", type=int, default=None, help="energy cap (oblivious algorithms)")
    run_p.add_argument("--adversary", default="spray", choices=sorted(ADVERSARIES))
    run_p.add_argument("--rho", type=float, default=0.5, help="injection rate")
    run_p.add_argument("--beta", type=float, default=2.0, help="burstiness coefficient")
    run_p.add_argument("--rounds", type=int, default=10_000)

    table_p = sub.add_parser("table1", help="regenerate Table 1 (paper vs measured)")
    table_p.add_argument("--full", action="store_true", help="full-size experiments")

    sweep_p = sub.add_parser("sweep", help="sweep the injection rate for one algorithm")
    sweep_p.add_argument("--algorithm", required=True, choices=available_algorithms())
    sweep_p.add_argument("--n", type=int, required=True)
    sweep_p.add_argument("--k", type=int, default=None)
    sweep_p.add_argument("--rates", default="0.1,0.3,0.5,0.7,0.9",
                         help="comma-separated injection rates")
    sweep_p.add_argument("--beta", type=float, default=2.0)
    sweep_p.add_argument("--rounds", type=int, default=8_000)
    sweep_p.add_argument("--adversary", default="spray", choices=sorted(ADVERSARIES))
    return parser


def _cmd_list() -> int:
    print("algorithms:")
    for name in available_algorithms():
        print(f"  {name}")
    print("adversaries:")
    for name in sorted(ADVERSARIES):
        print(f"  {name}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    algorithm = _make_algorithm(args.algorithm, args.n, args.k)
    adversary = _make_adversary(args.adversary, args.rho, args.beta)
    result = run_simulation(algorithm, adversary, args.rounds)
    print(RunSummary.header())
    print(result.summary.format_row())
    return 0 if result.stable else 2


def _cmd_table1(args: argparse.Namespace) -> int:
    from .sim.experiments import regenerate_table1

    table, results = regenerate_table1(quick=not args.full)
    print(table)
    return 0 if all(r.shape_ok for r in results) else 1


def _cmd_sweep(args: argparse.Namespace) -> int:
    rates = [float(x) for x in args.rates.split(",") if x]
    series = sweep(
        args.algorithm,
        "rho",
        rates,
        lambda rho: _make_algorithm(args.algorithm, args.n, args.k),
        lambda rho: _make_adversary(args.adversary, rho, args.beta),
        args.rounds,
    )
    print(sweep_table(series))
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point of ``python -m repro``."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "table1":
        return _cmd_table1(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    raise SystemExit(f"unknown command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
