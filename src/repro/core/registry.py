"""Algorithm registry.

Maps canonical algorithm names to constructor callables so that sweeps,
benchmarks and the examples can instantiate algorithms from strings
(e.g. ``make_algorithm("k-cycle", n=12, k=4)``).
"""

from __future__ import annotations

from typing import Callable

from .algorithm import RoutingAlgorithm

__all__ = ["register_algorithm", "make_algorithm", "available_algorithms"]

_REGISTRY: dict[str, Callable[..., RoutingAlgorithm]] = {}


def register_algorithm(name: str) -> Callable[[type], type]:
    """Class decorator registering a :class:`RoutingAlgorithm` under ``name``."""

    def decorator(cls: type) -> type:
        key = name.lower()
        if key in _REGISTRY:
            raise ValueError(f"algorithm name {name!r} already registered")
        _REGISTRY[key] = cls
        return cls

    return decorator


def make_algorithm(name: str, **kwargs) -> RoutingAlgorithm:
    """Instantiate a registered algorithm by name."""
    key = name.lower()
    if key not in _REGISTRY:
        raise KeyError(
            f"unknown algorithm {name!r}; available: {sorted(_REGISTRY)}"
        )
    return _REGISTRY[key](**kwargs)


def available_algorithms() -> list[str]:
    """Names of all registered algorithms, sorted."""
    return sorted(_REGISTRY)
