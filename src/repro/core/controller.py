"""Reusable controller base with a station-local packet queue.

Most algorithm controllers share the same skeleton: injected packets land
in a :class:`~repro.core.queues.PacketQueue`, a successfully heard own
transmission removes the transmitted packet, hearing a packet addressed to
someone else may lead to adopting it (relaying).  ``QueueingController``
factors that skeleton out so that the per-algorithm controllers only
contain protocol logic.
"""

from __future__ import annotations

from ..channel.feedback import Feedback
from ..channel.message import Message
from ..channel.packet import Packet
from ..channel.station import StationController
from .queues import PacketQueue

__all__ = ["QueueingController"]


class QueueingController(StationController):
    """Station controller with a local queue and standard bookkeeping.

    Subclasses implement :meth:`wakes`, :meth:`act` and (optionally)
    :meth:`on_heard`.  The base class:

    * enqueues injected packets (:meth:`on_inject`);
    * remembers the packet attached to the message the subclass chose to
      transmit (:meth:`transmit`) and removes it from the queue once the
      transmission is confirmed heard — per Section 2 a packet may be
      removed from the transmitter's queue once it is heard on the
      channel;
    * dispatches heard messages to :meth:`on_heard`.
    """

    def __init__(self, station_id: int, n: int) -> None:
        super().__init__(station_id, n)
        self.queue = PacketQueue()
        self._in_flight: Packet | None = None

    # -- helpers for subclasses -------------------------------------------------
    def transmit(
        self,
        packet: Packet | None,
        control: dict | None = None,
        intended_receiver: int | None = None,
    ) -> Message:
        """Build a message from this station and track its packet as in-flight.

        The packet (if any) stays in the queue until the channel feedback
        confirms it was heard; a collision therefore leaves the queue
        untouched.
        """
        self._in_flight = packet
        return Message(
            sender=self.station_id,
            packet=packet,
            control=control or {},
            intended_receiver=intended_receiver,
        )

    # -- StationController plumbing ----------------------------------------------
    def on_inject(self, round_no: int, packet: Packet) -> None:
        self.queue.push(packet)

    def queued_packets(self) -> int:
        return len(self.queue)

    def on_feedback(self, round_no: int, feedback: Feedback) -> None:
        if feedback.heard and feedback.message is not None:
            message = feedback.message
            if message.sender == self.station_id:
                # Own transmission confirmed: drop the in-flight packet.
                if self._in_flight is not None:
                    self.queue.remove(self._in_flight)
            else:
                packet = message.packet
                if packet is not None and packet.destination == self.station_id:
                    # Delivered to us; the engine records the delivery, we
                    # simply do not adopt the packet.
                    pass
            self.on_heard(round_no, message, feedback)
        elif feedback.collision:
            self.on_collision(round_no)
        else:
            self.on_silence(round_no)
        self._in_flight = None
        self.after_feedback(round_no, feedback)

    # -- protocol hooks (subclasses override what they need) -----------------------
    def on_heard(self, round_no: int, message: Message, feedback: Feedback) -> None:
        """A message was heard on the channel this round."""

    def on_collision(self, round_no: int) -> None:
        """Two or more stations transmitted simultaneously."""

    def on_silence(self, round_no: int) -> None:
        """Nobody transmitted this round."""

    def after_feedback(self, round_no: int, feedback: Feedback) -> None:
        """Called after the specific outcome hook, for shared end-of-round work."""

    # -- relay helper -----------------------------------------------------------------
    def adopt(self, packet: Packet, *, as_old: bool = False) -> None:
        """Adopt a packet heard on the channel (become its relay)."""
        if packet.destination == self.station_id:
            raise ValueError("a station never adopts a packet addressed to itself")
        if as_old:
            self.queue.push_old(packet)
        else:
            self.queue.push(packet)
