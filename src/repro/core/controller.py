"""Reusable controller base with a station-local packet queue.

Most algorithm controllers share the same skeleton: injected packets land
in a :class:`~repro.core.queues.PacketQueue`, a successfully heard own
transmission removes the transmitted packet, hearing a packet addressed to
someone else may lead to adopting it (relaying).  ``QueueingController``
factors that skeleton out so that the per-algorithm controllers only
contain protocol logic.
"""

from __future__ import annotations

from ..channel.feedback import ChannelOutcome, Feedback
from ..channel.message import Message
from ..channel.packet import Packet
from ..channel.station import StationController
from .queues import PacketQueue
from .schedule import WakeOracle

__all__ = ["QueueingController", "TickedQueueingController"]


class QueueingController(StationController):
    """Station controller with a local queue and standard bookkeeping.

    Subclasses implement :meth:`wakes`, :meth:`act` and (optionally)
    :meth:`on_heard`.  The base class:

    * enqueues injected packets (:meth:`on_inject`);
    * remembers the packet attached to the message the subclass chose to
      transmit (:meth:`transmit`) and removes it from the queue once the
      transmission is confirmed heard — per Section 2 a packet may be
      removed from the transmitter's queue once it is heard on the
      channel;
    * dispatches heard messages to :meth:`on_heard`.
    """

    #: Queueing controllers only remove a packet when its transmission is
    #: confirmed heard, and only adopt packets they hear — so the queue
    #: size never changes on silent or collision rounds.  Subclasses that
    #: break this (dropping packets on collision, requeueing on silence)
    #: must reset the flag.
    queue_changes_on_heard_only = True

    def __init__(self, station_id: int, n: int) -> None:
        super().__init__(station_id, n)
        self.queue = PacketQueue()
        self._in_flight: Packet | None = None
        # Pre-resolve which protocol hooks the subclass actually overrides
        # so the per-round dispatch skips no-op calls (feedback delivery is
        # the hottest controller path: once per awake station per round).
        cls = type(self)
        self._heard_hook = (
            self.on_heard if cls.on_heard is not QueueingController.on_heard else None
        )
        self._collision_hook = (
            self.on_collision
            if cls.on_collision is not QueueingController.on_collision
            else None
        )
        self._silence_hook = (
            self.on_silence
            if cls.on_silence is not QueueingController.on_silence
            else None
        )
        self._after_hook = (
            self.after_feedback
            if cls.after_feedback is not QueueingController.after_feedback
            else None
        )

    # -- helpers for subclasses -------------------------------------------------
    def transmit(
        self,
        packet: Packet | None,
        control: dict | None = None,
        intended_receiver: int | None = None,
    ) -> Message:
        """Build a message from this station and track its packet as in-flight.

        The packet (if any) stays in the queue until the channel feedback
        confirms it was heard; a collision therefore leaves the queue
        untouched.
        """
        self._in_flight = packet
        return Message(
            sender=self.station_id,
            packet=packet,
            control=control or {},
            intended_receiver=intended_receiver,
        )

    # -- StationController plumbing ----------------------------------------------
    def on_inject(self, round_no: int, packet: Packet) -> None:
        self.queue.push(packet)

    def queued_packets(self) -> int:
        return self.queue.size()

    def on_feedback(self, round_no: int, feedback: Feedback) -> None:
        # Hot path (once per awake station per round): compare the outcome
        # enum directly instead of going through the Feedback properties,
        # and only call the hooks the subclass overrides.
        outcome = feedback.outcome
        message = feedback.message
        if outcome is ChannelOutcome.HEARD and message is not None:
            if message.sender == self.station_id:
                # Own transmission confirmed: drop the in-flight packet.
                # (A packet addressed to us is consumed by the engine's
                # delivery bookkeeping; we never adopt it.)
                if self._in_flight is not None:
                    self.queue.remove(self._in_flight)
            if self._heard_hook is not None:
                self._heard_hook(round_no, message, feedback)
        elif outcome is ChannelOutcome.COLLISION:
            if self._collision_hook is not None:
                self._collision_hook(round_no)
        elif self._silence_hook is not None:
            self._silence_hook(round_no)
        self._in_flight = None
        if self._after_hook is not None:
            self._after_hook(round_no, feedback)

    # -- protocol hooks (subclasses override what they need) -----------------------
    def on_heard(self, round_no: int, message: Message, feedback: Feedback) -> None:
        """A message was heard on the channel this round."""

    def on_collision(self, round_no: int) -> None:
        """Two or more stations transmitted simultaneously."""

    def on_silence(self, round_no: int) -> None:
        """Nobody transmitted this round."""

    def after_feedback(self, round_no: int, feedback: Feedback) -> None:
        """Called after the specific outcome hook, for shared end-of-round work."""

    # -- relay helper -----------------------------------------------------------------
    def adopt(self, packet: Packet, *, as_old: bool = False) -> None:
        """Adopt a packet heard on the channel (become its relay)."""
        if packet.destination == self.station_id:
            raise ValueError("a station never adopts a packet addressed to itself")
        if as_old:
            self.queue.push_old(packet)
        else:
            self.queue.push(packet)


class TickedQueueingController(QueueingController):
    """Queueing controller with a tick-split wake protocol.

    The per-round state transitions of the algorithm's stage structure
    live in a shared :class:`~repro.core.schedule.WakeOracle` (one per
    run, referenced by every controller); :meth:`tick` delegates to it
    and :meth:`wakes` self-ticks before its pure query, so the stateful
    legacy calling convention (``wakes`` alone, once per station per
    round) keeps working unchanged.
    """

    ticked_wakes = True

    def __init__(self, station_id: int, n: int, wake_oracle: WakeOracle) -> None:
        super().__init__(station_id, n)
        self.wake_oracle = wake_oracle

    def tick(self, round_no: int) -> None:
        self.wake_oracle.tick(round_no)
