"""Core routing-algorithm framework: controllers, queues, schedules, registry."""

from .algorithm import AlgorithmProperties, RoutingAlgorithm
from .blocks import RoundBlockDriver
from .controller import QueueingController, TickedQueueingController
from .queues import PacketQueue
from .registry import available_algorithms, make_algorithm, register_algorithm
from .schedule import AlwaysOnSchedule, ObliviousSchedule, PeriodicSchedule, WakeOracle

__all__ = [
    "AlgorithmProperties",
    "AlwaysOnSchedule",
    "ObliviousSchedule",
    "PacketQueue",
    "PeriodicSchedule",
    "QueueingController",
    "RoundBlockDriver",
    "RoutingAlgorithm",
    "TickedQueueingController",
    "WakeOracle",
    "available_algorithms",
    "make_algorithm",
    "register_algorithm",
]
