"""Oblivious on/off schedules and the ticked wake protocol.

A routing algorithm is *energy oblivious* when it decides in advance, for
every station and every round, whether the station is switched on
(Section 2, "Routing algorithms").  Energy-oblivious algorithms in this
library expose their schedule as an :class:`ObliviousSchedule`, which

* lets the engine-side tests verify that the controllers wake exactly
  when the published schedule says they do,
* lets the schedule-aware lower-bound adversaries of
  :mod:`repro.adversary.adaptive` compute the most starved station / pair,
* provides the schedule statistics (per-station on-fractions, pair
  co-scheduling fractions) used in the analysis of Theorems 6 and 9.

Adaptive algorithms have no fixed-in-advance schedule, but the paper's
state-machine algorithms (Count-Hop, Orchestra, Adjust-Window) advance a
stage structure that is *identical at every station*.  A
:class:`WakeOracle` captures that shared structure as one per-run state
machine: an explicit, idempotent :meth:`WakeOracle.tick` performs the
per-round state transition, after which every controller's ``wakes`` is a
pure query and :meth:`WakeOracle.awake_stations` can answer the whole
awake set in one call — the *ticked* tier of the kernel engine's
capability negotiation, between "static schedule" and "per-station
fallback".
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..channel.station import StationController

__all__ = [
    "ObliviousSchedule",
    "PeriodicSchedule",
    "AlwaysOnSchedule",
    "WakeOracle",
    "rounds_in_congruence_class",
]


def rounds_in_congruence_class(
    start: int, stop: int, modulus: int, residue: int
) -> int:
    """Number of rounds ``t`` in ``[start, stop)`` with ``t % modulus == residue``.

    Closed-form O(1) counting used by the quiescent-span fast-forwards:
    a controller that participates in rounds of one congruence class
    (k-Clique's pair rotation, k-Subsets' threads) advances its replicas
    by this many silent observations instead of looping over the span.
    """
    if stop <= start:
        return 0
    residue %= modulus

    def upto(limit: int) -> int:
        return (limit + modulus - 1 - residue) // modulus

    return upto(stop) - upto(start)


class WakeOracle:
    """Shared per-run wake-protocol state machine (the *ticked* tier).

    One oracle instance is created per execution and referenced by every
    controller of the run (``controller.wake_oracle``).  The contract,
    relied on by :class:`~repro.channel.kernel.KernelEngine`:

    * :meth:`tick` advances the protocol state so that round ``round_no``
      lies inside it.  It is **idempotent** for a given round and is
      invoked after the round's injections and before any station acts —
      either explicitly (kernel, once per round) or implicitly (every
      controller's ``wakes`` ticks first, so the reference engine's
      per-station loop drives the same transitions).
    * After ``tick(t)``, every controller's ``wakes(t)`` is a pure query
      and :meth:`awake_stations` returns exactly the stations whose
      ``wakes(t)`` is True, as an ascending tuple of indices.

    The oracle is a *simulation-level* device: per-round transitions it
    performs on behalf of the stations (queue aging at phase boundaries,
    snapshotting, schedule promotion) are exactly the transitions each
    station's own state machine performed when ``wakes`` was stateful, so
    no station gains information it could not legitimately derive.
    """

    def __init__(self, n: int) -> None:
        if n < 1:
            raise ValueError("wake oracle needs at least one station")
        self.n = n
        self.controllers: "list[StationController]" = []

    def attach(self, controllers: "Sequence[StationController]") -> None:
        """Bind the run's controllers (called once by ``build_controllers``)."""
        self.controllers = list(controllers)

    def tick(self, round_no: int) -> None:
        """Advance shared protocol state to ``round_no`` (idempotent)."""

    def awake_stations(self, round_no: int) -> tuple[int, ...]:
        """Ascending indices of stations awake in ``round_no``.

        Requires ``tick(round_no)`` to have run.  The default loops over
        the attached controllers' (pure) ``wakes``; subclasses override
        with batch awake-set math.
        """
        return tuple(
            i for i, ctrl in enumerate(self.controllers) if ctrl.wakes(round_no)
        )

    # -- quiescent-span protocol (the kernel's fifth negotiation axis) -----
    def advance_span(self, start: int, stop: int) -> None:
        """Advance shared state as if ``tick`` ran for every round in
        ``[start, stop)``.

        Called by the kernel engine when it elides a quiescent span:
        every round in the span was silent with all queues empty, so the
        oracle's transitions over it are a pure function of the round
        window.  The default replays ``tick`` round by round (always
        correct); oracles of silence-invariant algorithms override it
        with an O(1) jump.
        """
        for t in range(start, stop):
            self.tick(t)

    def quiescent_awake_counts(self, start: int, stop: int) -> "np.ndarray | None":
        """Per-round awake counts over a quiescent span, or ``None``.

        Only consulted for spans in which every queue is empty and every
        round is silent, so the counts may assume packet-independent wake
        behaviour.  Returning ``None`` (the default) tells the kernel it
        cannot elide spans on this oracle's run — the ticked tier then
        stays on the per-round loop.
        """
        return None


class ObliviousSchedule(abc.ABC):
    """A fixed-in-advance on/off schedule for ``n`` stations."""

    def __init__(self, n: int) -> None:
        if n < 1:
            raise ValueError("schedule needs at least one station")
        self.n = n

    @abc.abstractmethod
    def is_awake(self, station: int, round_no: int) -> bool:
        """True when ``station`` is switched on in ``round_no``."""

    def awake_set(self, round_no: int) -> frozenset[int]:
        """The set of stations switched on in ``round_no``."""
        return frozenset(i for i in range(self.n) if self.is_awake(i, round_no))

    def periodic_awake_sets(self) -> tuple[tuple[int, ...], ...] | None:
        """One ascending awake tuple per round of the period, if periodic.

        The kernel engine uses this to materialise awake sets in one batch
        (``awake(t) == period[t % len(period)]``) instead of querying
        ``wakes``/``is_awake`` per station per round.  Schedules without a
        finite period return ``None`` and the engine falls back to
        round-by-round wake-up calls.
        """
        return None

    def period_on_count_prefix(self) -> "np.ndarray | None":
        """Per-station on-count prefix sums over one period, if periodic.

        Row ``p`` of the returned ``(period_length + 1, n)`` int64 array
        holds, for every station, the number of on-rounds among the first
        ``p`` rounds of the period (row 0 is all zeros, the last row the
        full-period totals).  This is the per-period series behind the
        kernel engine's batched windowed-view maintenance: a station's
        exact on-count after ``f`` full periods plus ``p`` rounds is
        ``f * prefix[-1] + prefix[p]``, so the view advances its counts
        once per period instead of once per awake station per round.
        Schedules without a finite period return ``None``.
        """
        period = self.periodic_awake_sets()
        if period is None:
            return None
        prefix = np.zeros((len(period) + 1, self.n), dtype=np.int64)
        for t, awake in enumerate(period):
            row = prefix[t + 1]
            row[:] = prefix[t]
            if awake:
                row[list(awake)] += 1
        return prefix

    def periodic_awake_counts(self) -> "np.ndarray | None":
        """Per-round awake counts over one period, if periodic.

        Entry ``p`` of the returned int64 array is
        ``len(periodic_awake_sets()[p])``; aperiodic schedules return
        ``None``.  Cached on the instance — the kernel engine's
        vectorised-energy tier and the block engine's lowered segments
        both consume it, so the period scan runs once per schedule
        instead of once per engine construction.
        """
        counts = getattr(self, "_awake_counts_period", None)
        if counts is None:
            period = self.periodic_awake_sets()
            if period is None:
                return None
            counts = np.fromiter(
                (len(s) for s in period), dtype=np.int64, count=len(period)
            )
            self._awake_counts_period = counts
        return counts

    def awake_matrix(self, start: int, stop: int) -> "np.ndarray | None":
        """Boolean awake matrix for rounds ``[start, stop)``, if periodic.

        Row ``r`` of the ``(stop - start, n)`` array is round
        ``start + r``'s on/off pattern: ``matrix[r, i]`` is True iff
        station ``i`` is switched on.  This is the batch export behind
        the block engine's membership tests (one O(1) cell lookup per
        delivery check instead of an awake-tuple scan) — built once from
        the period and tiled by congruence, so the cost is O(period × n)
        regardless of the window length.  Aperiodic schedules return
        ``None``.
        """
        if stop < start:
            raise ValueError("awake matrix window is reversed")
        period = self.periodic_awake_sets()
        if period is None:
            return None
        base = getattr(self, "_awake_matrix_period", None)
        if base is None:
            base = np.zeros((len(period), self.n), dtype=bool)
            for t, awake in enumerate(period):
                if awake:
                    base[t, list(awake)] = True
            self._awake_matrix_period = base
        idx = np.arange(start, stop, dtype=np.int64) % len(period)
        return base[idx]

    def max_awake(self, horizon: int) -> int:
        """Maximum simultaneously-awake stations over ``[0, horizon)``."""
        return max((len(self.awake_set(t)) for t in range(horizon)), default=0)

    def on_fraction(self, station: int, horizon: int) -> float:
        """Fraction of rounds in ``[0, horizon)`` during which ``station`` is on."""
        if horizon <= 0:
            return 0.0
        on = sum(1 for t in range(horizon) if self.is_awake(station, t))
        return on / horizon

    def pair_on_fraction(self, station_a: int, station_b: int, horizon: int) -> float:
        """Fraction of rounds both stations are simultaneously on."""
        if horizon <= 0:
            return 0.0
        on = sum(
            1
            for t in range(horizon)
            if self.is_awake(station_a, t) and self.is_awake(station_b, t)
        )
        return on / horizon

    def min_on_fraction(self, horizon: int) -> tuple[int, float]:
        """The station with the smallest on-fraction, and that fraction."""
        best = min(
            range(self.n), key=lambda i: self.on_fraction(i, horizon)
        )
        return best, self.on_fraction(best, horizon)

    def min_pair_on_fraction(self, horizon: int) -> tuple[tuple[int, int], float]:
        """The ordered pair with the smallest co-awake fraction, and that fraction."""
        best_pair: tuple[int, int] | None = None
        best_value = float("inf")
        for w in range(self.n):
            for z in range(self.n):
                if w == z:
                    continue
                value = self.pair_on_fraction(w, z, horizon)
                if value < best_value:
                    best_value, best_pair = value, (w, z)
        assert best_pair is not None
        return best_pair, best_value


class PeriodicSchedule(ObliviousSchedule):
    """A schedule given by a finite period of awake sets, repeated forever."""

    def __init__(self, n: int, period_awake_sets: Sequence[Sequence[int]]) -> None:
        super().__init__(n)
        if not period_awake_sets:
            raise ValueError("the period must contain at least one round")
        self.period = [frozenset(s) for s in period_awake_sets]
        for t, awake in enumerate(self.period):
            for station in awake:
                if not 0 <= station < n:
                    raise ValueError(
                        f"round {t} of the period wakes unknown station {station}"
                    )

    @property
    def period_length(self) -> int:
        """Number of rounds in one period."""
        return len(self.period)

    def is_awake(self, station: int, round_no: int) -> bool:
        return station in self.period[round_no % len(self.period)]

    def awake_set(self, round_no: int) -> frozenset[int]:
        return self.period[round_no % len(self.period)]

    def periodic_awake_sets(self) -> tuple[tuple[int, ...], ...]:
        return tuple(tuple(sorted(s)) for s in self.period)

    def max_awake(self, horizon: int | None = None) -> int:
        """Maximum awake stations; over the whole period when ``horizon`` is None."""
        sets = self.period if horizon is None else [
            self.awake_set(t) for t in range(horizon)
        ]
        return max((len(s) for s in sets), default=0)


class AlwaysOnSchedule(ObliviousSchedule):
    """Every station is on in every round (the uncapped classical model)."""

    def is_awake(self, station: int, round_no: int) -> bool:
        return True

    def periodic_awake_sets(self) -> tuple[tuple[int, ...], ...]:
        return (tuple(range(self.n)),)
