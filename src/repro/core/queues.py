"""Station-local packet queues with old/new aging.

Several algorithms in the paper distinguish *old* packets (present before
the current phase / season / window began) from *new* ones (injected
during it) and only route old packets.  :class:`PacketQueue` implements a
FIFO queue with an aging epoch: packets are enqueued as new, and
:meth:`age_all` promotes everything currently queued to old (typically
called at a phase boundary).  The queue also provides the per-destination
counting that Count-Hop, Adjust-Window and Orchestra need to build their
schedules; those counts are maintained incrementally (one dict update per
mutation), so :meth:`count_for` / :meth:`count_old_for` /
:meth:`destinations` are O(1) / O(distinct destinations) instead of a
scan over the whole queue — schedule building polls them once per
(station, destination) pair per stage.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Iterable, Iterator

from ..channel.packet import Packet

__all__ = ["PacketQueue"]


def _bump(table: dict[int, int], destination: int, delta: int) -> None:
    """Adjust one destination's count, dropping zero entries.

    Zero entries are removed so that iterating the table enumerates only
    destinations with at least one live packet (:meth:`destinations`).
    """
    value = table.get(destination, 0) + delta
    if value:
        table[destination] = value
    elif destination in table:
        del table[destination]


class PacketQueue:
    """FIFO packet queue with an old/new distinction.

    Packets are kept in injection/adoption order.  ``old`` packets are the
    ones enqueued before the most recent call to :meth:`age_all`; ``new``
    packets are everything enqueued since.
    """

    def __init__(self) -> None:
        self._old: deque[Packet] = deque()
        self._new: deque[Packet] = deque()
        # Incremental per-destination counters over each store; every
        # mutation below keeps them exact.
        self._old_for: dict[int, int] = {}
        self._new_for: dict[int, int] = {}

    # -- mutation ------------------------------------------------------------
    def push(self, packet: Packet) -> None:
        """Enqueue a packet as *new*."""
        self._new.append(packet)
        _bump(self._new_for, packet.destination, 1)

    def push_old(self, packet: Packet) -> None:
        """Enqueue a packet directly as *old* (used by relays mid-phase)."""
        self._old.append(packet)
        _bump(self._old_for, packet.destination, 1)

    def age_all(self) -> None:
        """Promote every queued packet to *old* (phase boundary)."""
        if not self._new:
            return
        self._old.extend(self._new)
        self._new.clear()
        old_for = self._old_for
        for destination, count in self._new_for.items():
            old_for[destination] = old_for.get(destination, 0) + count
        self._new_for.clear()

    def pop_old(self) -> Packet:
        """Dequeue the oldest *old* packet."""
        packet = self._old.popleft()
        _bump(self._old_for, packet.destination, -1)
        return packet

    def pop_any(self) -> Packet:
        """Dequeue the overall oldest packet (old first, then new)."""
        if self._old:
            return self.pop_old()
        packet = self._new.popleft()
        _bump(self._new_for, packet.destination, -1)
        return packet

    def pop_old_for(self, destination: int) -> Packet | None:
        """Dequeue the oldest *old* packet addressed to ``destination``."""
        if destination not in self._old_for:
            return None
        packet = self._pop_matching(self._old, lambda p: p.destination == destination)
        if packet is not None:
            _bump(self._old_for, destination, -1)
        return packet

    def pop_any_for(self, destination: int) -> Packet | None:
        """Dequeue the oldest packet (old or new) addressed to ``destination``."""
        packet = self.pop_old_for(destination)
        if packet is not None:
            return packet
        if destination not in self._new_for:
            return None
        packet = self._pop_matching(self._new, lambda p: p.destination == destination)
        if packet is not None:
            _bump(self._new_for, destination, -1)
        return packet

    def pop_old_matching(self, predicate: Callable[[Packet], bool]) -> Packet | None:
        """Dequeue the oldest *old* packet satisfying ``predicate``."""
        packet = self._pop_matching(self._old, predicate)
        if packet is not None:
            _bump(self._old_for, packet.destination, -1)
        return packet

    def replace(self, old_packets: list[Packet], new_packets: list[Packet]) -> None:
        """Wholesale queue replacement (lowered-segment commits).

        A lowered segment knows the queue's exact post-span contents, so
        its commit swaps them in directly instead of replaying the span's
        pushes, promotions and removals one call at a time; the
        per-destination counters are rebuilt in one pass over the
        survivors — O(backlog) rather than O(span traffic).
        """
        self._old = deque(old_packets)
        self._new = deque(new_packets)
        old_for: dict[int, int] = {}
        for packet in old_packets:
            destination = packet.destination
            old_for[destination] = old_for.get(destination, 0) + 1
        new_for: dict[int, int] = {}
        for packet in new_packets:
            destination = packet.destination
            new_for[destination] = new_for.get(destination, 0) + 1
        self._old_for = old_for
        self._new_for = new_for

    def remove(self, packet: Packet) -> bool:
        """Remove a specific packet (by identity); returns True if found."""
        for store, counts in ((self._old, self._old_for), (self._new, self._new_for)):
            try:
                store.remove(packet)
            except ValueError:
                continue
            _bump(counts, packet.destination, -1)
            return True
        return False

    @staticmethod
    def _pop_matching(
        store: deque[Packet], predicate: Callable[[Packet], bool]
    ) -> Packet | None:
        for index, packet in enumerate(store):
            if predicate(packet):
                del store[index]
                return packet
        return None

    # -- non-destructive peeks (used with deferred removal on confirmation) ----
    def peek_old(self) -> Packet | None:
        """The oldest *old* packet, without removing it."""
        return self._old[0] if self._old else None

    def peek_any(self) -> Packet | None:
        """The overall oldest packet, without removing it."""
        if self._old:
            return self._old[0]
        return self._new[0] if self._new else None

    def peek_old_matching(self, predicate: Callable[[Packet], bool]) -> Packet | None:
        """The oldest *old* packet satisfying ``predicate``, without removing it."""
        for packet in self._old:
            if predicate(packet):
                return packet
        return None

    def peek_any_matching(self, predicate: Callable[[Packet], bool]) -> Packet | None:
        """The oldest packet (old or new) satisfying ``predicate``, without removal."""
        for packet in self._old:
            if predicate(packet):
                return packet
        for packet in self._new:
            if predicate(packet):
                return packet
        return None

    def peek_old_for(self, destination: int) -> Packet | None:
        """The oldest *old* packet addressed to ``destination``, without removal."""
        if destination not in self._old_for:
            return None
        return self.peek_old_matching(lambda p: p.destination == destination)

    def peek_any_for(self, destination: int) -> Packet | None:
        """The oldest packet addressed to ``destination``, without removal."""
        if destination in self._old_for:
            return self.peek_old_for(destination)
        if destination not in self._new_for:
            return None
        for packet in self._new:
            if packet.destination == destination:
                return packet
        return None

    # -- inspection ------------------------------------------------------------
    def size(self) -> int:
        """Total queued packets — one call cheaper than ``len(queue)``.

        The engines poll queue sizes once per awake station per round;
        this direct accessor skips the ``len()``/``__len__`` indirection
        on that hot path while keeping the representation private.
        """
        return len(self._old) + len(self._new)

    def __len__(self) -> int:
        return len(self._old) + len(self._new)

    def __bool__(self) -> bool:
        return bool(self._old) or bool(self._new)

    def __iter__(self) -> Iterator[Packet]:
        yield from self._old
        yield from self._new

    @property
    def old_count(self) -> int:
        """Number of *old* packets."""
        return len(self._old)

    @property
    def new_count(self) -> int:
        """Number of *new* packets."""
        return len(self._new)

    def old_packets(self) -> list[Packet]:
        """Snapshot of the old packets in order."""
        return list(self._old)

    def new_packets(self) -> list[Packet]:
        """Snapshot of the new packets in order."""
        return list(self._new)

    def count_old_for(self, destination: int) -> int:
        """Number of old packets addressed to ``destination`` (O(1))."""
        return self._old_for.get(destination, 0)

    def count_for(self, destination: int) -> int:
        """Number of packets (old or new) addressed to ``destination`` (O(1))."""
        return self._old_for.get(destination, 0) + self._new_for.get(destination, 0)

    def count_old_matching(self, predicate: Callable[[Packet], bool]) -> int:
        """Number of old packets satisfying ``predicate``."""
        return sum(1 for p in self._old if predicate(p))

    def destinations(self) -> set[int]:
        """Set of destinations with at least one queued packet.

        O(distinct destinations): read off the incremental counters
        rather than scanning every queued packet.
        """
        return set(self._old_for) | set(self._new_for)

    def has_old_for(self, destinations: Iterable[int]) -> bool:
        """True when an old packet exists for any of ``destinations``."""
        old_for = self._old_for
        return any(d in old_for for d in destinations)
