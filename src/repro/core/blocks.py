"""Round-block driver protocol for the compiled block engine.

The token-withholding protocols in this codebase share a structural
property the per-round engines cannot exploit: in every round there is at
most **one** station that may transmit (the replica-agreed token holder),
so collisions are impossible and the channel outcome is decided by a
single ``act`` call.  A :class:`RoundBlockDriver` packages that knowledge
per algorithm: it names the round's sole candidate transmitter and applies
the feedback effects of the round directly to controller state, replacing
the kernel's n-wide ``on_feedback`` fan-out with one or two targeted
mutations.

Algorithms opt in by attaching one shared driver instance to every
controller (``ctrl.block_driver``) from their ``build_controllers``.  The
:class:`~repro.channel.block.BlockEngine` negotiates for the driver at
construction time and falls back to the kernel's per-round loop — per
block, never for the whole run — whenever a driver is absent or declines
a block.

Contract (all rounds ``t`` are absolute round numbers):

* Rounds are driven strictly in order within ``[start, stop)`` between a
  ``begin_block``/``end_block`` pair; quiescent spans inside the block
  may be elided, reported through :meth:`advance_span`.
* For each executed round the engine calls :meth:`transmitter`, then the
  candidate's ``act`` (skipped when its queue is provably empty — the
  protocols are silence-invariant, so an empty holder withholds), then
  exactly one of :meth:`silent_round` / :meth:`heard_round`.
* :meth:`heard_round` must leave every awake controller in the state the
  reference engine's ``on_feedback(HEARD)`` fan-out would, and return the
  stations whose queue length may have changed (a superset is fine; the
  engine re-polls exactly those, so an omission silently corrupts queue
  metrics).
* Drivers that can prove a sub-span's outcome sequence in closed form may
  additionally *lower* it: :meth:`~RoundBlockDriver.lower_segment`
  exports the span as a :class:`LoweredSegment` (transmitter ids,
  per-round queue-delta CSR, deliveries, a ``commit`` callback) and the
  engine replays it with vectorised kernels from :mod:`repro._accel`
  instead of round-at-a-time Python.  Returning ``None`` is always safe —
  the engine falls back to the per-round protocol and probes again later.
"""

from __future__ import annotations

import abc
import dataclasses
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy as np

    from ..adversary.base import InjectionPlan
    from .feedback import Message
    from .packet import Packet

__all__ = ["LoweredSegment", "RoundBlockDriver"]


@dataclasses.dataclass(slots=True)
class LoweredSegment:
    """Array-lowered execution of rounds ``[start, stop)``.

    A driver that can prove its outcome sequence for a sub-span is
    closed-form (token position, withdrawal order, a fixed phase
    schedule — *including* the span's planned injections, which are
    known ahead of time from the injection plan) exports the whole span
    as arrays; the engine then flushes outcomes, queue series, energy,
    injections and deliveries with vectorised kernels instead of
    running the per-round driver protocol.

    Invariants the engine relies on (and cheaply checks):

    * ``transmitters`` has one entry per round: the heard sender's
      station id, or -1 for a silent round.  Collisions cannot be
      expressed — a driver that cannot rule them out must not lower.
    * The queue-delta CSR (``delta_offsets`` into parallel
      ``delta_stations``/``delta_values``) carries per-station
      queue-length changes per round, **net per station per round**: at
      most one entry per (round, station), because the engine folds the
      CSR into end-of-round totals and per-station running maxima, and
      the per-round path only ever observes end-of-round sizes (an
      arrive-then-transmit round must not surface its intra-round
      spike).
    * ``deliveries`` lists ``(absolute_round, packet_or_plan_index)``
      in round order for every heard packet whose destination is awake;
      a plain ``int`` entry refers to a packet the span itself injects,
      by absolute index into the injection plan's ``sources`` — the
      engine materialises those packets (in plan order, preserving
      packet-id assignment) only after accepting the segment and
      resolves the indices.  Lowered segments must only be produced
      when the driver can prove awakeness of every delivery destination
      (always-on schedules, or clock-published receiver sets).
    * ``awake_counts`` is required on the ticked tier (one entry per
      round, each respecting the energy cap); static-schedule drivers
      leave it ``None``.
    * ``commit(packets)`` applies all controller/replica state
      mutations of the span in one step; ``packets`` are the span's
      materialised injections ordered by plan index (commit replays the
      arrivals into the right queues alongside removals and aging).
      ``lower_segment`` itself must be pure apart from idempotent clock
      ticks at ``start`` — the engine may discard a segment and re-run
      the same rounds through the per-round path.
    """

    start: int
    stop: int
    transmitters: "np.ndarray"
    delta_stations: "np.ndarray"
    delta_values: "np.ndarray"
    delta_offsets: "np.ndarray"
    deliveries: "list[tuple[int, Packet | int]]"
    commit: "Callable[[list[Packet]], None]"
    awake_counts: "np.ndarray | None" = None


class RoundBlockDriver(abc.ABC):
    """Per-algorithm compiled-round driver (see module docstring)."""

    #: Drivers for silence-invariant protocols (the default) rely on the
    #: engine skipping ``act`` for empty-queue holders.  Restricted
    #: drivers for beaconing algorithms (Count-Hop, Orchestra) set this
    #: False; the engine then calls the named transmitter's ``act``
    #: unconditionally and waives the all-controllers
    #: ``silence_invariant`` eligibility conjunction.
    relies_on_silence_invariant = True

    def __init__(self, n: int) -> None:
        self.n = n
        #: Human-readable reason for the most recent declined block
        #: (surfaced through the negotiation report); reset by the
        #: engine before each ``begin_block``.
        self.decline_reason: str | None = None

    def propose_stop(self, start: int, stop: int) -> int:
        """Propose a block boundary in ``(start, stop]``.

        Restricted drivers align blocks with their phase structure so a
        declined adaptive phase does not drag a compilable neighbour
        down with it.  The default keeps the engine's boundary.
        """
        return stop

    def lower_segment(
        self, start: int, stop: int, plan: "InjectionPlan"
    ) -> "LoweredSegment | None":
        """Lower ``[start, stop)`` to arrays, or None to run per-round.

        ``plan`` is the injection plan covering the span (``plan.start <=
        start`` and ``stop <= plan.stop``): the span's injections are
        known ahead of time, so drivers that can absorb arrivals simulate
        them in closed form (referencing the to-be-created packets by
        plan index, see :class:`LoweredSegment`), and drivers that cannot
        cut the segment before the next planned injection round.

        Implementations may cut early (return a segment with
        ``segment.stop < stop``) but must cover at least one round and
        never exceed ``stop``.  Must be pure until ``commit`` (see
        :class:`LoweredSegment`); returning None is always safe.
        """
        return None

    # -- block lifecycle ------------------------------------------------------
    def begin_block(self, start: int, stop: int) -> bool:
        """Prepare for rounds ``[start, stop)``; False declines the block.

        Declining is always safe: the engine runs the block through the
        kernel's per-round loop instead and asks again for the next one.
        """
        return True

    def end_block(self, stop: int) -> None:
        """Reconcile any driver-private state back into the controllers.

        ``stop`` is the first round *not* executed; it may be earlier
        than the ``stop`` passed to :meth:`begin_block` when the block
        aborted mid-way (e.g. an energy-cap violation), so drivers that
        keep canonical copies must sync what they have, not assume the
        block completed.
        """

    def advance_span(self, start: int, stop: int) -> None:
        """Observe that quiescent rounds ``[start, stop)`` were elided.

        Controllers are advanced by the engine via ``advance_silent_span``
        as usual; this hook exists for drivers that additionally keep
        canonical state of their own (default: no-op).
        """

    # -- per-round protocol ---------------------------------------------------
    @abc.abstractmethod
    def transmitter(self, t: int) -> int:
        """Station id of round ``t``'s sole candidate transmitter, -1 if none."""

    @abc.abstractmethod
    def silent_round(self, t: int) -> None:
        """Apply the effects of a SILENCE outcome in round ``t``."""

    @abc.abstractmethod
    def heard_round(self, t: int, sender: int, message: "Message") -> tuple[int, ...]:
        """Apply the effects of ``sender``'s message being heard in round ``t``.

        Returns the station ids whose queue length may have changed.
        """
