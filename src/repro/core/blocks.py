"""Round-block driver protocol for the compiled block engine.

The token-withholding protocols in this codebase share a structural
property the per-round engines cannot exploit: in every round there is at
most **one** station that may transmit (the replica-agreed token holder),
so collisions are impossible and the channel outcome is decided by a
single ``act`` call.  A :class:`RoundBlockDriver` packages that knowledge
per algorithm: it names the round's sole candidate transmitter and applies
the feedback effects of the round directly to controller state, replacing
the kernel's n-wide ``on_feedback`` fan-out with one or two targeted
mutations.

Algorithms opt in by attaching one shared driver instance to every
controller (``ctrl.block_driver``) from their ``build_controllers``.  The
:class:`~repro.channel.block.BlockEngine` negotiates for the driver at
construction time and falls back to the kernel's per-round loop — per
block, never for the whole run — whenever a driver is absent or declines
a block.

Contract (all rounds ``t`` are absolute round numbers):

* Rounds are driven strictly in order within ``[start, stop)`` between a
  ``begin_block``/``end_block`` pair; quiescent spans inside the block
  may be elided, reported through :meth:`advance_span`.
* For each executed round the engine calls :meth:`transmitter`, then the
  candidate's ``act`` (skipped when its queue is provably empty — the
  protocols are silence-invariant, so an empty holder withholds), then
  exactly one of :meth:`silent_round` / :meth:`heard_round`.
* :meth:`heard_round` must leave every awake controller in the state the
  reference engine's ``on_feedback(HEARD)`` fan-out would, and return the
  stations whose queue length may have changed (a superset is fine; the
  engine re-polls exactly those, so an omission silently corrupts queue
  metrics).
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .feedback import Message

__all__ = ["RoundBlockDriver"]


class RoundBlockDriver(abc.ABC):
    """Per-algorithm compiled-round driver (see module docstring)."""

    def __init__(self, n: int) -> None:
        self.n = n

    # -- block lifecycle ------------------------------------------------------
    def begin_block(self, start: int, stop: int) -> bool:
        """Prepare for rounds ``[start, stop)``; False declines the block.

        Declining is always safe: the engine runs the block through the
        kernel's per-round loop instead and asks again for the next one.
        """
        return True

    def end_block(self, stop: int) -> None:
        """Reconcile any driver-private state back into the controllers.

        ``stop`` is the first round *not* executed; it may be earlier
        than the ``stop`` passed to :meth:`begin_block` when the block
        aborted mid-way (e.g. an energy-cap violation), so drivers that
        keep canonical copies must sync what they have, not assume the
        block completed.
        """

    def advance_span(self, start: int, stop: int) -> None:
        """Observe that quiescent rounds ``[start, stop)`` were elided.

        Controllers are advanced by the engine via ``advance_silent_span``
        as usual; this hook exists for drivers that additionally keep
        canonical state of their own (default: no-op).
        """

    # -- per-round protocol ---------------------------------------------------
    @abc.abstractmethod
    def transmitter(self, t: int) -> int:
        """Station id of round ``t``'s sole candidate transmitter, -1 if none."""

    @abc.abstractmethod
    def silent_round(self, t: int) -> None:
        """Apply the effects of a SILENCE outcome in round ``t``."""

    @abc.abstractmethod
    def heard_round(self, t: int, sender: int, message: "Message") -> tuple[int, ...]:
        """Apply the effects of ``sender``'s message being heard in round ``t``.

        Returns the station ids whose queue length may have changed.
        """
