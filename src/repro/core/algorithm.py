"""Routing-algorithm interface.

A :class:`RoutingAlgorithm` is the user-facing object describing one of
the paper's algorithms instantiated for a concrete system: it knows the
system size ``n`` (and the energy cap ``k`` where relevant), can
manufacture the ``n`` per-station controllers for the engine, and exposes
its classification along the paper's three axes (oblivious / direct /
plain-packet) plus the energy cap it requires.  Energy-oblivious
algorithms additionally publish their on/off schedule.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from ..channel.station import StationController
from .schedule import ObliviousSchedule

__all__ = ["AlgorithmProperties", "RoutingAlgorithm"]


@dataclass(frozen=True, slots=True)
class AlgorithmProperties:
    """Classification of a routing algorithm (cf. Table 1's Properties column).

    Attributes
    ----------
    name:
        Canonical algorithm name.
    energy_cap:
        The energy cap the algorithm is designed for (the number of
        stations it will keep simultaneously on, at most).
    oblivious:
        True when the on/off schedule is fixed in advance.
    direct:
        True when packets never use relay stations (exactly one hop).
    plain_packet:
        True when messages never carry control bits.
    """

    name: str
    energy_cap: int
    oblivious: bool
    direct: bool
    plain_packet: bool

    def tag(self) -> str:
        """Short property tag in the style of Table 1 (e.g. 'Obl-PP-Dir')."""
        parts = [
            "Obl" if self.oblivious else "NObl",
            "PP" if self.plain_packet else "Gen",
            "Dir" if self.direct else "Ind",
        ]
        return "-".join(parts)


class RoutingAlgorithm(abc.ABC):
    """Base class of the paper's routing algorithms.

    Parameters
    ----------
    n:
        System size (number of stations); known to all stations.
    """

    #: Canonical algorithm name; subclasses override.
    name: str = "abstract"

    def __init__(self, n: int) -> None:
        if n < 3:
            raise ValueError(
                "the routing problem is only interesting for n >= 3 stations"
            )
        self.n = n

    # -- required interface ---------------------------------------------------
    @abc.abstractmethod
    def build_controllers(self) -> list[StationController]:
        """Create the ``n`` per-station controllers for a fresh execution."""

    @abc.abstractmethod
    def properties(self) -> AlgorithmProperties:
        """Classification and energy cap of this algorithm instance."""

    # -- optional interface -----------------------------------------------------
    def oblivious_schedule(self) -> ObliviousSchedule | None:
        """The published on/off schedule, for energy-oblivious algorithms.

        Returns ``None`` for non-oblivious (adaptive) algorithms.
        """
        return None

    # -- conveniences -------------------------------------------------------------
    @property
    def energy_cap(self) -> int:
        """Energy cap this algorithm instance needs."""
        return self.properties().energy_cap

    def describe(self) -> str:
        """Human-readable one-line description used in reports."""
        props = self.properties()
        return f"{props.name}(n={self.n}, cap={props.energy_cap}, {props.tag()})"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return self.describe()
