#!/usr/bin/env python
"""Engine micro-benchmark: kernel vs reference rounds-per-second.

Times the capability-negotiated kernel loop against the checked reference
loop on a fixed set of configurations and writes the rounds/sec
trajectory to ``BENCH_engine.json`` so CI can archive it per commit.

Usage::

    PYTHONPATH=src python benchmarks/bench_engine.py [--smoke] [--output PATH]

``--smoke`` runs short horizons (a few seconds total) for CI; the default
horizons give steadier numbers for local comparisons.  The headline
configuration — an oblivious adversary driving a schedule-published
k-Cycle at n=64 in the paper's energy-frugal regime (k << n) — is where
the kernel's negotiated fast paths all engage; the other rows track the
dynamic-wakes and adaptive-adversary paths so regressions in any
negotiation branch show up in the trajectory.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

if __package__ in (None, ""):  # run as a script
    _src = Path(__file__).resolve().parents[1] / "src"
    if _src.exists() and str(_src) not in sys.path:
        sys.path.insert(0, str(_src))

from repro.sim import RunSpec, execute_spec  # noqa: E402

#: (name, spec template).  ``rounds`` is filled in per mode.
CONFIGS: list[tuple[str, dict]] = [
    (
        "k-cycle n=64 k=4, oblivious spray (all fast paths)",
        dict(
            algorithm="k-cycle",
            algorithm_params={"n": 64, "k": 4},
            adversary="spray",
            adversary_params={"rho": 0.04, "beta": 2.0},
        ),
    ),
    (
        "k-cycle n=64 k=8, oblivious spray",
        dict(
            algorithm="k-cycle",
            algorithm_params={"n": 64, "k": 8},
            adversary="spray",
            adversary_params={"rho": 0.08, "beta": 2.0},
        ),
    ),
    (
        "k-clique n=32 k=8, oblivious round-robin",
        dict(
            algorithm="k-clique",
            algorithm_params={"n": 32, "k": 8},
            adversary="round-robin",
            adversary_params={"rho": 0.05, "beta": 2.0},
        ),
    ),
    (
        "count-hop n=16, oblivious spray (dynamic wakes path)",
        dict(
            algorithm="count-hop",
            algorithm_params={"n": 16},
            adversary="spray",
            adversary_params={"rho": 0.3, "beta": 2.0},
        ),
    ),
    (
        "k-cycle n=32 k=4, adaptive adversary (windowed view path)",
        dict(
            algorithm="k-cycle",
            algorithm_params={"n": 32, "k": 4},
            adversary="adaptive-starvation",
            adversary_params={"rho": 0.1, "beta": 2.0},
            enforce_energy_cap=False,
        ),
    ),
]


def _time_engine(template: dict, engine: str, rounds: int, repeats: int) -> float:
    """Best-of-``repeats`` rounds/sec for one configuration and engine."""
    spec = RunSpec(rounds=rounds, engine=engine, **template)
    best = 0.0
    for _ in range(repeats):
        start = time.perf_counter()
        execute_spec(spec)
        elapsed = time.perf_counter() - start
        best = max(best, rounds / elapsed)
    return best


def run_benchmark(smoke: bool) -> dict:
    rounds = 3_000 if smoke else 20_000
    repeats = 2 if smoke else 3
    rows = []
    for name, template in CONFIGS:
        reference = _time_engine(template, "reference", rounds, repeats)
        kernel = _time_engine(template, "kernel", rounds, repeats)
        rows.append(
            {
                "name": name,
                "rounds": rounds,
                "reference_rps": round(reference, 1),
                "kernel_rps": round(kernel, 1),
                "speedup": round(kernel / reference, 2),
            }
        )
        print(
            f"{name:<58s} reference {reference:>10,.0f} rps   "
            f"kernel {kernel:>10,.0f} rps   x{kernel / reference:.2f}"
        )
    return {
        "schema": 1,
        "smoke": smoke,
        "unix_time": int(time.time()),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "configs": rows,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="short horizons for CI smoke runs"
    )
    parser.add_argument(
        "--output",
        default="BENCH_engine.json",
        help="where to write the JSON trajectory (default: ./BENCH_engine.json)",
    )
    args = parser.parse_args(argv)
    payload = run_benchmark(smoke=args.smoke)
    Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
