#!/usr/bin/env python
"""Engine micro-benchmark: block vs kernel vs reference rounds-per-second.

Times the compiled round-block backend and the capability-negotiated
kernel loop against the checked reference loop on a fixed set of
configurations and appends the rounds/sec numbers to the
``BENCH_engine.json`` trajectory (one entry per invocation, keyed
by ``unix_time``) so CI can archive the history per commit.

Usage::

    PYTHONPATH=src python benchmarks/bench_engine.py \
        [--smoke] [--output PATH] [--fail-below X]

``--smoke`` runs short horizons (a few seconds total) for CI; the default
horizons give steadier numbers for local comparisons.  ``--fail-below X``
exits non-zero when any tracked config's kernel speedup drops below
``X`` — the CI perf-regression gate (the trajectory file is still
written first, so the artifact survives a failing run).  Gating also
enforces the quiescent baseline bands: low-rate rows whose algorithm
declares ``silence_invariant`` are timed a second time with
``quiescence_skip=False``, and the with-skip vs without-skip ratio must
stay above the band recorded in :data:`QUIESCENT_BANDS` — the
compiled-block bands: the busy-round dense-rho rows must hold their
block-vs-kernel speedup above :data:`BLOCK_BANDS` — and the
segment-lowering bands: the dense token-withholding rows are timed a
second time with ``lowering=False`` (the strictly per-round block loop),
and the lowered vs per-round ratio must stay above
:data:`LOWERED_BANDS`.

The headline configuration — an oblivious adversary driving a
schedule-published k-Cycle at n=64 in the paper's energy-frugal regime
(k << n) — is where the kernel's negotiated fast paths all engage
(including batched injection planning); the Count-Hop / Orchestra /
Adjust-Window / k-Subsets rows track the ticked-wakes tier (shared state
machine, one tick + one batch awake-set query per round) per algorithm,
the adaptive rows track the windowed-view path with its schedule-backed
batch maintenance, and the low-rate bursty rows track the quiescence
axis (whole injection-free spans elided in one step — the win that
moves low-rate runs from O(rounds) toward O(busy rounds)), so a
regression in any negotiation branch shows up in the trajectory.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

if __package__ in (None, ""):  # run as a script
    _src = Path(__file__).resolve().parents[1] / "src"
    if _src.exists() and str(_src) not in sys.path:
        sys.path.insert(0, str(_src))

from repro.sim import RunSpec, execute_spec  # noqa: E402

#: (name, spec template).  ``rounds`` is filled in per mode.  Names are
#: the trajectory keys — keep them stable across commits.
CONFIGS: list[tuple[str, dict]] = [
    (
        "k-cycle n=64 k=4, oblivious spray (all fast paths)",
        dict(
            algorithm="k-cycle",
            algorithm_params={"n": 64, "k": 4},
            adversary="spray",
            adversary_params={"rho": 0.04, "beta": 2.0},
        ),
    ),
    (
        "k-cycle n=64 k=8, oblivious spray",
        dict(
            algorithm="k-cycle",
            algorithm_params={"n": 64, "k": 8},
            adversary="spray",
            adversary_params={"rho": 0.08, "beta": 2.0},
        ),
    ),
    (
        "k-clique n=32 k=8, oblivious round-robin",
        dict(
            algorithm="k-clique",
            algorithm_params={"n": 32, "k": 8},
            adversary="round-robin",
            adversary_params={"rho": 0.05, "beta": 2.0},
        ),
    ),
    (
        "count-hop n=16, oblivious spray (dynamic wakes path)",
        dict(
            algorithm="count-hop",
            algorithm_params={"n": 16},
            adversary="spray",
            adversary_params={"rho": 0.3, "beta": 2.0},
        ),
    ),
    (
        "orchestra n=16, oblivious spray (ticked wakes path)",
        dict(
            algorithm="orchestra",
            algorithm_params={"n": 16},
            adversary="spray",
            adversary_params={"rho": 0.3, "beta": 2.0},
        ),
    ),
    (
        "adjust-window n=4, oblivious spray (ticked wakes path)",
        dict(
            algorithm="adjust-window",
            algorithm_params={"n": 4},
            adversary="spray",
            adversary_params={"rho": 0.3, "beta": 2.0},
        ),
    ),
    (
        "k-cycle n=32 k=4, adaptive adversary (windowed view path)",
        dict(
            algorithm="k-cycle",
            algorithm_params={"n": 32, "k": 4},
            adversary="adaptive-starvation",
            adversary_params={"rho": 0.1, "beta": 2.0},
            enforce_energy_cap=False,
        ),
    ),
    (
        "k-cycle n=64 k=4, adaptive adversary (batched windowed view)",
        dict(
            algorithm="k-cycle",
            algorithm_params={"n": 64, "k": 4},
            adversary="adaptive-starvation",
            adversary_params={"rho": 0.1, "beta": 2.0},
            enforce_energy_cap=False,
        ),
    ),
    (
        "k-subsets n=8 k=3, oblivious spray (ticked wakes path)",
        dict(
            algorithm="k-subsets",
            algorithm_params={"n": 8, "k": 3},
            adversary="spray",
            adversary_params={"rho": 0.1, "beta": 2.0},
        ),
    ),
    # -- low-rate rows: the quiescence axis.  Bursty type-(rho, beta)
    # traffic leaves long all-queues-empty stretches between bursts; the
    # quiescent rows are additionally timed with quiescence_skip=False
    # (the strictly per-round kernel) so the trajectory records the span
    # win itself, gated by QUIESCENT_BANDS below.
    (
        "k-cycle n=64 k=4, bursty rho=0.1 (quiescent span skip)",
        dict(
            algorithm="k-cycle",
            algorithm_params={"n": 64, "k": 4},
            adversary="bursty",
            adversary_params={"rho": 0.1, "beta": 8.0, "idle_rounds": 2400},
        ),
    ),
    (
        "count-hop n=16, bursty rho=0.1 (low rate, beacon holdout)",
        dict(
            algorithm="count-hop",
            algorithm_params={"n": 16},
            adversary="bursty",
            adversary_params={"rho": 0.1, "beta": 6.0, "idle_rounds": 600},
        ),
    ),
    (
        "k-subsets n=8 k=3, bursty rho=0.1 (ticked quiescent span skip)",
        dict(
            algorithm="k-subsets",
            algorithm_params={"n": 8, "k": 3},
            adversary="bursty",
            adversary_params={"rho": 0.1, "beta": 5.0, "idle_rounds": 800},
        ),
    ),
    # -- busy-round rows: the compiled-block axis.  Dense rho at n=64
    # keeps nearly every round busy (a transmission or a token advance),
    # which is exactly the regime quiescence skipping cannot touch and
    # the block engine compiles: one transmitter probe and a
    # changed-stations-only poll per round instead of the kernel's
    # per-awake-station fan-out.  Gated by BLOCK_BANDS below.
    (
        "k-cycle n=64 k=8, dense random rho near threshold (compiled blocks)",
        dict(
            algorithm="k-cycle",
            algorithm_params={"n": 64, "k": 8},
            adversary="random",
            adversary_params={"rho": 0.015, "beta": 2.0, "seed": 9},
        ),
    ),
    (
        "rrw n=64, dense random rho=0.9 (compiled blocks, all awake)",
        dict(
            algorithm="rrw",
            algorithm_params={"n": 64},
            adversary="random",
            adversary_params={"rho": 0.9, "beta": 2.0, "seed": 9},
        ),
    ),
    (
        "of-rrw n=64, dense random rho=0.9 (compiled blocks, all awake)",
        dict(
            algorithm="of-rrw",
            algorithm_params={"n": 64},
            adversary="random",
            adversary_params={"rho": 0.9, "beta": 2.0, "seed": 9},
        ),
    ),
    (
        "mbtf n=64, dense random rho=0.95 (compiled blocks, all awake)",
        dict(
            algorithm="mbtf",
            algorithm_params={"n": 64},
            adversary="random",
            adversary_params={"rho": 0.95, "beta": 2.0, "seed": 9},
        ),
    ),
    # -- restricted-driver rows: Count-Hop and Orchestra cannot promise
    # the silence invariant (their named transmitters beacon with empty
    # queues), so until this PR they always ran per-round.  The
    # restricted block drivers compile their deterministic phases
    # (Orchestra entirely; Count-Hop everything but the adaptive Report
    # substage, which each block declines into the kernel fallback) —
    # these rows are the first block numbers either algorithm has had.
    (
        "count-hop n=64, oblivious round-robin (restricted block driver)",
        dict(
            algorithm="count-hop",
            algorithm_params={"n": 64},
            adversary="round-robin",
            adversary_params={"rho": 0.5, "beta": 2.0},
        ),
    ),
    (
        "orchestra n=64, oblivious round-robin (restricted block driver)",
        dict(
            algorithm="orchestra",
            algorithm_params={"n": 64},
            adversary="round-robin",
            adversary_params={"rho": 0.5, "beta": 2.0},
        ),
    ),
]

#: Configs whose controllers declare ``silence_invariant``: name -> the
#: recorded baseline band, the minimum acceptable kernel-with-skip vs
#: kernel-without-skip speedup.  Full runs measure ~x4.3 (k-Cycle) and
#: ~x3.0 (k-Subsets) on the reference box; the bands leave headroom for
#: CI noise while still failing hard when the span fast path stops
#: engaging (speedup ~x1.0).  Enforced whenever ``--fail-below`` gates a
#: run.  The Count-Hop low-rate row is deliberately absent: its
#: coordinator beacons through idle stretches, so it has no span win to
#: protect (its kernel-vs-reference speedup is gated like every row).
QUIESCENT_BANDS: dict[str, float] = {
    "k-cycle n=64 k=4, bursty rho=0.1 (quiescent span skip)": 2.0,
    "k-subsets n=8 k=3, bursty rho=0.1 (ticked quiescent span skip)": 1.8,
}

#: Busy-round configs the block backend must keep compiling: name -> the
#: minimum acceptable block-vs-kernel speedup.  Full runs measure ~x2.8
#: (k-Cycle, canonical-replica segments), ~x4.9 (RRW) and ~x4.3 (MBTF)
#: on the reference box; the bands hold the acceptance floor of x2 on
#: the n=64 dense-rho regime while leaving headroom for CI noise.
#: Enforced whenever ``--fail-below`` gates a run.
BLOCK_BANDS: dict[str, float] = {
    "k-cycle n=64 k=8, dense random rho near threshold (compiled blocks)": 2.0,
    "rrw n=64, dense random rho=0.9 (compiled blocks, all awake)": 2.0,
    "of-rrw n=64, dense random rho=0.9 (compiled blocks, all awake)": 2.0,
    "mbtf n=64, dense random rho=0.95 (compiled blocks, all awake)": 2.0,
    # Restricted drivers: the floor only asserts "block beats kernel" —
    # Count-Hop pays the per-block decline + kernel fallback through
    # every Report substage, so its margin (~x1.17 on full horizons,
    # thinner on smoke ones) is structurally smaller than the
    # fully-compiled rows above; a total compilation failure shows up as
    # ~x0.85, far below the floor.
    "count-hop n=64, oblivious round-robin (restricted block driver)": 1.05,
    "orchestra n=64, oblivious round-robin (restricted block driver)": 1.3,
}

#: Dense token-withholding configs whose drivers lower whole segments to
#: array kernels: name -> the minimum acceptable lowered vs per-round
#: block speedup (``lowering=True`` over ``lowering=False``, both on the
#: block engine, so the ratio isolates the segment-lowering tier from the
#: compiled-block win already gated above).  Full runs measure ~x1.5-1.7
#: (RRW, MBTF) and ~x1.4 (OF-RRW) on the reference box — these are the
#: ISSUE's >=1.5x dense-rho n=64 acceptance rows — but single-core CI
#: timing is noisy, so the bands hold a conservative floor that still
#: fails hard when lowering stops engaging (ratio ~x1.0).  Enforced
#: whenever ``--fail-below`` gates a run.
LOWERED_BANDS: dict[str, float] = {
    "rrw n=64, dense random rho=0.9 (compiled blocks, all awake)": 1.3,
    "of-rrw n=64, dense random rho=0.9 (compiled blocks, all awake)": 1.15,
    "mbtf n=64, dense random rho=0.95 (compiled blocks, all awake)": 1.3,
}

# A band keyed by a name no config carries would silently stop gating the
# span win — fail at import instead.
_UNKNOWN_BANDS = (set(QUIESCENT_BANDS) | set(BLOCK_BANDS) | set(LOWERED_BANDS)) - {
    name for name, _ in CONFIGS
}
assert not _UNKNOWN_BANDS, f"band keys not in CONFIGS: {sorted(_UNKNOWN_BANDS)}"


def _time_engine(
    template: dict,
    engine: str,
    rounds: int,
    repeats: int,
    quiescence_skip: bool = True,
    lowering: bool = True,
) -> float:
    """Best-of-``repeats`` rounds/sec for one configuration and engine."""
    spec = RunSpec(
        rounds=rounds,
        engine=engine,
        quiescence_skip=quiescence_skip,
        lowering=lowering,
        **template,
    )
    best = 0.0
    for _ in range(repeats):
        start = time.perf_counter()
        execute_spec(spec)
        elapsed = time.perf_counter() - start
        best = max(best, rounds / elapsed)
    return best


def run_benchmark(smoke: bool) -> dict:
    base_rounds = 3_000 if smoke else 20_000
    repeats = 2 if smoke else 3
    rows = []
    for name, template in CONFIGS:
        # Block-banded rows amortise fixed setup (driver wiring, plan and
        # awake-matrix builds) over a longer smoke horizon so the gated
        # ratio is not dominated by startup noise on shared CI boxes.
        rounds = base_rounds
        if smoke and (name in BLOCK_BANDS or name in LOWERED_BANDS):
            # The restricted-driver rows amortise a per-stage block cut
            # (propose_stop aligns blocks with Count-Hop/Orchestra phase
            # boundaries), so they need a longer horizon than the other
            # banded rows before the gated ratio stabilises.
            rounds = 16_000 if "restricted" in name else 8_000
        reference = _time_engine(template, "reference", rounds, repeats)
        kernel = _time_engine(template, "kernel", rounds, repeats)
        block = _time_engine(template, "block", rounds, repeats)
        row = {
            "name": name,
            "rounds": rounds,
            "reference_rps": round(reference, 1),
            "kernel_rps": round(kernel, 1),
            "block_rps": round(block, 1),
            "speedup": round(kernel / reference, 2),
            "block_speedup": round(block / kernel, 2),
        }
        extra = ""
        band = QUIESCENT_BANDS.get(name)
        if band is not None:
            # Time the strictly per-round kernel too, so the trajectory
            # records the quiescent-span win itself (not just the
            # kernel-vs-reference ratio, which conflates all fast paths).
            no_skip = _time_engine(
                template, "kernel", rounds, repeats, quiescence_skip=False
            )
            row["noskip_rps"] = round(no_skip, 1)
            row["skip_speedup"] = round(kernel / no_skip, 2)
            row["quiescent_band"] = band
            extra = f"   span x{kernel / no_skip:.2f} (band x{band:.2f})"
        block_band = BLOCK_BANDS.get(name)
        if block_band is not None:
            row["block_band"] = block_band
            extra += f"   block band x{block_band:.2f}"
        lowered_band = LOWERED_BANDS.get(name)
        if lowered_band is not None:
            # Time the strictly per-round block loop too, so the
            # trajectory records the segment-lowering win itself (the
            # block-vs-kernel ratio above conflates it with the compiled
            # per-round win).
            no_lower = _time_engine(template, "block", rounds, repeats, lowering=False)
            row["nolower_rps"] = round(no_lower, 1)
            row["lowered_speedup"] = round(block / no_lower, 2)
            row["lowered_band"] = lowered_band
            extra += f"   lowered x{block / no_lower:.2f} (band x{lowered_band:.2f})"
        rows.append(row)
        print(
            f"{name:<58s} reference {reference:>10,.0f} rps   "
            f"kernel {kernel:>10,.0f} rps   x{kernel / reference:.2f}   "
            f"block x{block / kernel:.2f}{extra}"
        )
    return {
        "smoke": smoke,
        "unix_time": int(time.time()),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "configs": rows,
    }


def load_trajectory(path: Path) -> dict:
    """Read an existing trajectory file, upgrading the schema-1 layout.

    Schema 1 held a single run at the top level; schema 2 is
    ``{"schema": 2, "runs": [run, ...]}`` ordered by ``unix_time``.  A
    file that cannot be parsed into either shape is moved aside (to
    ``<name>.corrupt``) rather than silently overwritten, so an
    interrupted write never erases the accumulated history.
    """
    if not path.exists():
        return {"schema": 2, "runs": []}
    try:
        data = json.loads(path.read_text())
    except (OSError, ValueError):
        data = None
    if isinstance(data, dict) and isinstance(data.get("runs"), list):
        return {"schema": 2, "runs": list(data["runs"])}
    if isinstance(data, dict) and "configs" in data:  # schema 1: one bare run
        data.pop("schema", None)
        return {"schema": 2, "runs": [data]}
    backup = path.with_suffix(path.suffix + ".corrupt")
    path.replace(backup)
    print(
        f"warning: could not parse {path} as a benchmark trajectory; "
        f"moved it to {backup} and starting a fresh history",
        file=sys.stderr,
    )
    return {"schema": 2, "runs": []}


def append_run(path: Path, run: dict) -> dict:
    """Append ``run`` to the trajectory at ``path`` and write it back."""
    trajectory = load_trajectory(path)
    trajectory["runs"].append(run)
    path.write_text(json.dumps(trajectory, indent=2) + "\n")
    return trajectory


def speedup_failures(run: dict, minimum: float) -> list[str]:
    """Configs of ``run`` failing the gates.

    Every row's kernel-vs-reference speedup must reach ``minimum``;
    quiescent rows must additionally hold their span win — the
    kernel-with-skip vs kernel-without-skip ratio may not regress below
    the recorded baseline band — the busy-round rows must hold their
    block-vs-kernel compiled-loop win above the BLOCK_BANDS floor — and
    the dense token-withholding rows must hold their lowered vs
    per-round block win above the LOWERED_BANDS floor.
    Block-banded rows are exempt from the kernel minimum: dense all-awake
    traffic is where the kernel's own negotiated wins are thinnest (it
    still pays the full per-awake-station fan-out), and those rows exist
    to gate the compiled-block ratio, which is strictly harder to hold.
    """
    failures = [
        f"{row['name']}: x{row['speedup']:.2f} < x{minimum:.2f}"
        for row in run["configs"]
        if row["speedup"] < minimum and "block_band" not in row
    ]
    failures.extend(
        f"{row['name']}: quiescent-span speedup x{row['skip_speedup']:.2f} "
        f"< band x{row['quiescent_band']:.2f}"
        for row in run["configs"]
        if "quiescent_band" in row and row["skip_speedup"] < row["quiescent_band"]
    )
    failures.extend(
        f"{row['name']}: block speedup x{row['block_speedup']:.2f} "
        f"< band x{row['block_band']:.2f}"
        for row in run["configs"]
        if "block_band" in row and row["block_speedup"] < row["block_band"]
    )
    failures.extend(
        f"{row['name']}: lowered speedup x{row['lowered_speedup']:.2f} "
        f"< band x{row['lowered_band']:.2f}"
        for row in run["configs"]
        if "lowered_band" in row and row["lowered_speedup"] < row["lowered_band"]
    )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="short horizons for CI smoke runs"
    )
    parser.add_argument(
        "--output",
        default="BENCH_engine.json",
        help="trajectory file to append to (default: ./BENCH_engine.json)",
    )
    parser.add_argument(
        "--fail-below",
        type=float,
        default=None,
        metavar="X",
        help="exit non-zero when any config's kernel speedup is below X "
        "(the trajectory is still written first)",
    )
    args = parser.parse_args(argv)
    run = run_benchmark(smoke=args.smoke)
    trajectory = append_run(Path(args.output), run)
    print(f"appended run to {args.output} ({len(trajectory['runs'])} runs recorded)")
    if args.fail_below is not None:
        failures = speedup_failures(run, args.fail_below)
        if failures:
            for failure in failures:
                print(f"FAIL perf regression: {failure}", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
