"""Benchmarks F1–F5: the figure-style simulation sweeps (see DESIGN.md).

Each benchmark regenerates one figure's data series, writes it to a CSV
file under ``benchmarks/results/`` and asserts the qualitative shape the
paper's analysis predicts (who wins, where latency diverges, how energy
trades off against latency).
"""

from pathlib import Path

import pytest

from repro.analysis import bounds
from repro.sim import experiments as exp
from repro.sim.reporting import series_to_csv, sweep_table

RESULTS_DIR = Path(__file__).parent / "results"


def _save(name: str, series_map) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.csv").write_text(series_to_csv(series_map))


def test_f1_latency_vs_injection_rate(run_once, benchmark):
    """F1: latency as a function of rho; universal algorithms survive high rho."""
    series = run_once(
        exp.figure_latency_vs_rate,
        n=8,
        k=4,
        rates=(0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9),
        rounds=6000,
    )
    _save("f1_latency_vs_rate", series)
    for name, s in series.items():
        print("\n" + sweep_table(s))
    # Orchestra (throughput 1) is stable across the whole sweep, including 0.9.
    assert all(series["Orchestra"].stabilities())
    # Count-Hop is stable well past the oblivious thresholds (up to 0.7 within
    # this run length; at 0.9 its phases are still converging — see
    # EXPERIMENTS.md for the longer-run confirmation).
    assert all(series["Count-Hop"].stabilities()[:-1])
    # The oblivious algorithms have long since diverged: 0.9 is far above both
    # k/n and k(k-1)/(n(n-1)) for n=8, k=4.
    assert not series["k-Clique"].stabilities()[-1]
    assert not series["k-Cycle"].stabilities()[-1]
    # Latency of Count-Hop grows with the injection rate.
    count_hop = series["Count-Hop"].latencies()
    assert count_hop[-2] >= count_hop[0]


def test_f2_scaling_with_system_size(run_once, benchmark):
    """F2: latency growth with n at a fixed moderate rate."""
    series = run_once(exp.figure_scaling_n, sizes=(4, 6, 8, 10), rho=0.25)
    _save("f2_scaling_n", series)
    for s in series.values():
        print("\n" + sweep_table(s))
        assert all(s.stabilities()), f"{s.name} should be stable at rho=0.25"
    # Count-Hop latency grows roughly like n^2: the largest system is clearly
    # slower than the smallest.
    latencies = series["Count-Hop"].latencies()
    assert latencies[-1] > latencies[0]


def test_f3_energy_latency_tradeoff(run_once, benchmark):
    """F3: a larger energy cap k widens the admissible injection-rate range.

    Each point runs the oblivious algorithms at half of their k-dependent
    stability threshold; that threshold — and hence the sustained rate —
    grows with k, which is the energy/throughput trade-off of Section 5/6.
    Latencies are recorded for the figure but are not monotone in k (larger
    groups are active for longer segments), exactly as the paper's bounds
    suggest.
    """
    series = run_once(exp.figure_energy_tradeoff, n=12, caps=(2, 3, 4, 6), rounds=15000)
    _save("f3_energy_tradeoff", series)
    for s in series.values():
        print("\n" + sweep_table(s))
    cycle = series["k-Cycle"]
    # Stable at every cap even though the injected rate grows with k.
    assert all(cycle.stabilities())
    assert all(series["k-Clique"].stabilities())
    # The admissible-rate thresholds themselves grow with k.
    thresholds = [bounds.k_cycle_rate_threshold(12, int(k)) for k in cycle.values()]
    assert thresholds == sorted(thresholds)


def test_f4_energy_usage_per_algorithm(run_once, benchmark):
    """F4: energy per round / per delivered packet across all algorithms."""
    results = run_once(exp.figure_energy_usage, n=8, k=4, rho=0.3, rounds=6000)
    rows = []
    for name, result in results.items():
        rows.append(
            f"{name:<18s} E/round={result.summary.energy_per_round:6.2f}  "
            f"E/delivery={result.summary.energy_per_delivery:8.2f}  "
            f"latency={result.latency:6d}"
        )
    report = "\n".join(rows)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "f4_energy_usage.txt").write_text(report + "\n")
    print("\n" + report)
    benchmark.extra_info["energy_table"] = report
    # The capped algorithms use at most their cap; the uncapped baselines use n.
    assert results["Count-Hop"].summary.energy_per_round <= 2.01
    assert results["Orchestra"].summary.energy_per_round <= 3.01
    assert results["RRW (uncapped)"].summary.energy_per_round == pytest.approx(8.0)
    # Energy efficiency: capped algorithms spend fewer station-rounds per packet.
    assert (
        results["Count-Hop"].summary.energy_per_delivery
        < results["RRW (uncapped)"].summary.energy_per_delivery
    )


def test_f5_queue_trajectories_across_thresholds(run_once, benchmark):
    """F5: queue trajectories below / at / above the stability thresholds."""
    from repro.sim.reporting import queue_trajectory_sparkline

    results = run_once(exp.figure_queue_trajectories, n=9, k=3, rounds=12000)
    lines = []
    for label, result in results.items():
        lines.append(f"{label:<22s} {queue_trajectory_sparkline(result)}")
    report = "\n".join(lines)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "f5_queue_trajectories.txt").write_text(report + "\n")
    print("\n" + report)
    assert results["below threshold"].stable
    assert not results["above impossibility"].stable
    assert (
        results["above impossibility"].max_queue
        > 5 * results["below threshold"].max_queue
    )
