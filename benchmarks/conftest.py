"""Shared configuration of the benchmark harness.

Each benchmark file regenerates one artefact of the paper's evaluation
(a Table 1 row, an impossibility theorem or a figure-style sweep); see the
experiment index in DESIGN.md and the measured results in EXPERIMENTS.md.

The simulations are deterministic, so every benchmark runs its experiment
exactly once (``rounds=1, iterations=1``) and asserts the qualitative
*shape* of the paper's claim; the benchmark timing is the cost of
regenerating the artefact.
"""

from __future__ import annotations

import sys
from pathlib import Path

SRC = Path(__file__).parent.parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))


import pytest


@pytest.fixture
def run_once(benchmark):
    """Run an experiment exactly once under pytest-benchmark and return its result."""

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return _run
