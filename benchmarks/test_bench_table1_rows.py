"""Benchmarks T1.1–T1.9: regenerate every row of Table 1 (see DESIGN.md).

Each benchmark runs the corresponding experiment once at its full size,
asserts the paper's qualitative claim (the *shape* check) and reports the
key measured quantities through ``benchmark.extra_info`` so they appear in
``pytest-benchmark``'s JSON output and can be copied into EXPERIMENTS.md.
"""

import pytest

from repro.sim import experiments as exp


def _record(benchmark, outcome):
    benchmark.extra_info.update(
        {
            "experiment": outcome.experiment_id,
            "params": outcome.params,
            "paper": {k: str(v) for k, v in outcome.paper.items()},
            "measured": {k: str(v) for k, v in outcome.measured.items()},
            "shape_ok": outcome.shape_ok,
        }
    )
    return outcome


def test_t1_1_orchestra_queue_bound(run_once, benchmark):
    """Orchestra sustains injection rate 1 with queues below 2n^3 + beta (cap 3)."""
    outcome = _record(benchmark, run_once(exp.experiment_orchestra_queue, n=6, rounds=6000))
    assert outcome.shape_ok
    assert outcome.measured["max_queue"] <= outcome.paper["queue_bound"]


def test_t1_2_impossibility_energy_cap_2(run_once, benchmark):
    """Theorem 2: no cap-2 algorithm is stable at injection rate 1."""
    outcome = _record(benchmark, run_once(exp.experiment_cap2_impossibility, n=6, rounds=6000))
    assert outcome.shape_ok


def test_t1_3_count_hop_latency(run_once, benchmark):
    """Count-Hop: universal at cap 2, latency ~ 2(n^2+beta)/(1-rho)."""
    outcome = _record(
        benchmark, run_once(exp.experiment_count_hop_latency, n=6, rho=0.5, rounds=8000)
    )
    assert outcome.shape_ok


def test_t1_4_adjust_window_latency(run_once, benchmark):
    """Adjust-Window: plain-packet universal routing at cap 2."""
    outcome = _record(
        benchmark, run_once(exp.experiment_adjust_window_latency, n=4, rho=0.4)
    )
    assert outcome.shape_ok


def test_t1_5_k_cycle_latency(run_once, benchmark):
    """k-Cycle: latency O(n) below injection rate (k-1)/(n-1)."""
    outcome = _record(
        benchmark, run_once(exp.experiment_k_cycle_latency, n=9, k=4, rounds=12000)
    )
    assert outcome.shape_ok


def test_t1_6_impossibility_oblivious(run_once, benchmark):
    """Theorem 6: k-oblivious algorithms diverge above injection rate k/n."""
    outcome = _record(
        benchmark, run_once(exp.experiment_oblivious_impossibility, n=9, k=3, rounds=15000)
    )
    assert outcome.shape_ok


def test_t1_7_k_clique_latency(run_once, benchmark):
    """k-Clique: latency <= 8(n^2/k)(1+beta/2k) below its rate threshold."""
    outcome = _record(
        benchmark, run_once(exp.experiment_k_clique_latency, n=8, k=4, rounds=20000)
    )
    assert outcome.shape_ok


def test_t1_8_k_subsets_stability(run_once, benchmark):
    """k-Subsets: stable at rate k(k-1)/(n(n-1)) with queues below 2 C(n,k)(n^2+beta)."""
    outcome = _record(
        benchmark, run_once(exp.experiment_k_subsets_stability, n=6, k=3, rounds=20000)
    )
    assert outcome.shape_ok


def test_t1_9_impossibility_oblivious_direct(run_once, benchmark):
    """Theorem 9: oblivious direct algorithms diverge above k(k-1)/(n(n-1))."""
    outcome = _record(
        benchmark,
        run_once(exp.experiment_oblivious_direct_impossibility, n=6, k=3, rounds=20000),
    )
    assert outcome.shape_ok


def test_table1_full_regeneration(run_once, benchmark):
    """Regenerate the whole of Table 1 (quick sizes) in one go and print it."""
    table, results = run_once(exp.regenerate_table1, quick=True)
    benchmark.extra_info["table"] = table
    assert len(results) == 9
    assert all(r.shape_ok for r in results)
    print("\n" + table)
