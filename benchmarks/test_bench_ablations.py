"""Ablation benchmarks for the design choices called out in DESIGN.md §6.

A1 — *Energy caps vs. the uncapped baselines*: how much latency the energy
     cap costs relative to RRW/MBTF with every station switched on.
A2 — *Orchestra's big-station (move-to-front) rule*: hot-spot traffic at
     rate 1 is exactly the case the baton-to-front mechanism exists for.
A3 — *k-Cycle group size*: the effect of the activity-segment length delta
     (the factor-4 safety margin of equation (2)) on latency.
A4 — *Adversary family width*: worst-of-family vs. single-pattern
     measurements, justifying the harness's use of an adversary family.
"""

from pathlib import Path

import pytest

from repro.adversary import (
    HotspotAdversary,
    SingleSourceSprayAdversary,
    SingleTargetAdversary,
)
from repro.algorithms import CountHop, KCycle, Orchestra
from repro.analysis import bounds
from repro.protocols import MoveBigToFront, RoundRobinWithholding
from repro.sim import run_simulation, worst_case_over
from repro.sim.experiments import default_adversary_family

RESULTS_DIR = Path(__file__).parent / "results"


def test_a1_energy_cap_cost(run_once, benchmark):
    """Capped algorithms pay latency for energy: quantify against uncapped RRW."""

    def run():
        n, rho, beta, rounds = 8, 0.3, 1.0, 6000
        adversary = lambda: SingleSourceSprayAdversary(rho, beta)
        return {
            "RRW (cap n)": run_simulation(RoundRobinWithholding(n), adversary(), rounds),
            "MBTF (cap n)": run_simulation(MoveBigToFront(n), adversary(), rounds),
            "Orchestra (cap 3)": run_simulation(Orchestra(n), adversary(), rounds),
            "Count-Hop (cap 2)": run_simulation(CountHop(n), adversary(), rounds),
        }

    results = run_once(run)
    lines = [
        f"{name:<20s} latency={r.latency:6d}  E/round={r.summary.energy_per_round:5.2f}"
        for name, r in results.items()
    ]
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "a1_energy_cap_cost.txt").write_text("\n".join(lines) + "\n")
    print("\n" + "\n".join(lines))
    # The uncapped baseline is fastest; the capped algorithms trade latency
    # for a >= 2.5x reduction in energy per round.
    assert results["RRW (cap n)"].latency <= results["Count-Hop (cap 2)"].latency
    assert results["Count-Hop (cap 2)"].summary.energy_per_round <= 2.01
    assert results["RRW (cap n)"].summary.energy_per_round >= 7.9


def test_a2_orchestra_big_station_rule(run_once, benchmark):
    """Hot-spot traffic at rate 1: the move-big-to-front rule keeps queues bounded."""

    def run():
        n, beta, rounds = 6, 2.0, 8000
        hotspot = SingleTargetAdversary(1.0, beta, source=3, destination=1)
        return run_simulation(Orchestra(n), hotspot, rounds)

    result = run_once(run)
    benchmark.extra_info["max_queue"] = result.max_queue
    assert result.stable
    assert result.max_queue <= bounds.orchestra_queue_bound(6, 2.0)


@pytest.mark.parametrize("delta_scale", [1, 2])
def test_a3_k_cycle_activity_segment_length(run_once, benchmark, delta_scale):
    """Stretching the activity segment delta changes latency but not stability."""

    def run():
        n, k, beta, rounds = 9, 3, 1.0, 12000
        rho = 0.5 * bounds.k_cycle_rate_threshold(n, k)
        algorithm = KCycle(n, k)
        algorithm.delta *= delta_scale
        # Rebuild controllers with the stretched delta.
        adversary = SingleSourceSprayAdversary(rho, beta)
        return run_simulation(algorithm, adversary, rounds)

    result = run_once(run)
    benchmark.extra_info["delta_scale"] = delta_scale
    benchmark.extra_info["latency"] = result.latency
    assert result.stable


def test_a4_adversary_family_width(run_once, benchmark):
    """Worst-of-family measurements dominate any single fixed pattern."""

    def run():
        n, rho, beta, rounds = 6, 0.6, 2.0, 6000
        family = default_adversary_family(rho, beta)
        worst, results = worst_case_over(lambda: CountHop(n), family, rounds)
        single = run_simulation(CountHop(n), SingleTargetAdversary(rho, beta), rounds)
        return worst, single

    worst, single = run_once(run)
    benchmark.extra_info["worst_latency"] = worst.latency
    benchmark.extra_info["single_pattern_latency"] = single.latency
    assert worst.latency >= single.latency
