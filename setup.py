"""Setuptools shim.

The canonical project metadata lives in ``pyproject.toml``.  This file exists
so that the package can also be installed in environments without network
access or without the ``wheel`` package (where PEP 517 editable builds fail):

    python setup.py develop        # or: pip install -e . --no-build-isolation
"""

from setuptools import setup

if __name__ == "__main__":
    setup()
