"""Repository-level pytest configuration.

Ensures the ``src`` layout is importable even when the package has not
been installed (useful in offline environments where ``pip install -e .``
cannot build editable wheels), and registers the ``slow`` marker used by
the longer integration tests and benchmarks.
"""

from __future__ import annotations

import sys
from pathlib import Path

SRC = Path(__file__).parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))


def pytest_configure(config):
    config.addinivalue_line("markers", "slow: long-running simulation test")
    config.addinivalue_line(
        "markers",
        "parallel: exercises the process-pool executor (spawns worker processes)",
    )
