"""Unit tests for the simulation harness: runner, sweeps, reporting."""

import pytest

from repro.adversary import RoundRobinAdversary, SingleTargetAdversary
from repro.algorithms import CountHop, KCycle
from repro.sim import RunResult, run_simulation, sweep, worst_case_over
from repro.sim.reporting import (
    queue_trajectory_sparkline,
    series_to_csv,
    summaries_table,
    sweep_table,
    write_csv,
)


class TestRunner:
    def test_run_simulation_returns_consistent_result(self):
        result = run_simulation(CountHop(4), SingleTargetAdversary(0.4, 1.0), 1500)
        assert isinstance(result, RunResult)
        assert result.n == 4
        assert result.rounds == 1500
        assert result.summary.rounds == 1500
        assert result.energy.rounds == 1500
        assert result.summary.injected == result.collector.injected_count

    def test_rejects_zero_rounds(self):
        with pytest.raises(ValueError):
            run_simulation(CountHop(4), SingleTargetAdversary(0.4, 1.0), 0)

    def test_rejects_mismatched_adversary_binding(self):
        adversary = SingleTargetAdversary(0.4, 1.0)
        adversary.bind(7)
        with pytest.raises(ValueError, match="bound to n=7"):
            run_simulation(CountHop(4), adversary, 100)

    def test_label_override(self):
        result = run_simulation(
            CountHop(4), SingleTargetAdversary(0.4, 1.0), 200, label="custom"
        )
        assert result.summary.label == "custom"

    def test_trace_recording_toggle(self):
        with_trace = run_simulation(
            CountHop(4), SingleTargetAdversary(0.4, 1.0), 100, record_trace=True
        )
        without = run_simulation(
            CountHop(4), SingleTargetAdversary(0.4, 1.0), 100
        )
        assert with_trace.trace is not None and len(with_trace.trace) == 100
        assert without.trace is None

    def test_worst_case_over_family(self):
        factories = [
            lambda: SingleTargetAdversary(0.5, 1.0),
            lambda: RoundRobinAdversary(0.5, 1.0),
        ]
        worst, results = worst_case_over(lambda: CountHop(4), factories, 1000)
        assert len(results) == 2
        assert worst.latency == max(r.latency for r in results)


class TestSweep:
    def test_sweep_produces_one_point_per_value(self):
        series = sweep(
            "demo",
            "rho",
            [0.1, 0.3],
            lambda rho: CountHop(4),
            lambda rho: SingleTargetAdversary(rho, 1.0),
            800,
        )
        assert series.values() == [0.1, 0.3]
        assert len(series.latencies()) == 2
        assert len(series.as_rows()) == 2
        assert all(row["series"] == "demo" for row in series.as_rows())

    def test_sweep_rounds_can_depend_on_value(self):
        series = sweep(
            "demo",
            "n",
            [4, 5],
            lambda n: KCycle(int(n), 2),
            lambda n: SingleTargetAdversary(0.1, 1.0),
            lambda n: int(100 * n),
        )
        assert series.points[0].result.rounds == 400
        assert series.points[1].result.rounds == 500

    def test_latency_grows_with_rate_for_count_hop(self):
        series = sweep(
            "count-hop",
            "rho",
            [0.2, 0.8],
            lambda rho: CountHop(5),
            lambda rho: SingleTargetAdversary(rho, 2.0),
            4000,
        )
        low, high = series.latencies()
        assert high >= low


class TestReporting:
    @pytest.fixture
    def sample_results(self):
        return [
            run_simulation(CountHop(4), SingleTargetAdversary(0.4, 1.0), 500),
            run_simulation(KCycle(5, 2), SingleTargetAdversary(0.1, 1.0), 500),
        ]

    def test_summaries_table(self, sample_results):
        text = summaries_table(sample_results)
        assert "Count-Hop" in text and "k-Cycle" in text
        assert len(text.splitlines()) == 3

    def test_sweep_table_and_csv(self):
        series = sweep(
            "demo",
            "rho",
            [0.1, 0.2],
            lambda rho: CountHop(4),
            lambda rho: SingleTargetAdversary(rho, 1.0),
            400,
        )
        text = sweep_table(series)
        assert "series: demo" in text
        csv_text = series_to_csv({"demo": series})
        assert csv_text.startswith("series,")
        assert csv_text.count("\n") >= 3

    def test_write_csv(self, tmp_path):
        series = sweep(
            "demo",
            "rho",
            [0.1],
            lambda rho: CountHop(4),
            lambda rho: SingleTargetAdversary(rho, 1.0),
            200,
        )
        path = write_csv({"demo": series}, tmp_path / "figure.csv")
        assert path.exists()
        assert "latency" in path.read_text()

    def test_sparkline(self, sample_results):
        line = queue_trajectory_sparkline(sample_results[0])
        assert "peak" in line
        assert len(line) > 10
