"""Unit tests for the orchestration layer: specs, cache, executor wiring."""

import pickle

import pytest

from repro.adversary import NoInjectionAdversary, SingleTargetAdversary
from repro.algorithms import CountHop
from repro.sim import (
    ParallelExecutor,
    ResultCache,
    RunSpec,
    execute_spec,
    run_simulation,
    spec_fragment,
    sweep,
    worst_case_over,
)
from repro.sim.specs import (
    available_adversaries,
    make_adversary,
    materialize_adversary,
    materialize_algorithm,
    rate_adversaries,
    register_adversary,
)


def _spec(**overrides) -> RunSpec:
    base = dict(
        algorithm="count-hop",
        algorithm_params={"n": 4},
        adversary="single-target",
        adversary_params={"rho": 0.4, "beta": 1.0},
        rounds=200,
    )
    base.update(overrides)
    return RunSpec(**base)


class TestRunSpec:
    def test_round_trips_through_dict(self):
        spec = _spec(energy_cap=3, record_trace=True, label="x")
        assert RunSpec.from_dict(spec.to_dict()) == spec

    def test_hash_ignores_param_insertion_order(self):
        a = _spec(adversary_params={"rho": 0.4, "beta": 1.0})
        b = _spec(adversary_params={"beta": 1.0, "rho": 0.4})
        assert a.spec_hash() == b.spec_hash()
        assert a == b and hash(a) == hash(b)

    def test_hash_distinguishes_every_field(self):
        base = _spec()
        assert base.spec_hash() != _spec(rounds=201).spec_hash()
        assert base.spec_hash() != _spec(record_trace=True).spec_hash()
        assert base.spec_hash() != _spec(adversary="spray").spec_hash()

    def test_execution_strategy_knobs_do_not_change_identity(self):
        # engine and plan_chunk choose *how* a run executes, not what it
        # computes (results are bit-identical, property-tested), so a
        # cached result is valid for any combination.
        base = _spec()
        assert base.spec_hash() == _spec(engine="reference").spec_hash()
        assert base.spec_hash() == _spec(plan_chunk=7).spec_hash()
        assert base == _spec(plan_chunk=7)

    def test_plan_chunk_validated(self):
        with pytest.raises(ValueError, match="plan_chunk"):
            _spec(plan_chunk=0)

    def test_rejects_unknown_adversary_and_bad_rounds(self):
        with pytest.raises(KeyError, match="unknown adversary"):
            _spec(adversary="nope")
        with pytest.raises(ValueError, match="rounds"):
            _spec(rounds=0)

    def test_rejects_unpicklable_params(self):
        with pytest.raises(TypeError, match="JSON-serialisable"):
            _spec(adversary_params={"rho": 0.4, "beta": 1.0, "schedule": object()})

    def test_specs_are_picklable(self):
        spec = _spec()
        assert pickle.loads(pickle.dumps(spec)) == spec

    def test_from_fragments(self):
        spec = RunSpec.from_fragments(
            spec_fragment("count-hop", n=4),
            spec_fragment("single-target", rho=0.4, beta=1.0),
            200,
        )
        assert spec == _spec()

    def test_execute_matches_direct_run(self):
        direct = run_simulation(CountHop(4), SingleTargetAdversary(0.4, 1.0), 200)
        via_spec = execute_spec(_spec())
        assert via_spec.summary == direct.summary


class TestAdversaryRegistry:
    def test_registries_cover_cli_surface(self):
        names = available_adversaries()
        for key in ("single-target", "spray", "random", "adaptive-starvation"):
            assert key in names
        assert "least-on-station" not in rate_adversaries()
        assert "no-injection" not in rate_adversaries()

    def test_schedule_aware_needs_schedule(self):
        with pytest.raises(ValueError, match="schedule"):
            make_adversary("least-on-station", rho=0.8, beta=1.0, horizon=10)
        with pytest.raises(ValueError, match="does not take"):
            make_adversary("single-target", rho=0.8, beta=1.0, schedule=object())

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_adversary("single-target", SingleTargetAdversary)

    def test_materialize_passthrough_and_fragments(self):
        live = NoInjectionAdversary()
        assert materialize_adversary(live) is live
        built = materialize_adversary(spec_fragment("no-injection"))
        assert isinstance(built, NoInjectionAdversary)
        algo = materialize_algorithm(spec_fragment("count-hop", n=4))
        assert algo.n == 4
        with pytest.raises(TypeError):
            materialize_algorithm(42)


class TestResultCache:
    def test_put_then_get(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = _spec()
        assert cache.get(spec) is None
        result = execute_spec(spec)
        cache.put(spec, result)
        assert spec in cache and len(cache) == 1
        hit = cache.get(spec)
        assert hit is not None and hit.summary == result.summary
        assert cache.hits == 1 and cache.misses == 1

    def test_corrupt_payload_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = _spec()
        cache.put(spec, execute_spec(spec))
        (tmp_path / f"{spec.spec_hash()}.pkl").write_bytes(b"garbage")
        assert cache.get(spec) is None

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = _spec()
        cache.put(spec, execute_spec(spec))
        assert cache.clear() == 1
        assert len(cache) == 0 and cache.get(spec) is None

    def test_executor_consults_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = _spec()
        with ParallelExecutor(workers=1, cache=cache) as executor:
            first = executor.run([spec])[0]
            second = executor.run([spec])[0]
        assert cache.hits == 1
        assert first.summary == second.summary

    def test_env_var_overrides_default_dir(self, tmp_path, monkeypatch):
        from repro.sim.cache import default_cache_dir

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "custom"))
        assert default_cache_dir() == tmp_path / "custom"


class TestSweepForwarding:
    def test_sweep_forwards_record_trace(self):
        series = sweep(
            "demo",
            "rho",
            [0.2],
            lambda rho: CountHop(4),
            lambda rho: SingleTargetAdversary(rho, 1.0),
            150,
            record_trace=True,
        )
        assert series.points[0].result.trace is not None
        assert len(series.points[0].result.trace) == 150

    def test_sweep_forwards_energy_cap(self):
        series = sweep(
            "demo",
            "rho",
            [0.2],
            lambda rho: CountHop(4),
            lambda rho: SingleTargetAdversary(rho, 1.0),
            150,
            energy_cap=3,
        )
        assert series.points[0].result.energy.cap == 3

    def test_sweep_forwarding_applies_to_spec_path_too(self):
        series = sweep(
            "demo",
            "rho",
            [0.2],
            lambda rho: spec_fragment("count-hop", n=4),
            lambda rho: spec_fragment("single-target", rho=rho, beta=1.0),
            150,
            energy_cap=3,
            record_trace=True,
        )
        result = series.points[0].result
        assert result.energy.cap == 3 and result.trace is not None

    def test_parallel_sweep_requires_fragments(self):
        with pytest.raises(ValueError, match="declarative factories"):
            sweep(
                "demo",
                "rho",
                [0.2],
                lambda rho: CountHop(4),
                lambda rho: SingleTargetAdversary(rho, 1.0),
                100,
                workers=2,
            )


class TestWorstCaseTieBreak:
    def test_tie_break_is_stable_under_reordering(self):
        # Neither adversary injects within the 100-round run (the burst one
        # first wakes at round 200), so both runs tie on (latency, max_queue)
        # and only the description tie-break decides.
        from repro.adversary import BurstThenIdleAdversary

        factories = [
            lambda: BurstThenIdleAdversary(0.5, 1.0, idle_rounds=200),
            lambda: NoInjectionAdversary(),
        ]
        worst_fwd, _ = worst_case_over(lambda: CountHop(4), factories, 100)
        worst_rev, _ = worst_case_over(lambda: CountHop(4), factories[::-1], 100)
        assert worst_fwd.adversary == worst_rev.adversary

    def test_parallel_worst_case_matches_serial(self):
        algorithm = lambda: spec_fragment("count-hop", n=4)
        factories = [
            lambda: spec_fragment("single-target", rho=0.5, beta=1.0),
            lambda: spec_fragment("round-robin", rho=0.5, beta=1.0),
            lambda: spec_fragment("bursty", rho=0.5, beta=2.0),
        ]
        worst_s, runs_s = worst_case_over(algorithm, factories, 400, workers=1)
        worst_p, runs_p = worst_case_over(algorithm, factories, 400, workers=2)
        assert [r.summary for r in runs_s] == [r.summary for r in runs_p]
        assert worst_s.summary == worst_p.summary


class TestChunkingAndProgress:
    def test_default_chunk_size_bounds(self):
        from repro.sim import default_chunk_size

        assert default_chunk_size(1, 4) == 1
        assert default_chunk_size(16, 4) == 1
        assert default_chunk_size(64, 4) == 4
        assert default_chunk_size(10_000, 4) == 32  # capped

    def test_execute_spec_batch_preserves_order(self):
        specs = [_spec(rounds=r) for r in (21, 22, 23)]
        from repro.sim import execute_spec_batch

        results = execute_spec_batch(specs)
        assert [r.rounds for r in results] == [21, 22, 23]
        assert results[0].summary.as_dict() == execute_spec(specs[0]).summary.as_dict()

    def test_serial_progress_counts_every_spec(self):
        calls = []
        specs = [_spec(rounds=r) for r in (21, 22, 23)]
        with ParallelExecutor(1) as executor:
            executor.run(specs, progress=lambda done, total: calls.append((done, total)))
        assert calls == [(1, 3), (2, 3), (3, 3)]

    def test_progress_reports_cache_hits_immediately(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = _spec(rounds=31)
        with ParallelExecutor(1, cache=cache) as executor:
            executor.run([spec])
            calls = []
            executor.run([spec], progress=lambda d, t: calls.append((d, t)))
        assert calls == [(1, 1)]

    def test_executor_level_progress_used_when_run_has_none(self):
        calls = []
        with ParallelExecutor(1, progress=lambda d, t: calls.append(d)) as executor:
            executor.run([_spec(rounds=21)])
        assert calls == [1]

    def test_chunk_size_validated(self):
        with pytest.raises(ValueError, match="chunk_size"):
            ParallelExecutor(2, chunk_size=0)

    def test_progress_ticker_non_tty_output(self):
        import io

        from repro.sim import ProgressTicker

        stream = io.StringIO()
        ticker = ProgressTicker("runs", stream=stream)
        for done in range(1, 21):
            ticker(done, 20)
        lines = stream.getvalue().splitlines()
        assert lines[0] == "runs: 1/20"
        assert lines[-1] == "runs: 20/20"
        # Sparse: roughly one line per 10% plus the first, not 20 lines.
        assert len(lines) <= 12


@pytest.mark.parallel
class TestChunkedParallelDispatch:
    def test_chunked_results_match_serial_order_and_values(self):
        specs = [_spec(rounds=20 + i) for i in range(6)]
        serial = [execute_spec(s) for s in specs]
        with ParallelExecutor(2, chunk_size=2) as executor:
            calls = []
            parallel = executor.run(
                specs, progress=lambda d, t: calls.append((d, t))
            )
        assert [r.summary.as_dict() for r in parallel] == [
            r.summary.as_dict() for r in serial
        ]
        # Three chunks of two specs: progress advances in chunk steps.
        assert [t for _, t in calls] == [6, 6, 6]
        assert sorted(d for d, _ in calls) == [2, 4, 6]

    def test_chunked_dispatch_fills_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        specs = [_spec(rounds=20 + i) for i in range(4)]
        with ParallelExecutor(2, cache=cache, chunk_size=2) as executor:
            executor.run(specs)
        assert all(spec in cache for spec in specs)
