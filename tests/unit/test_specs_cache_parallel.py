"""Unit tests for the orchestration layer: specs, cache, executor wiring."""

import dataclasses
import pickle

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.adversary import NoInjectionAdversary, SingleTargetAdversary
from repro.algorithms import CountHop
from repro.sim import (
    ParallelExecutor,
    ResultCache,
    RunSpec,
    execute_spec,
    run_simulation,
    spec_fragment,
    sweep,
    worst_case_over,
)
from repro.sim.runner import ENGINE_KINDS
from repro.sim.specs import (
    available_adversaries,
    make_adversary,
    materialize_adversary,
    materialize_algorithm,
    rate_adversaries,
    register_adversary,
)


def _spec(**overrides) -> RunSpec:
    base = dict(
        algorithm="count-hop",
        algorithm_params={"n": 4},
        adversary="single-target",
        adversary_params={"rho": 0.4, "beta": 1.0},
        rounds=200,
    )
    base.update(overrides)
    return RunSpec(**base)


class TestRunSpec:
    def test_round_trips_through_dict(self):
        spec = _spec(energy_cap=3, record_trace=True, label="x")
        assert RunSpec.from_dict(spec.to_dict()) == spec

    def test_round_trip_preserves_execution_knobs(self):
        # The historical bug: to_dict() omitted the execution knobs while
        # from_dict() read them, so a spec crossing a process boundary
        # silently reverted to engine="auto" / default chunking.
        spec = _spec(
            engine="reference", plan_chunk=7, quiescence_skip=False, lowering=False
        )
        rebuilt = RunSpec.from_dict(spec.to_dict())
        assert rebuilt.engine == "reference"
        assert rebuilt.plan_chunk == 7
        assert rebuilt.quiescence_skip is False
        assert rebuilt.lowering is False

    @given(
        engine=st.sampled_from(ENGINE_KINDS),
        plan_chunk=st.one_of(st.none(), st.integers(min_value=1, max_value=5000)),
        quiescence_skip=st.booleans(),
        lowering=st.booleans(),
        rounds=st.integers(min_value=1, max_value=10_000),
        energy_cap=st.one_of(st.none(), st.integers(min_value=1, max_value=8)),
        label=st.one_of(st.none(), st.text(max_size=12)),
    )
    def test_round_trip_is_lossless_for_every_field(
        self, engine, plan_chunk, quiescence_skip, lowering, rounds, energy_cap, label
    ):
        spec = _spec(
            engine=engine,
            plan_chunk=plan_chunk,
            quiescence_skip=quiescence_skip,
            lowering=lowering,
            rounds=rounds,
            energy_cap=energy_cap,
            label=label,
        )
        rebuilt = RunSpec.from_dict(spec.to_dict())
        assert rebuilt == spec
        for field in dataclasses.fields(RunSpec):
            assert getattr(rebuilt, field.name) == getattr(spec, field.name), field.name
        # The execution knobs never leak into the identity.
        assert rebuilt.spec_hash() == spec.spec_hash()
        assert spec.spec_hash() == _spec(rounds=rounds, energy_cap=energy_cap, label=label).spec_hash()

    def test_spec_hash_is_stable_across_versions(self):
        # Pinned hex digest: the identity encoding is an on-disk contract
        # (cache keys, manifests).  Adding serialised fields to to_dict()
        # must never shift it — identity_dict() is what gets hashed.
        spec = _spec(engine="reference", plan_chunk=9, quiescence_skip=False)
        assert spec.canonical_json() == (
            '{"adversary":"single-target",'
            '"adversary_params":{"beta":1.0,"rho":0.4},'
            '"algorithm":"count-hop","algorithm_params":{"n":4},'
            '"energy_cap":null,"enforce_energy_cap":true,"label":null,'
            '"record_trace":false,"rounds":200}'
        )

    def test_hash_ignores_param_insertion_order(self):
        a = _spec(adversary_params={"rho": 0.4, "beta": 1.0})
        b = _spec(adversary_params={"beta": 1.0, "rho": 0.4})
        assert a.spec_hash() == b.spec_hash()
        assert a == b and hash(a) == hash(b)

    def test_hash_distinguishes_every_field(self):
        base = _spec()
        assert base.spec_hash() != _spec(rounds=201).spec_hash()
        assert base.spec_hash() != _spec(record_trace=True).spec_hash()
        assert base.spec_hash() != _spec(adversary="spray").spec_hash()

    def test_execution_strategy_knobs_do_not_change_identity(self):
        # engine and plan_chunk choose *how* a run executes, not what it
        # computes (results are bit-identical, property-tested), so a
        # cached result is valid for any combination.
        base = _spec()
        assert base.spec_hash() == _spec(engine="reference").spec_hash()
        assert base.spec_hash() == _spec(plan_chunk=7).spec_hash()
        assert base == _spec(plan_chunk=7)

    def test_fault_plan_is_an_execution_knob(self):
        # A fault-plan stamp rides to workers via to_dict() but must never
        # change a spec's identity: injected faults cannot move cache keys
        # or manifest entries.
        from repro.sim import FaultPlan

        stamp = FaultPlan(seed=3, transient_rate=0.5).stamp(2)
        base = _spec()
        stamped = _spec(fault_plan=stamp)
        assert stamped.spec_hash() == base.spec_hash()
        assert "fault_plan" not in base.identity_dict()
        rebuilt = RunSpec.from_dict(stamped.to_dict())
        assert rebuilt.fault_plan == stamp
        assert RunSpec.from_dict(base.to_dict()).fault_plan is None

    def test_plan_chunk_validated(self):
        with pytest.raises(ValueError, match="plan_chunk"):
            _spec(plan_chunk=0)

    def test_rejects_unknown_adversary_and_bad_rounds(self):
        with pytest.raises(KeyError, match="unknown adversary"):
            _spec(adversary="nope")
        with pytest.raises(ValueError, match="rounds"):
            _spec(rounds=0)

    def test_rejects_unpicklable_params(self):
        with pytest.raises(TypeError, match="JSON-serialisable"):
            _spec(adversary_params={"rho": 0.4, "beta": 1.0, "schedule": object()})

    def test_specs_are_picklable(self):
        spec = _spec()
        assert pickle.loads(pickle.dumps(spec)) == spec

    def test_from_fragments(self):
        spec = RunSpec.from_fragments(
            spec_fragment("count-hop", n=4),
            spec_fragment("single-target", rho=0.4, beta=1.0),
            200,
        )
        assert spec == _spec()

    def test_execute_matches_direct_run(self):
        direct = run_simulation(CountHop(4), SingleTargetAdversary(0.4, 1.0), 200)
        via_spec = execute_spec(_spec())
        assert via_spec.summary == direct.summary


class TestAdversaryRegistry:
    def test_registries_cover_cli_surface(self):
        names = available_adversaries()
        for key in ("single-target", "spray", "random", "adaptive-starvation"):
            assert key in names
        assert "least-on-station" not in rate_adversaries()
        assert "no-injection" not in rate_adversaries()

    def test_schedule_aware_needs_schedule(self):
        with pytest.raises(ValueError, match="schedule"):
            make_adversary("least-on-station", rho=0.8, beta=1.0, horizon=10)
        with pytest.raises(ValueError, match="does not take"):
            make_adversary("single-target", rho=0.8, beta=1.0, schedule=object())

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_adversary("single-target", SingleTargetAdversary)

    def test_materialize_passthrough_and_fragments(self):
        live = NoInjectionAdversary()
        assert materialize_adversary(live) is live
        built = materialize_adversary(spec_fragment("no-injection"))
        assert isinstance(built, NoInjectionAdversary)
        algo = materialize_algorithm(spec_fragment("count-hop", n=4))
        assert algo.n == 4
        with pytest.raises(TypeError):
            materialize_algorithm(42)


class TestResultCache:
    def test_put_then_get(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = _spec()
        assert cache.get(spec) is None
        result = execute_spec(spec)
        cache.put(spec, result)
        assert spec in cache and len(cache) == 1
        hit = cache.get(spec)
        assert hit is not None and hit.summary == result.summary
        assert cache.hits == 1 and cache.misses == 1

    def test_corrupt_payload_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = _spec()
        cache.put(spec, execute_spec(spec))
        (tmp_path / f"{spec.spec_hash()}.pkl").write_bytes(b"garbage")
        assert cache.get(spec) is None

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = _spec()
        cache.put(spec, execute_spec(spec))
        assert cache.clear() == 1
        assert len(cache) == 0 and cache.get(spec) is None

    def test_clear_counts_orphan_sidecars_and_sweeps_tmp(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = _spec()
        cache.put(spec, execute_spec(spec))  # one complete entry
        (tmp_path / "feedbeef.json").write_text("{}")  # orphan sidecar
        (tmp_path / "tmpabc123.tmp").write_bytes(b"partial")  # stale temp file
        assert cache.clear() == 2  # entry + orphan, tmp swept but not counted
        assert list(tmp_path.iterdir()) == []

    def test_crash_between_sidecar_and_payload_reads_as_clean_miss(
        self, tmp_path, monkeypatch
    ):
        """Kill the process between the two put() writes: the sidecar lands,
        the payload does not, and the entry must read as an ordinary miss."""
        cache = ResultCache(tmp_path)
        spec = _spec()
        result = execute_spec(spec)

        real_write = ResultCache._atomic_write

        def crashing_write(self, path, data):
            if path.suffix == ".pkl":
                raise OSError("simulated crash before payload write")
            real_write(self, path, data)

        monkeypatch.setattr(ResultCache, "_atomic_write", crashing_write)
        with pytest.raises(OSError, match="simulated crash"):
            cache.put(spec, result)
        monkeypatch.undo()

        # Sidecar-then-payload ordering: the interrupted entry has a sidecar
        # but no payload, so membership and lookup see a clean miss ...
        assert cache._sidecar_path(spec).exists()
        assert not cache._payload_path(spec).exists()
        assert spec not in cache and len(cache) == 0
        assert cache.get(spec) is None
        # ... no stray .tmp survives the failed write ...
        assert not list(tmp_path.glob("*.tmp"))
        # ... and a retried put() simply completes the entry.
        cache.put(spec, result)
        hit = cache.get(spec)
        assert hit is not None and hit.summary == result.summary

    def test_hit_is_shared_across_execution_strategies(self, tmp_path):
        # engine / plan_chunk / quiescence_skip are execution knobs: results
        # are bit-identical, the hash is shared, and the stored-spec check
        # must compare identities — not the full serialised dict.
        cache = ResultCache(tmp_path)
        stored = _spec(engine="kernel", plan_chunk=64)
        cache.put(stored, execute_spec(stored))
        assert cache.get(_spec(engine="reference", quiescence_skip=False)) is not None
        assert cache.hits == 1

    def test_legacy_identity_only_stored_spec_still_hits(self, tmp_path):
        # Entries written before the execution knobs were serialised stored
        # the identity dict alone; they must remain valid hits.
        import pickle as _pickle

        from repro.sim.cache import CACHE_VERSION

        cache = ResultCache(tmp_path)
        spec = _spec()
        result = execute_spec(spec)
        payload = {
            "version": CACHE_VERSION,
            "spec": spec.identity_dict(),
            "result": result,
        }
        cache._payload_path(spec).write_bytes(_pickle.dumps(payload))
        hit = cache.get(spec)
        assert hit is not None and hit.summary == result.summary

    def test_checksum_mismatch_raises_corruption_error(self, tmp_path):
        from repro.sim import CacheCorruptionError

        cache = ResultCache(tmp_path)
        spec = _spec()
        cache.put(spec, execute_spec(spec))
        path = cache._payload_path(spec)
        raw = path.read_bytes()
        # Flip one byte of the body under an intact checksum header.
        path.write_bytes(raw[:-1] + bytes([raw[-1] ^ 0xFF]))
        with pytest.raises(CacheCorruptionError, match="checksum mismatch"):
            ResultCache._load_payload(path)

    def test_truncated_payload_quarantines_and_recomputes(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = _spec()
        cache.put(spec, execute_spec(spec))
        path = cache._payload_path(spec)
        path.write_bytes(path.read_bytes()[:80])  # keep the header, cut the body
        # get() never raises: the bad entry moves to corrupt/ and reads as
        # a miss, so the caller recomputes.
        assert cache.get(spec) is None
        assert cache.quarantined == 1 and cache.misses == 1
        assert (cache.quarantine_dir / path.name).exists()
        assert not path.exists()
        assert cache.quarantined_entries() == 1

    def test_clear_reports_quarantined_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = _spec()
        cache.put(spec, execute_spec(spec))
        cache._payload_path(spec).write_bytes(b"\x00" * 80)
        assert cache.get(spec) is None  # quarantines payload + sidecar
        cache.put(spec, execute_spec(spec))  # fresh live entry
        stats = cache.clear()
        assert stats == 1  # int compat: live entries only
        assert stats.entries == 1
        assert stats.quarantined == 1
        assert stats.tmp_swept == 0
        assert list(tmp_path.iterdir()) == []  # corrupt/ removed too

    def test_injected_corruption_is_deterministic(self, tmp_path):
        from repro.sim import FaultPlan

        plan = FaultPlan(seed=11, corrupt_rate=1.0, fault_budget=1)
        spec = _spec()
        result = execute_spec(spec)

        cache = ResultCache(tmp_path, fault_plan=plan)
        cache.put(spec, result)
        assert cache.get(spec) is None  # read 0: coin fires, truncated
        cache.put(spec, result)
        hit = cache.get(spec)  # read 1: past the budget, clean
        assert hit is not None and hit.summary == result.summary
        assert cache.quarantined == 1

    def test_executor_consults_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = _spec()
        with ParallelExecutor(workers=1, cache=cache) as executor:
            first = executor.run([spec])[0]
            second = executor.run([spec])[0]
        assert cache.hits == 1
        assert first.summary == second.summary

    def test_env_var_overrides_default_dir(self, tmp_path, monkeypatch):
        from repro.sim.cache import default_cache_dir

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "custom"))
        assert default_cache_dir() == tmp_path / "custom"


class TestSweepForwarding:
    def test_sweep_forwards_record_trace(self):
        series = sweep(
            "demo",
            "rho",
            [0.2],
            lambda rho: CountHop(4),
            lambda rho: SingleTargetAdversary(rho, 1.0),
            150,
            record_trace=True,
        )
        assert series.points[0].result.trace is not None
        assert len(series.points[0].result.trace) == 150

    def test_sweep_forwards_energy_cap(self):
        series = sweep(
            "demo",
            "rho",
            [0.2],
            lambda rho: CountHop(4),
            lambda rho: SingleTargetAdversary(rho, 1.0),
            150,
            energy_cap=3,
        )
        assert series.points[0].result.energy.cap == 3

    def test_sweep_forwarding_applies_to_spec_path_too(self):
        series = sweep(
            "demo",
            "rho",
            [0.2],
            lambda rho: spec_fragment("count-hop", n=4),
            lambda rho: spec_fragment("single-target", rho=rho, beta=1.0),
            150,
            energy_cap=3,
            record_trace=True,
        )
        result = series.points[0].result
        assert result.energy.cap == 3 and result.trace is not None

    def test_parallel_sweep_requires_fragments(self):
        with pytest.raises(ValueError, match="declarative factories"):
            sweep(
                "demo",
                "rho",
                [0.2],
                lambda rho: CountHop(4),
                lambda rho: SingleTargetAdversary(rho, 1.0),
                100,
                workers=2,
            )


class TestWorstCaseTieBreak:
    def test_tie_break_is_stable_under_reordering(self):
        # Neither adversary injects within the 100-round run (the burst one
        # first wakes at round 200), so both runs tie on (latency, max_queue)
        # and only the description tie-break decides.
        from repro.adversary import BurstThenIdleAdversary

        factories = [
            lambda: BurstThenIdleAdversary(0.5, 1.0, idle_rounds=200),
            lambda: NoInjectionAdversary(),
        ]
        worst_fwd, _ = worst_case_over(lambda: CountHop(4), factories, 100)
        worst_rev, _ = worst_case_over(lambda: CountHop(4), factories[::-1], 100)
        assert worst_fwd.adversary == worst_rev.adversary

    def test_parallel_worst_case_matches_serial(self):
        algorithm = lambda: spec_fragment("count-hop", n=4)
        factories = [
            lambda: spec_fragment("single-target", rho=0.5, beta=1.0),
            lambda: spec_fragment("round-robin", rho=0.5, beta=1.0),
            lambda: spec_fragment("bursty", rho=0.5, beta=2.0),
        ]
        worst_s, runs_s = worst_case_over(algorithm, factories, 400, workers=1)
        worst_p, runs_p = worst_case_over(algorithm, factories, 400, workers=2)
        assert [r.summary for r in runs_s] == [r.summary for r in runs_p]
        assert worst_s.summary == worst_p.summary


class TestChunkingAndProgress:
    def test_default_chunk_size_bounds(self):
        from repro.sim import default_chunk_size

        assert default_chunk_size(1, 4) == 1
        assert default_chunk_size(16, 4) == 1
        assert default_chunk_size(64, 4) == 4
        assert default_chunk_size(10_000, 4) == 32  # capped

    def test_execute_spec_batch_preserves_order(self):
        specs = [_spec(rounds=r) for r in (21, 22, 23)]
        from repro.sim import execute_spec_batch

        results = execute_spec_batch(specs)
        assert [r.rounds for r in results] == [21, 22, 23]
        assert results[0].summary.as_dict() == execute_spec(specs[0]).summary.as_dict()

    def test_serial_progress_counts_every_spec(self):
        calls = []
        specs = [_spec(rounds=r) for r in (21, 22, 23)]
        with ParallelExecutor(1) as executor:
            executor.run(specs, progress=lambda done, total: calls.append((done, total)))
        assert calls == [(1, 3), (2, 3), (3, 3)]

    def test_progress_reports_cache_hits_immediately(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = _spec(rounds=31)
        with ParallelExecutor(1, cache=cache) as executor:
            executor.run([spec])
            calls = []
            executor.run([spec], progress=lambda d, t: calls.append((d, t)))
        assert calls == [(1, 1)]

    def test_executor_level_progress_used_when_run_has_none(self):
        calls = []
        with ParallelExecutor(1, progress=lambda d, t: calls.append(d)) as executor:
            executor.run([_spec(rounds=21)])
        assert calls == [1]

    def test_chunk_size_validated(self):
        with pytest.raises(ValueError, match="chunk_size"):
            ParallelExecutor(2, chunk_size=0)

    def test_progress_ticker_non_tty_output(self):
        import io

        from repro.sim import ProgressTicker

        stream = io.StringIO()
        ticker = ProgressTicker("runs", stream=stream)
        for done in range(1, 21):
            ticker(done, 20)
        lines = stream.getvalue().splitlines()
        assert lines[0] == "runs: 1/20"
        assert lines[-1] == "runs: 20/20"
        # Sparse: roughly one line per 10% plus the first, not 20 lines.
        assert len(lines) <= 12


@pytest.mark.parallel
class TestChunkedParallelDispatch:
    def test_chunked_results_match_serial_order_and_values(self):
        specs = [_spec(rounds=20 + i) for i in range(6)]
        serial = [execute_spec(s) for s in specs]
        with ParallelExecutor(2, chunk_size=2) as executor:
            calls = []
            parallel = executor.run(
                specs, progress=lambda d, t: calls.append((d, t))
            )
        assert [r.summary.as_dict() for r in parallel] == [
            r.summary.as_dict() for r in serial
        ]
        # Three chunks of two specs: progress advances in chunk steps.
        assert [t for _, t in calls] == [6, 6, 6]
        assert sorted(d for d, _ in calls) == [2, 4, 6]

    def test_chunked_dispatch_fills_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        specs = [_spec(rounds=20 + i) for i in range(4)]
        with ParallelExecutor(2, cache=cache, chunk_size=2) as executor:
            executor.run(specs)
        assert all(spec in cache for spec in specs)
