"""Unit tests for Adjust-Window (Section 4.2)."""

import pytest

from repro.adversary import NoInjectionAdversary, SingleTargetAdversary
from repro.algorithms.adjust_window import (
    AdjustWindow,
    WindowLayout,
    initial_window_size,
    lg,
)
from repro.sim import run_simulation


class TestLg:
    def test_matches_paper_definition(self):
        assert lg(0) == 1
        assert lg(1) == 1
        assert lg(3) == 2
        assert lg(7) == 3
        assert lg(8) == 4

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            lg(-1)


class TestWindowLayout:
    def test_stage_lengths_match_formulas(self):
        n, L = 4, 32768
        layout = WindowLayout.for_window(n, L)
        assert layout.phase_len == 2 + 3 * layout.lgL
        assert layout.gossip_len == n * n * layout.phase_len
        assert layout.aux_len == 8 * n**3 * layout.lgL
        assert layout.main_len == L - layout.gossip_len - layout.aux_len
        assert layout.small_threshold == 4 * n * layout.lgL

    def test_stage_classification(self):
        layout = WindowLayout.for_window(4, 32768)
        assert layout.stage_of(0) == "gossip"
        assert layout.stage_of(layout.gossip_len) == "main"
        assert layout.stage_of(layout.aux_start) == "aux"
        assert layout.stage_of(layout.L - 1) == "aux"

    def test_initial_window_leaves_half_for_main(self):
        for n in (3, 4, 5, 6):
            L = initial_window_size(n)
            layout = WindowLayout.for_window(n, L)
            assert layout.main_len >= L // 2
            # And the previous power of two would not have been enough.
            smaller = WindowLayout.for_window(n, L // 2)
            assert smaller.main_len < (L // 2) // 2

    def test_initial_window_grows_with_n(self):
        assert initial_window_size(6) >= initial_window_size(3)


class TestAdjustWindowConstruction:
    def test_properties(self):
        props = AdjustWindow(4).properties()
        assert props.energy_cap == 2
        assert props.plain_packet and not props.direct and not props.oblivious

    def test_initial_window_override_validation(self):
        with pytest.raises(ValueError):
            AdjustWindow(4, initial_window=64)
        algo = AdjustWindow(4, initial_window=initial_window_size(4) * 2)
        assert algo.initial_window == initial_window_size(4) * 2

    def test_latency_bound_helper(self):
        assert AdjustWindow(4).latency_bound(0.5, 2.0) > 0
        assert AdjustWindow(4).latency_bound(1.0, 2.0) == float("inf")


class TestAdjustWindowBehaviour:
    def test_quiescent_run_stays_silent_and_cheap(self):
        algo = AdjustWindow(3)
        result = run_simulation(algo, NoInjectionAdversary(), 2000, record_trace=True)
        assert result.summary.injected == 0
        assert result.summary.max_energy <= 2
        assert all(e.outcome.name != "COLLISION" for e in result.trace)

    def test_plain_packet_discipline(self):
        algo = AdjustWindow(3)
        result = run_simulation(
            algo, SingleTargetAdversary(0.3, 2.0), 3000, record_trace=True
        )
        for event in result.trace:
            if event.message is not None:
                assert event.message.packet is not None
                assert not event.message.control

    def test_energy_cap_two_under_load(self):
        algo = AdjustWindow(3)
        result = run_simulation(algo, SingleTargetAdversary(0.5, 2.0), 5000)
        assert result.summary.max_energy <= 2

    @pytest.mark.slow
    def test_delivers_across_windows(self):
        algo = AdjustWindow(3)
        rounds = 3 * algo.initial_window
        result = run_simulation(algo, SingleTargetAdversary(0.3, 2.0), rounds)
        # Everything injected before the final window must have been delivered.
        assert result.summary.delivered > 0
        assert result.summary.delivery_ratio > 0.5
        assert result.stable
