"""Unit tests for the prior-work protocols: token replicas, RRW/OF-RRW, MBTF."""

from repro.adversary import NoInjectionAdversary, SingleTargetAdversary
from repro.channel.feedback import ChannelOutcome
from repro.channel.message import Message
from repro.channel.packet import Packet
from repro.protocols import (
    MoveBigToFront,
    MoveBigToFrontReplica,
    OldFirstRoundRobinWithholding,
    RoundRobinWithholding,
    TokenRingReplica,
)
from repro.sim import run_simulation


class TestTokenRingReplica:
    def test_silence_advances_token(self):
        replica = TokenRingReplica([3, 5, 7])
        assert replica.holder == 3
        replica.observe(ChannelOutcome.SILENCE)
        assert replica.holder == 5

    def test_heard_keeps_token(self):
        replica = TokenRingReplica([3, 5, 7])
        replica.observe(ChannelOutcome.HEARD)
        assert replica.holder == 3

    def test_phase_completes_after_full_cycle(self):
        replica = TokenRingReplica([0, 1, 2])
        completions = [replica.observe(ChannelOutcome.SILENCE) for _ in range(6)]
        assert completions == [False, False, True, False, False, True]
        assert replica.phase_no == 2

    def test_replicas_stay_consistent_across_members(self):
        outcomes = [
            ChannelOutcome.HEARD,
            ChannelOutcome.SILENCE,
            ChannelOutcome.SILENCE,
            ChannelOutcome.HEARD,
            ChannelOutcome.SILENCE,
        ]
        a, b = TokenRingReplica([0, 1, 2]), TokenRingReplica([0, 1, 2])
        for outcome in outcomes:
            a.observe(outcome)
            b.observe(outcome)
        assert a.holder == b.holder
        assert a.phase_no == b.phase_no

    def test_requires_distinct_members(self):
        import pytest

        with pytest.raises(ValueError):
            TokenRingReplica([1, 1])
        with pytest.raises(ValueError):
            TokenRingReplica([])


class TestMoveBigToFrontReplica:
    def _message(self, sender, big=False):
        packet = Packet(destination=(sender + 1) % 4, injected_at=0, origin=sender)
        control = {MoveBigToFrontReplica.BIG_FLAG: True} if big else {}
        return Message(sender=sender, packet=packet, control=control)

    def test_silence_advances(self):
        replica = MoveBigToFrontReplica([0, 1, 2])
        replica.observe(ChannelOutcome.SILENCE, None)
        assert replica.holder == 1

    def test_plain_message_keeps_holder(self):
        replica = MoveBigToFrontReplica([0, 1, 2])
        replica.observe(ChannelOutcome.HEARD, self._message(0))
        assert replica.holder == 0

    def test_big_announcement_moves_to_front(self):
        replica = MoveBigToFrontReplica([0, 1, 2])
        replica.observe(ChannelOutcome.SILENCE, None)  # token at 1
        replica.observe(ChannelOutcome.SILENCE, None)  # token at 2
        replica.observe(ChannelOutcome.HEARD, self._message(2, big=True))
        assert replica.order[0] == 2
        assert replica.holder == 2

    def test_unknown_sender_ignored(self):
        replica = MoveBigToFrontReplica([0, 1])
        replica.observe(ChannelOutcome.HEARD, self._message(3, big=True))
        assert replica.order == [0, 1]


class TestUncappedBaselines:
    def test_rrw_delivers_everything_under_light_load(self):
        result = run_simulation(
            RoundRobinWithholding(5), SingleTargetAdversary(0.3, 1.0), 2000
        )
        assert result.summary.delivery_ratio > 0.99
        assert result.stable

    def test_of_rrw_delivers_everything_under_light_load(self):
        result = run_simulation(
            OldFirstRoundRobinWithholding(5), SingleTargetAdversary(0.3, 1.0), 2000
        )
        assert result.summary.delivery_ratio > 0.99
        assert result.stable

    def test_mbtf_is_stable_at_rate_one_single_target(self):
        result = run_simulation(
            MoveBigToFront(5), SingleTargetAdversary(1.0, 2.0), 4000
        )
        assert result.stable
        assert result.summary.delivery_ratio > 0.95

    def test_baselines_use_full_energy(self):
        result = run_simulation(
            RoundRobinWithholding(5), NoInjectionAdversary(), 50
        )
        assert result.summary.energy_per_round == 5.0

    def test_quiescent_system_stays_silent(self):
        result = run_simulation(MoveBigToFront(4), NoInjectionAdversary(), 100)
        assert result.summary.injected == 0
        assert result.summary.max_queue == 0
