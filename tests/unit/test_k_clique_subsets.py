"""Unit tests for k-Clique and k-Subsets (Section 6)."""

import math

import pytest

from repro.adversary import (
    GroupLocalAdversary,
    NoInjectionAdversary,
    SingleTargetAdversary,
)
from repro.algorithms.k_clique import KClique, clique_pairs, half_groups
from repro.algorithms.k_subsets import KSubsets, MAX_THREADS
from repro.analysis import bounds
from repro.sim import run_simulation


class TestKCliqueStructure:
    def test_half_groups_partition_stations(self):
        blocks = half_groups(8, 4)
        flat = [s for block in blocks for s in block]
        assert sorted(flat) == list(range(8))
        assert all(len(b) <= 2 for b in blocks)

    def test_pairs_enumerate_all_block_pairs(self):
        blocks = half_groups(8, 4)
        pairs = clique_pairs(8, 4)
        assert len(pairs) == math.comb(len(blocks), 2)
        assert all(len(p) <= 4 for p in pairs)

    def test_num_pairs_property(self):
        algo = KClique(8, 4)
        assert algo.num_pairs == len(clique_pairs(8, 4))

    def test_invalid_k_rejected(self):
        with pytest.raises(ValueError):
            KClique(6, 1)
        with pytest.raises(ValueError):
            KClique(6, 6)

    def test_schedule_cap_and_membership(self):
        algo = KClique(8, 4)
        schedule = algo.oblivious_schedule()
        assert schedule.max_awake() <= algo.energy_cap <= 4
        pair_sets = {frozenset(p) for p in algo.pairs}
        for t in range(schedule.period_length):
            assert schedule.awake_set(t) in pair_sets

    def test_controllers_follow_published_schedule(self):
        algo = KClique(8, 4)
        schedule = algo.oblivious_schedule()
        controllers = algo.build_controllers()
        for t in range(2 * schedule.period_length):
            awake = {c.station_id for c in controllers if c.wakes(t)}
            assert awake == set(schedule.awake_set(t))

    def test_threshold_helpers(self):
        algo = KClique(8, 4)
        assert algo.stability_threshold() == pytest.approx(1 / algo.num_pairs)
        assert algo.latency_rate_threshold() == pytest.approx(1 / (2 * algo.num_pairs))
        assert algo.latency_bound(2.0) == pytest.approx(
            bounds.k_clique_latency_bound(8, 2 * algo.half, 2.0)
        )


class TestKCliqueRouting:
    def test_quiescent(self):
        result = run_simulation(KClique(8, 4), NoInjectionAdversary(), 200)
        assert result.summary.injected == 0

    def test_delivers_below_threshold(self):
        algo = KClique(8, 4)
        rho = 0.5 * algo.latency_rate_threshold()
        result = run_simulation(KClique(8, 4), SingleTargetAdversary(rho, 1.0), 12000)
        assert result.stable
        assert result.summary.delivery_ratio > 0.9

    def test_group_local_traffic_is_the_hard_case_but_still_delivered(self):
        algo = KClique(8, 4)
        rho = 0.5 * algo.latency_rate_threshold()
        adversary = GroupLocalAdversary(rho, 1.0, group_start=0, group_size=2)
        result = run_simulation(KClique(8, 4), adversary, 12000)
        assert result.summary.delivered > 0
        assert result.stable


class TestKSubsetsStructure:
    def test_gamma_is_binomial_coefficient(self):
        algo = KSubsets(6, 3)
        assert algo.gamma == math.comb(6, 3)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            KSubsets(5, 1)
        with pytest.raises(ValueError):
            KSubsets(5, 5)

    def test_thread_explosion_guard(self):
        with pytest.raises(ValueError, match="too many"):
            KSubsets(30, 15)
        assert math.comb(30, 15) > MAX_THREADS

    def test_schedule_matches_subset_enumeration(self):
        algo = KSubsets(5, 2)
        schedule = algo.oblivious_schedule()
        assert schedule.period_length == algo.gamma
        for i, subset in enumerate(algo.subsets):
            assert schedule.awake_set(i) == frozenset(subset)

    def test_controllers_follow_published_schedule(self):
        algo = KSubsets(5, 2)
        schedule = algo.oblivious_schedule()
        controllers = algo.build_controllers()
        for t in range(2 * algo.gamma):
            awake = {c.station_id for c in controllers if c.wakes(t)}
            assert awake == set(schedule.awake_set(t))

    def test_threshold_and_queue_bound(self):
        algo = KSubsets(6, 3)
        assert algo.stability_threshold() == pytest.approx(
            bounds.k_subsets_rate_threshold(6, 3)
        )
        assert algo.queue_bound(1.0) == pytest.approx(
            bounds.k_subsets_queue_bound(6, 3, 1.0)
        )


class TestKSubsetsRouting:
    def test_quiescent(self):
        result = run_simulation(KSubsets(5, 2), NoInjectionAdversary(), 200)
        assert result.summary.injected == 0

    def test_delivers_all_traffic_at_stability_threshold(self):
        algo = KSubsets(5, 2)
        rho = algo.stability_threshold()
        result = run_simulation(KSubsets(5, 2), SingleTargetAdversary(rho, 1.0), 8000)
        assert result.stable
        assert result.summary.delivered > 0
        assert result.summary.max_queue <= algo.queue_bound(1.0)

    def test_balanced_assignment_spreads_threads(self):
        algo = KSubsets(5, 2)
        controllers = algo.build_controllers()
        source = controllers[0]
        # Inject many packets for destination 1 before the first phase boundary.
        from repro.channel.packet import PacketFactory

        factory = PacketFactory()
        for _ in range(6):
            source.on_inject(0, factory.make(1, 0, 0))
        # Trigger the phase-boundary assignment at the start of phase 1.
        source.wakes(algo.gamma)
        used_threads = [i for i, q in source.thread_queues.items() if q]
        # Only one thread contains both stations 0 and 1 when k = 2, so all
        # packets land there; with k = 3 they would spread.
        assert used_threads
        for thread in used_threads:
            assert 0 in algo.subsets[thread] and 1 in algo.subsets[thread]
