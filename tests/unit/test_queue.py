"""Unit tests for the lease-based work queue (claim/steal/complete races)."""

import json
import os
import time

import pytest

from repro.sim import (
    FailedResult,
    LeaseLostError,
    ResultCache,
    RunSpec,
    WorkQueue,
    collect_results,
    execute_spec,
    shard_index,
    spec_fragment,
    status_record,
)


def _specs(count=4, rounds=200):
    return [
        RunSpec.from_fragments(
            spec_fragment("k-cycle", n=4, k=2),
            spec_fragment("spray", rho=0.1 + 0.05 * i, beta=1.5),
            rounds,
            label=f"q{i}",
        )
        for i in range(count)
    ]


class TestShardIndex:
    def test_deterministic_partition(self):
        hashes = [s.spec_hash() for s in _specs(8)]
        for k in (1, 2, 3, 5):
            first = [shard_index(h, k) for h in hashes]
            assert [shard_index(h, k) for h in hashes] == first
            assert all(0 <= i < k for i in first)
        assert pytest.raises(ValueError, shard_index, hashes[0], 0)


class TestEnqueueClaim:
    def test_enqueue_shards_preserve_order(self, tmp_path):
        queue = WorkQueue(tmp_path / "q")
        specs = _specs(5)
        ids = queue.enqueue(specs, shard_size=2)
        assert ids == ["shard-0000", "shard-0001", "shard-0002"]
        assert queue.counts() == {"pending": 3, "leased": 0, "done": 0}
        claimed: list[str] = []
        while (lease := queue.claim("w")) is not None:
            claimed.extend(s.spec_hash() for s in lease.specs)
            lease.complete([])
        assert claimed == [s.spec_hash() for s in specs]

    def test_claim_is_exclusive(self, tmp_path):
        queue = WorkQueue(tmp_path / "q")
        queue.enqueue(_specs(2), shard_size=2)
        first = queue.claim("alice")
        assert first is not None
        assert queue.claim("bob") is None  # the only shard is leased
        assert queue.counts()["leased"] == 1

    def test_owner_names_are_sanitised(self, tmp_path):
        queue = WorkQueue(tmp_path / "q")
        queue.enqueue(_specs(1), shard_size=1)
        lease = queue.claim("host.example.com/worker 1")
        assert lease is not None
        assert "." not in lease.owner and "/" not in lease.owner
        lease.heartbeat()  # the lease filename still parses

    def test_unreadable_payload_is_retired(self, tmp_path):
        queue = WorkQueue(tmp_path / "q")
        (queue.pending_dir / "bad-0000.t0.json").write_text("not json {")
        assert queue.claim("w") is None
        assert queue.counts() == {"pending": 0, "leased": 0, "done": 0}

    def test_config_round_trips_cache_dir_and_ttl(self, tmp_path):
        WorkQueue(tmp_path / "q", lease_ttl=3.5, cache_dir=tmp_path / "c")
        reopened = WorkQueue(tmp_path / "q")
        assert reopened.lease_ttl == 3.5
        assert reopened.cache_dir == tmp_path / "c"


class TestLeaseLifecycle:
    def test_heartbeat_extends_expiry(self, tmp_path):
        queue = WorkQueue(tmp_path / "q", lease_ttl=5.0)
        queue.enqueue(_specs(1), shard_size=1)
        lease = queue.claim("w")
        before = lease.expires_ms
        time.sleep(0.01)
        lease.heartbeat()
        assert lease.expires_ms > before
        assert lease.path.exists()

    def test_heartbeat_after_steal_raises_lease_lost(self, tmp_path):
        queue = WorkQueue(tmp_path / "q", lease_ttl=0.01)
        queue.enqueue(_specs(1), shard_size=1)
        lease = queue.claim("slow")
        time.sleep(0.05)
        assert queue.reclaim_expired() == 1
        with pytest.raises(LeaseLostError):
            lease.heartbeat()
        assert lease.lost

    def test_reclaim_bumps_takeovers(self, tmp_path):
        queue = WorkQueue(tmp_path / "q", lease_ttl=0.01)
        queue.enqueue(_specs(1), shard_size=1)
        assert queue.claim("victim").takeovers == 0
        time.sleep(0.05)
        queue.reclaim_expired()
        thief = queue.claim("thief")
        assert thief.takeovers == 1
        assert thief.shard_id == "shard-0000"

    def test_abandon_requeues_with_bumped_takeover(self, tmp_path):
        queue = WorkQueue(tmp_path / "q")
        queue.enqueue(_specs(1), shard_size=1)
        lease = queue.claim("w")
        assert lease.abandon()
        again = queue.claim("w")
        assert again is not None and again.takeovers == 1

    def test_live_lease_is_not_reclaimed(self, tmp_path):
        queue = WorkQueue(tmp_path / "q", lease_ttl=30.0)
        queue.enqueue(_specs(1), shard_size=1)
        queue.claim("w")
        assert queue.reclaim_expired() == 0


class TestCompletion:
    def test_complete_publishes_statuses_and_drains(self, tmp_path):
        queue = WorkQueue(tmp_path / "q")
        specs = _specs(2)
        queue.enqueue(specs, shard_size=2)
        lease = queue.claim("w")
        records = [status_record(s, execute_spec(s)) for s in lease.specs]
        assert lease.complete(records)
        assert queue.drained()
        statuses = queue.done_statuses()
        assert set(statuses) == {s.spec_hash() for s in specs}
        assert all(r["status"] == "done" for r in statuses.values())

    def test_stolen_shard_completed_by_original_owner(self, tmp_path):
        # Slow-but-alive owner completes after the steal: its statuses
        # publish, complete() reports the loss, and the thief's pending
        # copy is retired on the next claim instead of re-executed.
        queue = WorkQueue(tmp_path / "q", lease_ttl=0.01)
        queue.enqueue(_specs(1), shard_size=1)
        slow = queue.claim("slow")
        time.sleep(0.05)
        queue.reclaim_expired()  # shard back in pending for a thief
        assert not slow.complete([status_record(s, execute_spec(s)) for s in slow.specs])
        assert queue.claim("thief") is None  # done record retires the copy
        assert queue.drained()

    def test_failed_status_records_survive(self, tmp_path):
        queue = WorkQueue(tmp_path / "q")
        specs = _specs(1)
        queue.enqueue(specs, shard_size=1)
        lease = queue.claim("w")
        failure = FailedResult(
            spec=specs[0], error="boom", error_type="ValueError", attempts=3
        )
        lease.complete([status_record(specs[0], failure)])
        record = queue.done_statuses()[specs[0].spec_hash()]
        assert record["status"] == "failed"
        assert record["error_type"] == "ValueError"
        assert record["attempts"] == 3


class TestCollectResults:
    def test_done_failed_and_missing(self, tmp_path):
        specs = _specs(3)
        cache = ResultCache(tmp_path / "cache")
        queue = WorkQueue(tmp_path / "q")
        done = execute_spec(specs[0])
        cache.put(specs[0], done)
        queue._write_done(
            "s-0000",
            [
                status_record(
                    specs[1],
                    FailedResult(
                        spec=specs[1], error="bad", error_type="E", attempts=2
                    ),
                )
            ],
        )
        results = collect_results(specs, cache, queue)
        assert results[0].summary == done.summary
        assert isinstance(results[1], FailedResult) and results[1].error == "bad"
        assert results[2] is None


class TestCrossProcessCacheRace:
    def test_racing_puts_leave_one_valid_entry(self, tmp_path):
        # Two *processes* completing the same spec concurrently must
        # converge on exactly one valid checksummed payload and an
        # untorn sidecar — the idempotence that makes at-least-once
        # shard delivery safe.
        import multiprocessing

        spec = _specs(1)[0]
        ctx = multiprocessing.get_context("spawn")
        procs = [
            ctx.Process(
                target=_put_repeatedly, args=(str(tmp_path / "cache"), spec.to_dict())
            )
            for _ in range(2)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=120)
            assert p.exitcode == 0
        cache = ResultCache(tmp_path / "cache")
        assert len(cache) == 1
        hit = cache.get(spec)
        assert hit is not None  # passes checksum verification
        assert hit.summary == execute_spec(spec).summary
        assert cache.quarantined == 0
        sidecar = json.loads(
            (tmp_path / "cache" / f"{spec.spec_hash()}.json").read_text()
        )
        assert sidecar["spec"]["label"] == spec.label
        assert not list((tmp_path / "cache").glob("*.tmp"))


def _put_repeatedly(cache_dir: str, spec_dict: dict) -> None:
    """Child-process body: hammer the same cache entry with puts."""
    spec = RunSpec.from_dict(spec_dict)
    cache = ResultCache(cache_dir)
    result = execute_spec(spec)
    for _ in range(25):
        cache.put(spec, result)
    loaded = cache.get(spec)
    assert loaded is not None and loaded.summary == result.summary
    os._exit(0)
