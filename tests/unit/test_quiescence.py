"""Unit tests for the quiescent-span building blocks.

The span fast path composes three O(1) fast-forwards — token-replica
silence advancement, congruence-class round counting, and the wake
oracles' ``advance_span`` — plus the spec/runner plumbing of the
``quiescence_skip`` execution knob.  Each piece is pinned here against
its per-round oracle; end-to-end equivalence lives in
``tests/property/test_quiescence_skip.py``.
"""

import pytest

from repro.channel.feedback import ChannelOutcome
from repro.core.schedule import rounds_in_congruence_class
from repro.protocols.token_ring import MoveBigToFrontReplica, TokenRingReplica
from repro.sim import RunSpec


def _token_state(replica: TokenRingReplica) -> tuple:
    return (
        replica.token_pos,
        replica.holder,
        replica.advancements,
        replica.phase_no,
    )


@pytest.mark.parametrize("members", [[0], [3, 1, 4], list(range(7))])
@pytest.mark.parametrize("prefix", [0, 1, 5])
@pytest.mark.parametrize("rounds", [0, 1, 2, 6, 7, 29, 1000])
def test_token_ring_advance_silence_matches_per_round_observe(
    members, prefix, rounds
):
    stepped = TokenRingReplica(list(members))
    jumped = TokenRingReplica(list(members))
    for _ in range(prefix):
        stepped.observe(ChannelOutcome.SILENCE)
        jumped.observe(ChannelOutcome.SILENCE)
    phases = 0
    for _ in range(rounds):
        phases += int(stepped.observe(ChannelOutcome.SILENCE))
    assert jumped.advance_silence(rounds) == phases
    assert _token_state(jumped) == _token_state(stepped)


@pytest.mark.parametrize("rounds", [0, 1, 4, 5, 17, 360])
def test_mbtf_advance_silence_matches_per_round_observe(rounds):
    stepped = MoveBigToFrontReplica([2, 0, 3, 1])
    jumped = MoveBigToFrontReplica([2, 0, 3, 1])
    for _ in range(rounds):
        stepped.observe(ChannelOutcome.SILENCE, None)
    jumped.advance_silence(rounds)
    assert (stepped.token_pos, stepped.holder, stepped.order) == (
        jumped.token_pos,
        jumped.holder,
        jumped.order,
    )


def test_rounds_in_congruence_class_matches_brute_force():
    for modulus in (1, 2, 3, 7):
        for residue in range(modulus):
            for start in range(0, 25, 3):
                for stop in range(start, start + 40, 5):
                    expected = sum(
                        1 for t in range(start, stop) if t % modulus == residue
                    )
                    assert (
                        rounds_in_congruence_class(start, stop, modulus, residue)
                        == expected
                    ), (start, stop, modulus, residue)


def test_k_cycle_span_fast_forward_matches_driven_silence():
    """Driving a k-Cycle controller through empty silent rounds must land
    in the same replica state as one advance_silent_span call."""
    from repro.core.registry import make_algorithm
    from repro.channel.feedback import Feedback

    algorithm = make_algorithm("k-cycle", n=9, k=3)
    driven = algorithm.build_controllers()
    jumped = make_algorithm("k-cycle", n=9, k=3).build_controllers()
    silence = Feedback(round_no=-1, outcome=ChannelOutcome.SILENCE, message=None)
    start, stop = 13, 412
    for t in range(start, stop):
        for ctrl in driven:
            if ctrl.wakes(t):
                assert ctrl.act(t) is None
                ctrl.on_feedback(t, silence)
    for ctrl in jumped:
        ctrl.advance_silent_span(start, stop)
    for a, b in zip(driven, jumped):
        for g in a.my_groups:
            assert _token_state(a.replicas[g]) == _token_state(b.replicas[g])


def test_queue_per_destination_counters_stay_exact_through_all_mutations():
    from repro.channel.packet import Packet
    from repro.core.queues import PacketQueue

    queue = PacketQueue()
    packets = [
        Packet(destination=d, injected_at=0, origin=0, packet_id=i)
        for i, d in enumerate([1, 2, 1, 3, 2, 1, 4])
    ]
    for p in packets[:4]:
        queue.push(p)
    queue.age_all()
    for p in packets[4:]:
        queue.push(p)
    assert queue.count_for(1) == 3
    assert queue.count_old_for(1) == 2
    assert queue.destinations() == {1, 2, 3, 4}
    assert queue.has_old_for([3, 9])
    assert not queue.has_old_for([4])
    queue.remove(packets[0])  # old packet for 1
    assert queue.count_old_for(1) == 1
    popped = queue.pop_any_for(2)
    assert popped is packets[1]
    assert queue.count_for(2) == 1
    queue.pop_old()  # packets[2], destination 1
    assert queue.count_old_for(1) == 0
    assert queue.count_for(1) == 1  # packets[5] is still new
    queue.age_all()
    assert queue.count_old_for(1) == 1
    while queue:
        queue.pop_any()
    assert queue.destinations() == set()
    assert queue.count_for(1) == 0


def test_run_spec_quiescence_knob_is_execution_strategy_not_identity():
    common = dict(
        algorithm="k-cycle",
        algorithm_params={"n": 8, "k": 3},
        adversary="bursty",
        adversary_params={"rho": 0.1, "beta": 4.0, "idle_rounds": 20},
        rounds=100,
    )
    default = RunSpec(**common)
    disabled = RunSpec(quiescence_skip=False, **common)
    assert default.spec_hash() == disabled.spec_hash()
    assert default == disabled
    assert RunSpec.from_dict(default.to_dict()).quiescence_skip is True


def test_seeded_adversary_rejects_unknown_rng_version():
    from repro.adversary import UniformRandomAdversary

    with pytest.raises(ValueError, match="rng_version"):
        UniformRandomAdversary(0.5, 1.0, seed=1, rng_version=3)


def test_rng_version_is_part_of_identity():
    from repro.adversary import DEFAULT_RNG_VERSION, UniformRandomAdversary

    assert DEFAULT_RNG_VERSION == 2
    default = UniformRandomAdversary(0.5, 1.0, seed=1)
    v1 = UniformRandomAdversary(0.5, 1.0, seed=1, rng_version=1)
    assert default.rng_version == 2
    assert v1.describe() != default.describe()
    assert "rng=v2" in default.describe()
    spec_v1 = RunSpec(
        algorithm="rrw",
        algorithm_params={"n": 5},
        adversary="random",
        adversary_params={"rho": 0.5, "beta": 1.0, "seed": 1, "rng_version": 1},
        rounds=10,
    )
    spec_default = RunSpec(
        algorithm="rrw",
        algorithm_params={"n": 5},
        adversary="random",
        adversary_params={"rho": 0.5, "beta": 1.0, "seed": 1},
        rounds=10,
    )
    assert spec_v1.spec_hash() != spec_default.spec_hash()


def test_seeded_specs_pin_the_rng_protocol_explicitly():
    """New specs record the seeded RNG protocol; a serialised dict
    *without* the key is a pre-versioned recording and replays on v1."""
    spec = RunSpec(
        algorithm="rrw",
        algorithm_params={"n": 5},
        adversary="random",
        adversary_params={"rho": 0.5, "beta": 1.0, "seed": 1},
        rounds=10,
    )
    assert spec.adversary_params["rng_version"] == 2
    assert spec.to_dict()["adversary_params"]["rng_version"] == 2
    assert RunSpec.from_dict(spec.to_dict()) == spec

    legacy = spec.to_dict()
    del legacy["adversary_params"]["rng_version"]
    replayed = RunSpec.from_dict(legacy)
    assert replayed.adversary_params["rng_version"] == 1
    assert replayed.spec_hash() != spec.spec_hash()

    # Non-seeded adversaries are untouched by the normalisation.
    plain = RunSpec(
        algorithm="rrw",
        algorithm_params={"n": 5},
        adversary="round-robin",
        adversary_params={"rho": 0.5, "beta": 1.0},
        rounds=10,
    )
    assert "rng_version" not in plain.adversary_params
    assert "rng_version" not in RunSpec.from_dict(plain.to_dict()).adversary_params
