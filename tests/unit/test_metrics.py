"""Unit tests for the metrics collector, stability assessment and summaries."""

import numpy as np
import pytest

from repro.channel.feedback import ChannelOutcome
from repro.metrics import (
    DeliveryError,
    MetricsCollector,
    RunSummary,
    assess_stability,
)


class TestMetricsCollector:
    def test_injection_and_delivery_flow(self, make_packet):
        c = MetricsCollector()
        p = make_packet(2, injected_at=3)
        c.record_injection(p, 3)
        c.record_delivery(p, 2, 10)
        assert c.injected_count == 1
        assert c.delivered_count == 1
        assert c.pending_count == 0
        assert c.delays == [7]
        assert c.max_delay() == 7

    def test_duplicate_injection_rejected(self, make_packet):
        c = MetricsCollector()
        p = make_packet(1)
        c.record_injection(p, 0)
        with pytest.raises(DeliveryError):
            c.record_injection(p, 1)

    def test_delivery_to_wrong_station_rejected(self, make_packet):
        c = MetricsCollector()
        p = make_packet(2)
        c.record_injection(p, 0)
        with pytest.raises(DeliveryError):
            c.record_delivery(p, 1, 5)

    def test_double_delivery_rejected(self, make_packet):
        c = MetricsCollector()
        p = make_packet(2)
        c.record_injection(p, 0)
        c.record_delivery(p, 2, 5)
        with pytest.raises(DeliveryError):
            c.record_delivery(p, 2, 6)

    def test_delivery_of_uninjected_packet_rejected(self, make_packet):
        c = MetricsCollector()
        with pytest.raises(DeliveryError):
            c.record_delivery(make_packet(1), 1, 0)

    def test_round_statistics(self, make_packet):
        c = MetricsCollector()
        c.record_round(0, [1, 0, 2], 2, ChannelOutcome.HEARD)
        c.record_round(1, [0, 0, 5], 3, ChannelOutcome.SILENCE)
        assert c.total_queue_series == [3, 5]
        assert c.max_queue() == 5
        assert c.per_station_max_queue == [1, 0, 5]
        assert c.energy_series == [2, 3]
        assert c.total_energy() == 5
        assert c.energy_per_round() == pytest.approx(2.5)
        assert c.outcome_counts[ChannelOutcome.HEARD] == 1

    def test_pending_age_contributes_to_latency(self, make_packet):
        c = MetricsCollector()
        p = make_packet(1, injected_at=0)
        c.record_injection(p, 0)
        for t in range(10):
            c.record_round(t, [1, 0], 1, ChannelOutcome.SILENCE)
        assert c.max_delay() == 0
        assert c.max_pending_age() == 10
        assert c.observed_latency() == 10
        assert c.undelivered_packets() == [p]

    def test_ratios_and_throughput(self, make_packet):
        c = MetricsCollector()
        a, b = make_packet(1), make_packet(1)
        c.record_injection(a, 0)
        c.record_injection(b, 0)
        c.record_delivery(a, 1, 2)
        for t in range(4):
            c.record_round(t, [0, 0], 2, ChannelOutcome.SILENCE)
        assert c.delivery_ratio() == pytest.approx(0.5)
        assert c.throughput() == pytest.approx(0.25)
        assert c.energy_per_delivery() == pytest.approx(8.0)

    def test_energy_per_delivery_with_no_deliveries(self):
        c = MetricsCollector()
        c.record_round(0, [0], 1, ChannelOutcome.SILENCE)
        assert c.energy_per_delivery() == float("inf")

    def test_summary_round_trip(self, make_packet):
        c = MetricsCollector()
        p = make_packet(1, injected_at=0)
        c.record_injection(p, 0)
        c.record_delivery(p, 1, 1)
        for t in range(40):
            c.record_round(t, [0, 0], 2, ChannelOutcome.SILENCE)
        summary = c.summary("demo")
        assert isinstance(summary, RunSummary)
        assert summary.label == "demo"
        assert summary.rounds == 40
        assert summary.injected == 1 and summary.delivered == 1
        assert summary.stable
        as_dict = summary.as_dict()
        assert as_dict["max_queue"] == summary.max_queue
        assert "STABLE" in summary.format_row()
        assert "max queue" in RunSummary.header()


class TestStability:
    def test_flat_series_is_stable(self):
        verdict = assess_stability(np.full(500, 7))
        assert verdict.stable
        assert verdict.growth_rate == pytest.approx(0.0, abs=1e-9)

    def test_linear_growth_is_unstable(self):
        verdict = assess_stability(np.arange(500))
        assert not verdict.stable
        assert verdict.growth_rate > 0.5
        assert verdict.drifting

    def test_bounded_oscillation_is_stable(self):
        t = np.arange(2000)
        series = 50 + 40 * np.sin(t / 50.0)
        assert assess_stability(series).stable

    def test_short_series_defaults_to_stable(self):
        assert assess_stability(np.arange(10)).stable

    def test_empty_series(self):
        verdict = assess_stability(np.array([]))
        assert verdict.stable and verdict.peak == 0

    def test_plateau_after_burst_is_stable(self):
        series = np.concatenate([np.linspace(0, 300, 200), np.full(800, 300)])
        assert assess_stability(series).stable

    def test_growth_tolerance_parameter(self):
        series = np.arange(400) * 0.02
        assert not assess_stability(series, growth_tolerance=0.001).stable
        assert assess_stability(series, growth_tolerance=0.1).stable
