"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_requires_algorithm_and_n(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--n", "5"])

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--algorithm", "nope", "--n", "5"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "orchestra" in out and "k-cycle" in out and "spray" in out

    def test_run_stable_configuration_returns_zero(self, capsys):
        code = main(
            [
                "run",
                "--algorithm", "count-hop",
                "--n", "5",
                "--rho", "0.4",
                "--rounds", "2000",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "STABLE" in out

    def test_run_unstable_configuration_returns_two(self):
        code = main(
            [
                "run",
                "--algorithm", "k-clique",
                "--n", "6",
                "--k", "2",
                "--adversary", "single-target",
                "--rho", "0.9",
                "--rounds", "4000",
            ]
        )
        assert code == 2

    def test_run_negotiation_reports_decline_reasons(self, capsys):
        """--negotiation surfaces *why* blocks were declined, one line
        per driver reason, not just the fallback count."""
        code = main(
            [
                "run",
                "--algorithm", "count-hop",
                "--n", "6",
                "--rho", "0.4",
                "--rounds", "1500",
                "--negotiation",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "block_decline_reasons:" in out
        assert "Report substage is adaptive" in out
        # Reasons are prefixed with their occurrence count.
        assert any(
            line.strip()[0].isdigit() and "x " in line
            for line in out.splitlines()
            if "Report substage" in line
        )

    def test_run_oblivious_algorithm_requires_k(self):
        with pytest.raises(SystemExit):
            main(["run", "--algorithm", "k-cycle", "--n", "9", "--rounds", "100"])

    def test_sweep(self, capsys):
        code = main(
            [
                "sweep",
                "--algorithm", "count-hop",
                "--n", "5",
                "--rates", "0.2,0.5",
                "--rounds", "1500",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "series: count-hop" in out
        assert out.count("stable") + out.count("UNSTABLE") >= 2

    @pytest.mark.parallel
    def test_sweep_parallel_matches_serial(self, capsys):
        argv = [
            "sweep",
            "--algorithm", "count-hop",
            "--n", "4",
            "--rates", "0.2,0.4,0.6",
            "--rounds", "600",
        ]
        assert main(argv) == 0
        serial_out = capsys.readouterr().out
        assert main(argv + ["--workers", "2"]) == 0
        parallel_out = capsys.readouterr().out
        assert parallel_out == serial_out

    def test_sweep_with_cache_dir_reuses_runs(self, capsys, tmp_path):
        argv = [
            "sweep",
            "--algorithm", "count-hop",
            "--n", "4",
            "--rates", "0.3",
            "--rounds", "500",
            "--cache-dir", str(tmp_path),
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert len(list(tmp_path.glob("*.pkl"))) == 1
        assert main(argv) == 0
        assert capsys.readouterr().out == first

    def test_run_seed_changes_stochastic_traffic(self, capsys):
        def run_with_seed(seed):
            code = main(
                [
                    "run",
                    "--algorithm", "count-hop",
                    "--n", "5",
                    "--adversary", "random",
                    "--rho", "0.5",
                    "--rounds", "800",
                    "--seed", seed,
                ]
            )
            assert code == 0
            return capsys.readouterr().out

        assert "seed=3" in run_with_seed("3")
        assert run_with_seed("3") == run_with_seed("3")
        assert run_with_seed("3") != run_with_seed("4")

    def test_list_includes_registry_adversaries(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("hotspot", "random-walk", "group-local", "saturating"):
            assert name in out
