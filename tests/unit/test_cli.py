"""Unit tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_requires_algorithm_and_n(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--n", "5"])

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--algorithm", "nope", "--n", "5"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "orchestra" in out and "k-cycle" in out and "spray" in out

    def test_run_stable_configuration_returns_zero(self, capsys):
        code = main(
            [
                "run",
                "--algorithm", "count-hop",
                "--n", "5",
                "--rho", "0.4",
                "--rounds", "2000",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "STABLE" in out

    def test_run_unstable_configuration_returns_two(self):
        code = main(
            [
                "run",
                "--algorithm", "k-clique",
                "--n", "6",
                "--k", "2",
                "--adversary", "single-target",
                "--rho", "0.9",
                "--rounds", "4000",
            ]
        )
        assert code == 2

    def test_run_negotiation_reports_decline_reasons(self, capsys):
        """--negotiation surfaces *why* blocks were declined, one line
        per driver reason, not just the fallback count."""
        code = main(
            [
                "run",
                "--algorithm", "count-hop",
                "--n", "6",
                "--rho", "0.4",
                "--rounds", "1500",
                "--negotiation",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "block_decline_reasons:" in out
        assert "Report substage is adaptive" in out
        # Reasons are prefixed with their occurrence count.
        assert any(
            line.strip()[0].isdigit() and "x " in line
            for line in out.splitlines()
            if "Report substage" in line
        )

    def test_run_oblivious_algorithm_requires_k(self):
        with pytest.raises(SystemExit):
            main(["run", "--algorithm", "k-cycle", "--n", "9", "--rounds", "100"])

    def test_sweep(self, capsys):
        code = main(
            [
                "sweep",
                "--algorithm", "count-hop",
                "--n", "5",
                "--rates", "0.2,0.5",
                "--rounds", "1500",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "series: count-hop" in out
        assert out.count("stable") + out.count("UNSTABLE") >= 2

    @pytest.mark.parallel
    def test_sweep_parallel_matches_serial(self, capsys):
        argv = [
            "sweep",
            "--algorithm", "count-hop",
            "--n", "4",
            "--rates", "0.2,0.4,0.6",
            "--rounds", "600",
        ]
        assert main(argv) == 0
        serial_out = capsys.readouterr().out
        assert main(argv + ["--workers", "2"]) == 0
        parallel_out = capsys.readouterr().out
        assert parallel_out == serial_out

    def test_sweep_with_cache_dir_reuses_runs(self, capsys, tmp_path):
        argv = [
            "sweep",
            "--algorithm", "count-hop",
            "--n", "4",
            "--rates", "0.3",
            "--rounds", "500",
            "--cache-dir", str(tmp_path),
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert len(list(tmp_path.glob("*.pkl"))) == 1
        assert main(argv) == 0
        assert capsys.readouterr().out == first

    def test_sweep_fault_tolerant_flags_match_plain_run(self, capsys, tmp_path):
        base = [
            "sweep",
            "--algorithm", "count-hop",
            "--n", "4",
            "--rates", "0.2,0.5",
            "--rounds", "500",
        ]
        assert main(base) == 0
        plain = capsys.readouterr().out
        manifest_path = tmp_path / "manifest.json"
        assert main(
            base
            + [
                "--max-retries", "2",
                "--spec-timeout", "120",
                "--manifest", str(manifest_path),
            ]
        ) == 0
        assert capsys.readouterr().out == plain  # supervision changes nothing
        manifest = json.loads(manifest_path.read_text())
        assert len(manifest["entries"]) == 2
        assert all(e["status"] == "done" for e in manifest["entries"].values())

    def test_sweep_resume_requires_manifest(self):
        with pytest.raises(SystemExit, match="--resume requires --manifest"):
            main(
                [
                    "sweep",
                    "--algorithm", "count-hop",
                    "--n", "4",
                    "--rates", "0.2",
                    "--resume",
                ]
            )

    def test_sweep_resume_skips_quarantined_points(self, capsys, tmp_path):
        manifest_path = tmp_path / "manifest.json"
        argv = [
            "sweep",
            "--algorithm", "count-hop",
            "--n", "4",
            "--rates", "0.3",
            "--rounds", "400",
            "--adversary", "single-target",
            "--max-retries", "0",
            "--manifest", str(manifest_path),
        ]
        # Pre-record the sweep's only point as failed, as an interrupted
        # fault-tolerant run would have; --resume must surface it as a
        # FAILED row (exit 3) without re-executing.
        from repro.cli import _adversary_fragment, _algorithm_fragment
        from repro.sim import FailedResult, SweepManifest
        from repro.sim.specs import RunSpec

        spec = RunSpec.from_fragments(
            _algorithm_fragment("count-hop", 4, None),
            _adversary_fragment("single-target", 0.3, 2.0, None),
            400,
            label="count-hop[rho=0.3]",
        )
        manifest = SweepManifest(manifest_path)
        manifest.record_failed(
            spec,
            FailedResult(
                spec=spec, error="boom", error_type="TransientFault", attempts=1
            ),
        )
        assert main(argv + ["--resume"]) == 3
        captured = capsys.readouterr()
        assert "FAILED after 1 attempt(s): TransientFault: boom" in captured.out
        assert "1 point(s) quarantined" in captured.err

    def test_sweep_help_documents_fault_flags(self, capsys):
        with pytest.raises(SystemExit):
            main(["sweep", "--help"])
        out = capsys.readouterr().out
        for flag in ("--max-retries", "--spec-timeout", "--manifest", "--resume"):
            assert flag in out

    def test_run_seed_changes_stochastic_traffic(self, capsys):
        def run_with_seed(seed):
            code = main(
                [
                    "run",
                    "--algorithm", "count-hop",
                    "--n", "5",
                    "--adversary", "random",
                    "--rho", "0.5",
                    "--rounds", "800",
                    "--seed", seed,
                ]
            )
            assert code == 0
            return capsys.readouterr().out

        assert "seed=3" in run_with_seed("3")
        assert run_with_seed("3") == run_with_seed("3")
        assert run_with_seed("3") != run_with_seed("4")

    def test_list_includes_registry_adversaries(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("hotspot", "random-walk", "group-local", "saturating"):
            assert name in out
